//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the tiny API slice it actually uses: [`Mutex`] and [`RwLock`]
//! with non-poisoning guards. Backed by `std::sync` primitives; a poisoned
//! std lock (panicking holder) is recovered with `into_inner`, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
