//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot fetch crates.io, so this vendored crate
//! implements the slice of proptest the workspace uses: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, regex-literal string strategies of
//! the shape `[class]{m,n}` (plus `(?s).{m,n}`), integer range strategies,
//! [`collection::vec`], [`any`] for primitives and [`sample::Index`], tuple
//! strategies, and the `prop_assert*` macros.
//!
//! Two deliberate simplifications versus upstream:
//!
//! * **No shrinking.** A failing case panics with the generating seed and
//!   case number; rerunning is deterministic, so the case reproduces as-is.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test function's name, so results are identical under
//!   `--test-threads=1` and full parallelism — an explicit requirement of
//!   this repo's differential test suite.
//!
//! Default case count is 64 (upstream: 256), keeping debug-profile suite
//! runtime reasonable; tests that need more pass
//! `ProptestConfig::with_cases(n)` exactly as with upstream.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Value generators.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u128 - self.start as u128 + 1) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` (see [`any`]).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Pattern-literal string strategies (`"[a-z]{0,10}"` and `"(?s).{0,n}"`).
mod pattern {
    use super::TestRng;

    /// One generatable alternative: an inclusive scalar-value range.
    #[derive(Clone, Debug)]
    pub struct CharClass {
        ranges: Vec<(u32, u32)>,
        total: u64,
    }

    impl CharClass {
        fn from_ranges(ranges: Vec<(u32, u32)>) -> Self {
            let total = ranges.iter().map(|(lo, hi)| (hi - lo + 1) as u64).sum();
            CharClass { ranges, total }
        }

        pub fn sample(&self, rng: &mut TestRng) -> char {
            let mut k = rng.below(self.total);
            for &(lo, hi) in &self.ranges {
                let n = (hi - lo + 1) as u64;
                if k < n {
                    // Skip the surrogate gap if a wide range crosses it.
                    let v = lo + k as u32;
                    return char::from_u32(v).unwrap_or('\u{fffd}');
                }
                k -= n;
            }
            unreachable!("sample index out of class bounds")
        }
    }

    /// A parsed `atom{m,n}` pattern.
    #[derive(Clone, Debug)]
    pub struct Pattern {
        class: CharClass,
        min: usize,
        max: usize,
    }

    impl Pattern {
        /// Parse the supported regex subset; panics with a clear message on
        /// anything else so unsupported tests fail loudly, not wrongly.
        pub fn parse(pat: &str) -> Pattern {
            let mut rest = pat;
            if let Some(stripped) = rest.strip_prefix("(?s)") {
                rest = stripped;
            }
            let (class, after) = if let Some(body) = rest.strip_prefix('[') {
                let end = body.find(']').unwrap_or_else(|| {
                    panic!("unsupported proptest pattern (unclosed class): {pat:?}")
                });
                (Self::parse_class(&body[..end]), &body[end + 1..])
            } else if let Some(after) = rest.strip_prefix('.') {
                // `.` — arbitrary scalar values, weighted toward printable
                // ASCII but covering multi-byte UTF-8 and controls.
                (
                    CharClass::from_ranges(vec![
                        (0x20, 0x7E),
                        (0x20, 0x7E),
                        (0x09, 0x0A),
                        (0xA0, 0x2FF),
                        (0x4E00, 0x4FFF),
                        (0x1F300, 0x1F3FF),
                    ]),
                    after,
                )
            } else {
                panic!("unsupported proptest pattern: {pat:?}");
            };
            let counts = after
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
                .unwrap_or_else(|| panic!("unsupported proptest repetition in {pat:?}"));
            let (min, max) = match counts.split_once(',') {
                Some((m, n)) => (
                    m.parse().unwrap_or_else(|_| panic!("bad repetition in {pat:?}")),
                    n.parse().unwrap_or_else(|_| panic!("bad repetition in {pat:?}")),
                ),
                None => {
                    let m = counts.parse().unwrap_or_else(|_| panic!("bad repetition in {pat:?}"));
                    (m, m)
                }
            };
            assert!(min <= max, "bad repetition bounds in {pat:?}");
            Pattern { class, min, max }
        }

        fn parse_class(body: &str) -> CharClass {
            let chars: Vec<char> = body.chars().collect();
            let mut ranges = Vec::new();
            let mut i = 0;
            while i < chars.len() {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                // `a-z` range (a trailing or leading '-' is a literal).
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let hi = chars[i + 2];
                    ranges.push((c as u32, hi as u32));
                    i += 3;
                } else {
                    ranges.push((c as u32, c as u32));
                    i += 1;
                }
            }
            assert!(!ranges.is_empty(), "empty character class");
            CharClass::from_ranges(ranges)
        }

        pub fn generate(&self, rng: &mut TestRng) -> String {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.class.sample(rng)).collect()
        }
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::Pattern::parse(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::Pattern::parse(self).generate(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds for [`vec`]; converts from ranges and fixed sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — vectors of `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling helpers (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A deferred collection index: resolved against a length via
    /// [`Index::index`], as in upstream proptest.
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Resolve to a concrete index in `[0, len)`; panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index { raw: rng.next_u64() }
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    use super::{ProptestConfig, TestRng};

    /// A failed property (from `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure with a rendered message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    /// FNV-1a over the test name: a stable, scheduler-independent seed.
    fn name_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives the configured number of cases for one property.
    pub struct TestRunner {
        seed: u64,
        cases: u32,
        name: String,
    }

    impl TestRunner {
        /// Runner for the named test (the name fixes the seed).
        pub fn new_for(name: &str, config: &ProptestConfig) -> Self {
            TestRunner { seed: name_seed(name), cases: config.cases, name: name.to_string() }
        }

        /// Run `f` for each case; panics with seed/case context on failure.
        pub fn run<F>(&mut self, mut f: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            for case in 0..self.cases {
                let mut rng = TestRng::new(self.seed.wrapping_add(case as u64));
                if let Err(TestCaseError(msg)) = f(&mut rng) {
                    panic!(
                        "property '{}' failed at case {case}/{} (seed {:#x}): {msg}",
                        self.name, self.cases, self.seed
                    );
                }
            }
        }
    }
}

/// The proptest entry-point macro: wraps each property in a `#[test]`
/// driving [`test_runner::TestRunner`] over its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new_for(stringify!($name), &config);
                runner.run(|prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), prop_rng);)+
                    let out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    out
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Property assertion: fails the current case (not the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Property equality assertion with optional context message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` namespace alias used as `prop::sample::Index` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn string_patterns_respect_class_and_len() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9 .,\\-]{0,160}", &mut rng);
            assert!(s.chars().count() <= 160);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || " .,-".contains(c)));
            let t = Strategy::generate(&"[a-e ]{1,12}", &mut rng);
            let n = t.chars().count();
            assert!((1..=12).contains(&n));
            assert!(t.chars().all(|c| ('a'..='e').contains(&c) || c == ' '));
        }
    }

    #[test]
    fn dot_pattern_produces_multibyte_sometimes() {
        let mut rng = TestRng::new(5);
        let mut saw_multibyte = false;
        for _ in 0..100 {
            let s = Strategy::generate(&"(?s).{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            saw_multibyte |= s.chars().any(|c| c.len_utf8() > 1);
        }
        assert!(saw_multibyte, "dot class should exercise multi-byte UTF-8");
    }

    #[test]
    fn ranges_and_vec_sizes_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = Strategy::generate(&(1u64..1_000_000), &mut rng);
            assert!((1..1_000_000).contains(&v));
            let w = Strategy::generate(&(1u8..), &mut rng);
            assert!(w >= 1);
            let xs = Strategy::generate(&crate::collection::vec(any::<u8>(), 1..512), &mut rng);
            assert!((1..512).contains(&xs.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_pipeline_works(xs in crate::collection::vec(0u32..50, 0..20), k in 1usize..4) {
            prop_assert!(xs.len() < 20);
            prop_assert_eq!(k.min(3), k, "k was {}", k);
        }
    }

    #[test]
    fn same_name_same_stream() {
        let cfg = ProptestConfig::with_cases(4);
        let mut a = crate::test_runner::TestRunner::new_for("x", &cfg);
        let mut b = crate::test_runner::TestRunner::new_for("x", &cfg);
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        a.run(|rng| {
            va.push(rng.next_u64());
            Ok(())
        });
        b.run(|rng| {
            vb.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(va, vb);
    }
}
