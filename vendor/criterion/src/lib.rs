//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmark-harness API slice this workspace's `benches/`
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! median-of-samples wall-clock timer instead of criterion's full
//! statistical machinery. Numbers print per benchmark (median ns/iter plus
//! derived throughput) so existing benches stay runnable offline; they are
//! indicative, not criterion-grade.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-per-iteration unit used to derive throughput numbers.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level bench context handed to each target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work unit for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        let median = b.median_ns();
        let mut line = format!("{}/{:<32} {:>12.1} ns/iter", self.name, id, median);
        if median > 0.0 {
            match self.throughput {
                Some(Throughput::Bytes(n)) => {
                    let mbps = n as f64 / median * 1e9 / (1024.0 * 1024.0);
                    line.push_str(&format!("  {mbps:>10.1} MiB/s"));
                }
                Some(Throughput::Elements(n)) => {
                    let meps = n as f64 / median * 1e3;
                    line.push_str(&format!("  {meps:>10.2} Melem/s"));
                }
                None => {}
            }
        }
        println!("{line}");
        self
    }

    /// End the group (separator line, matching criterion's call shape).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Per-benchmark timing driver passed to the bench closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` over repeated batches, recording per-iter duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch costs >= ~1ms so Instant overhead is amortized.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        ns[ns.len() / 2] as f64
    }
}

/// Group bench targets into one callable, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups (respects `--bench`-style extra
/// args by ignoring them, so `cargo bench` works unchanged).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(64));
        let mut count = 0u64;
        g.bench_function("noop_sum", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        g.finish();
        assert!(count > 0, "routine must have executed");
    }
}
