//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] tree to standard JSON text and
//! parses JSON text back, covering the functions this workspace calls:
//! [`to_vec`], [`to_vec_pretty`], [`to_string`], [`to_string_pretty`],
//! [`from_slice`], and [`from_str`]. Output is plain interoperable JSON, so
//! manifests written by this stub parse with any JSON implementation.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// `Result` alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Match serde_json: integral floats keep a trailing ".0".
        if f.fract() == 0.0 && f.abs() < 1e15 {
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        // Real serde_json refuses non-finite floats; emit null like its
        // lossy modes do rather than producing invalid JSON.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), false, 0);
    Ok(out)
}

/// Serialize to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), true, 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty JSON bytes.
pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => self.err(&format!("unexpected byte 0x{b:02x}")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number bytes".into()))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("bad number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("bad number '{text}'")))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse JSON bytes into `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return p.err("trailing characters");
    }
    Ok(T::from_value(&v)?)
}

/// Parse JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("tiny \"corpus\"\n".into())),
            ("docs".into(), Value::U64(18446744073709551615)),
            ("neg".into(), Value::I64(-42)),
            ("scale".into(), Value::F64(1.5)),
            ("whole".into(), Value::F64(2.0)),
            ("flags".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("empty".into(), Value::Object(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "mismatch for rendering: {text}");
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![("k".into(), Value::U64(1))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 1\n}");
        assert_eq!(to_string(&v).unwrap(), "{\"k\":1}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn error_converts_to_io_error() {
        fn io_path() -> std::io::Result<Value> {
            Ok(from_str::<Value>("not json")?)
        }
        assert!(io_path().is_err());
    }
}
