//! Offline stand-in for the `rand` crate (0.8 API slice).
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen`] /
//! [`Rng::gen_range`] over integer and float types, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ with
//! SplitMix64 seed expansion — deterministic for a given seed, which is all
//! the synthetic-corpus machinery requires (no golden-value test depends on
//! upstream rand's exact stream).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` over its whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (SplitMix64-seeded).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `SmallRng` users also work.
    pub type SmallRng = StdRng;
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::RngCore;

    /// Shuffle/choose extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }

    // Allow calling through on Vec<T> auto-deref contexts explicitly.
    impl<T> SliceRandom for Vec<T> {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            self.as_mut_slice().shuffle(rng)
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            self.as_slice().choose(rng)
        }
    }

    pub use SliceRandom as _;
}

/// `rand::thread_rng` stand-in: a process-global deterministic stream would
/// surprise callers, so derive the seed from the thread id + time.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(1);
    rngs::StdRng::from_state_pub(t ^ 0xA076_1D64_78BD_642F)
}

impl rngs::StdRng {
    /// Public seeding hook for [`thread_rng`].
    pub fn from_state_pub(seed: u64) -> Self {
        <Self as SeedableRng>::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(1..=8);
            assert!((1..=8).contains(&v));
            let w: usize = r.gen_range(3..10);
            assert!((3..10).contains(&w));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
    }
}
