//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for plain
//! structs with named fields — the only shape this workspace derives on.
//! Tokens are parsed by hand (no `syn`/`quote`, which cannot be fetched in
//! the offline build container) and the generated impls target the
//! Value-tree traits of the vendored `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Struct name + named-field identifiers, extracted from a derive input.
fn parse_named_struct(input: TokenStream, derive: &str) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;

    while let Some(tt) = tokens.next() {
        match tt {
            // Outer attribute: `#` followed by a bracketed group — skip both.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("derive({derive}): expected struct name, got {other:?}"),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!("derive({derive}): only structs with named fields are supported");
            }
            // `pub`, visibility groups, etc.
            _ => {}
        }
    }
    let name = name.unwrap_or_else(|| panic!("derive({derive}): no struct found"));

    // Find the brace-delimited field body (skipping generics, which this
    // workspace never uses on serialized types).
    let body = tokens
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("derive({derive}): struct {name} has no named-field body"));

    let mut fields = Vec::new();
    let mut inner = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        let field_name = loop {
            match inner.next() {
                None => break None,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    inner.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = inner.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            inner.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => panic!("derive({derive}): unexpected token {other:?} in {name}"),
            }
        };
        let Some(field_name) = field_name else { break };
        match inner.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive({derive}): expected ':' after field {field_name}, got {other:?}"),
        }
        // Consume the type up to the next comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tt) = inner.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    inner.next();
                    break;
                }
                _ => {}
            }
            inner.next();
        }
        fields.push(field_name);
    }
    (name, fields)
}

/// Derive `serde::Serialize` (Value-tree flavor) for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input, "Serialize");
    let entries: String = fields
        .iter()
        .map(|f| {
            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl failed to parse")
}

/// Derive `serde::Deserialize` (Value-tree flavor) for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input, "Deserialize");
    let inits: String = fields
        .iter()
        .map(|f| format!("{f}: ::serde::field(v, \"{f}\")?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derive(Deserialize): generated impl failed to parse")
}
