//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module slice the workspace uses is provided:
//! [`channel::bounded`] returning cloneable senders and a receiving side
//! with `recv`/`try_recv`/`iter`. Backed by `std::sync::mpsc::sync_channel`,
//! which has the same bounded back-pressure semantics the pipeline relies
//! on for parser-buffer coupling.

/// Multi-producer channels (the `crossbeam-channel` API slice).
pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
    use std::sync::mpsc;
    use std::sync::Arc;

    /// Sending half of a bounded channel; `send` blocks when full.
    pub struct Sender<T> {
        tx: mpsc::SyncSender<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { tx: self.tx.clone(), depth: Arc::clone(&self.depth) }
        }
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when the sending side has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error for non-blocking receive attempts.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Error for bounded-wait receive attempts.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while the channel is full. Errors if the
        /// receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self.tx.send(msg) {
                Ok(()) => {
                    self.depth.fetch_add(1, Relaxed);
                    Ok(())
                }
                Err(mpsc::SendError(v)) => Err(SendError(v)),
            }
        }

        /// Approximate number of queued messages (relaxed counter; may lag
        /// concurrent sends/receives by a message — fine for gauges).
        pub fn len(&self) -> usize {
            self.depth.load(Relaxed)
        }

        /// Whether the channel currently looks empty (see [`Self::len`]).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let v = self.rx.recv().map_err(|_| RecvError)?;
            self.depth.fetch_sub(1, Relaxed);
            Ok(v)
        }

        /// Receive with a bounded wait: blocks at most `timeout` for a
        /// message (the watchdog poll primitive).
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let v = self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })?;
            self.depth.fetch_sub(1, Relaxed);
            Ok(v)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let v = self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })?;
            self.depth.fetch_sub(1, Relaxed);
            Ok(v)
        }

        /// Blocking iterator over received messages until disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }

        /// Approximate number of queued messages (relaxed counter; may lag
        /// concurrent sends/receives by a message — fine for gauges).
        pub fn len(&self) -> usize {
            self.depth.load(Relaxed)
        }

        /// Whether the channel currently looks empty (see [`Self::len`]).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        let depth = Arc::new(AtomicUsize::new(0));
        (Sender { tx, depth: Arc::clone(&depth) }, Receiver { rx, depth })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn roundtrip_and_disconnect() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn len_tracks_queue_depth() {
        let (tx, rx) = bounded::<u32>(4);
        assert_eq!(tx.len(), 0);
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.recv().unwrap();
        assert_eq!(rx.len(), 1);
        rx.try_recv().unwrap();
        assert_eq!(tx.len(), 0);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).map(|_| 2u32).unwrap_or(0));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(h.join().unwrap(), 2);
        assert_eq!(rx.recv(), Ok(2));
    }
}
