//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! supplies the slice of serde the workspace uses: `#[derive(Serialize,
//! Deserialize)]` on plain named-field structs, serialized through an
//! in-memory [`Value`] tree that the companion `serde_json` stand-in
//! renders to and parses from JSON text. The wire format is interchangeable
//! with real serde_json output for the manifest-style structs this
//! workspace stores (numbers, strings, bools, arrays, objects, null).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error (missing/mistyped fields, bad JSON shape).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch and deserialize object field `name` (derive-macro helper).
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(fv) => T::from_value(fv)
            .map_err(|e| DeError(format!("field '{name}': {}", e.0))),
        None => Err(DeError(format!("missing field '{name}'"))),
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError(format!("expected unsigned integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".into()));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::U64(9)), Ok(Some(9)));
        assert_eq!(Vec::<u64>::from_value(&vec![1u64, 2].to_value()), Ok(vec![1, 2]));
    }

    #[test]
    fn field_lookup_errors() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(field::<u64>(&obj, "a"), Ok(1));
        assert!(field::<u64>(&obj, "b").is_err());
        assert!(field::<String>(&obj, "a").is_err());
    }
}
