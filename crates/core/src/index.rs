//! The user-facing index: build output plus query and persistence.

use ii_corpus::DocId;
use ii_dict::GlobalDictionary;
use ii_obs::Registry;
use ii_pipeline::{DocMap, IndexOutput, PipelineReport};
use ii_postings::{Posting, PostingsList, RunFile, RunSet};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// A built inverted index over a document collection.
pub struct Index {
    /// Combined dictionary (term → postings location).
    pub dictionary: GlobalDictionary,
    /// Run files per indexer id.
    pub run_sets: HashMap<u32, RunSet>,
    /// Auxiliary docID → source-file map (§III.F).
    pub doc_map: DocMap,
    /// Build timing/workload report (empty when loaded from disk).
    pub report: PipelineReport,
    /// Query-time metrics: the `query` stage (wall, items, latency) and a
    /// `query.postings_scanned` counter accumulate over this index's life.
    pub obs: Arc<Registry>,
}

impl Index {
    /// Wrap a pipeline output.
    pub fn from_output(out: IndexOutput) -> Index {
        Index {
            dictionary: out.dictionary,
            run_sets: out.run_sets,
            doc_map: out.doc_map,
            report: out.report,
            obs: Arc::new(Registry::new()),
        }
    }

    /// Source container file of a global document ID (§III.F auxiliary
    /// map), if known.
    pub fn source_file(&self, doc: DocId) -> Option<u32> {
        self.doc_map.file_of(doc)
    }

    /// Distinct terms in the index.
    pub fn num_terms(&self) -> usize {
        self.dictionary.len()
    }

    /// Documents indexed (0 when loaded from disk without a report).
    pub fn num_docs(&self) -> u32 {
        self.report.docs
    }

    /// Postings of a *surface* term. The term is normalized exactly as the
    /// parser would: lowercased, stemmed, classified by trie index.
    pub fn postings(&self, term: &str) -> Option<PostingsList> {
        let normalized = normalize_term(term)?;
        let e = self.dictionary.lookup(&normalized)?;
        Some(self.run_sets.get(&e.indexer)?.fetch(e.postings))
    }

    /// Postings of an *already-stemmed* term (no re-normalization; Porter
    /// stemming is not idempotent, so looking up stemmer output must skip
    /// the query-normalization path).
    pub fn postings_stemmed(&self, stemmed: &str) -> Option<PostingsList> {
        let e = self.dictionary.lookup(stemmed)?;
        Some(self.run_sets.get(&e.indexer)?.fetch(e.postings))
    }

    /// Postings restricted to `[lo, hi]` global document IDs — exercises
    /// the paper's range-narrowed partial-list retrieval (§III.F).
    pub fn postings_in_range(&self, term: &str, lo: DocId, hi: DocId) -> Vec<Posting> {
        let Some(normalized) = normalize_term(term) else { return Vec::new() };
        let Some(e) = self.dictionary.lookup(&normalized) else { return Vec::new() };
        let Some(set) = self.run_sets.get(&e.indexer) else { return Vec::new() };
        set.fetch_range(e.postings, lo, hi).0
    }

    /// Conjunctive (AND) search: documents containing *all* query terms,
    /// ranked by summed term frequency. Stop words in the query are
    /// ignored (as they were never indexed).
    pub fn search(&self, query: &str) -> Vec<(DocId, u64)> {
        let stage = self.obs.stage("query");
        let _span = stage.span();
        let scanned = self.obs.counter("query.postings_scanned");
        let mut lists: Vec<PostingsList> = Vec::new();
        let mut it = ii_text::tokenize::tokens(query);
        while let Some(tok) = it.next_token() {
            let stemmed = ii_text::stem(tok);
            if ii_text::is_stop_word(&stemmed) {
                continue;
            }
            match self.postings(&stemmed) {
                Some(l) => lists.push(l),
                None => return Vec::new(), // a required term is absent
            }
        }
        if lists.is_empty() {
            return Vec::new();
        }
        scanned.add(lists.iter().map(|l| l.len() as u64).sum());
        // Intersect smallest-first.
        lists.sort_by_key(|l| l.len());
        let mut acc: HashMap<u32, u64> =
            lists[0].postings().iter().map(|p| (p.doc.0, p.tf as u64)).collect();
        for l in &lists[1..] {
            let present: HashMap<u32, u32> =
                l.postings().iter().map(|p| (p.doc.0, p.tf)).collect();
            acc.retain(|d, _| present.contains_key(d));
            for (d, score) in acc.iter_mut() {
                *score += present[d] as u64;
            }
        }
        let mut out: Vec<(DocId, u64)> = acc.into_iter().map(|(d, s)| (DocId(d), s)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Persist the index: `dictionary.bin` plus one `.iirf` file per run
    /// per indexer — exactly the paper's on-disk artifacts (§III.F).
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(dir.join("dictionary.bin"))?;
        self.dictionary.write_to(&mut f)?;
        let mut dm = fs::File::create(dir.join("docmap.bin"))?;
        self.doc_map.write_to(&mut dm)?;
        for (indexer, set) in &self.run_sets {
            for run in set.runs() {
                let name = format!("run_{indexer:03}_{:05}.iirf", run.run_id);
                fs::write(dir.join(name), run.to_bytes())?;
            }
        }
        Ok(())
    }

    /// Load an index saved by [`Self::save`].
    pub fn open(dir: &Path) -> io::Result<Index> {
        let mut f = fs::File::open(dir.join("dictionary.bin"))?;
        let dictionary = GlobalDictionary::read_from(&mut f)?;
        let doc_map = match fs::File::open(dir.join("docmap.bin")) {
            Ok(mut dm) => DocMap::read_from(&mut dm)?,
            Err(_) => DocMap::new(), // older index layouts
        };
        let mut files: Vec<(u32, u32, std::path::PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(rest) = name.strip_prefix("run_").and_then(|n| n.strip_suffix(".iirf"))
            {
                let mut parts = rest.split('_');
                let indexer: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad run name"))?;
                let run: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad run name"))?;
                files.push((indexer, run, entry.path()));
            }
        }
        files.sort();
        let mut run_sets: HashMap<u32, RunSet> = HashMap::new();
        for (indexer, _, path) in files {
            let run = RunFile::from_bytes(&fs::read(path)?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            run_sets.entry(indexer).or_default().push(run);
        }
        Ok(Index {
            dictionary,
            run_sets,
            doc_map,
            report: PipelineReport::default(),
            obs: Arc::new(Registry::new()),
        })
    }
}

/// Normalize a query term the way the parser normalizes document terms.
fn normalize_term(term: &str) -> Option<String> {
    let mut it = ii_text::tokenize::tokens(term);
    let tok = it.next_token()?.to_string();
    let stemmed = ii_text::stem(&tok).into_owned();
    if ii_text::is_stop_word(&stemmed) {
        None
    } else {
        Some(stemmed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_corpus::{CollectionSpec, RawDocument, StoredCollection};
    use ii_pipeline::{build_index, PipelineConfig};
    use std::sync::Arc;

    fn small_index(tag: &str, docs: Vec<RawDocument>) -> Index {
        // Build via the pipeline over a handcrafted collection: write the
        // docs as one container file.
        let dir = std::env::temp_dir().join(format!("ii-core-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Reuse the corpus container/compress machinery directly.
        let raw = ii_corpus::container::write_container(&docs);
        let packed = ii_corpus::compress::compress(&raw);
        std::fs::write(dir.join("file_00000.iic"), &packed).unwrap();
        let manifest = ii_corpus::Manifest {
            spec: CollectionSpec {
                name: tag.into(),
                num_files: 1,
                docs_per_file: docs.len(),
                mean_doc_tokens: 8,
                vocab_size: 100,
                zipf_s: 1.0,
                html: false,
                seed: 0,
                shift: None,
            },
            stats: ii_corpus::CollectionStats {
                documents: docs.len() as u64,
                uncompressed_bytes: raw.len() as u64,
                compressed_bytes: packed.len() as u64,
                ..Default::default()
            },
            file_compressed_bytes: vec![packed.len() as u64],
            file_uncompressed_bytes: vec![raw.len() as u64],
        };
        std::fs::write(dir.join("manifest.json"), serde_json::to_vec(&manifest).unwrap())
            .unwrap();
        let coll = Arc::new(StoredCollection::open(&dir).unwrap());
        let out = build_index(&coll, &PipelineConfig::small(1, 1, 1)).expect("build");
        std::fs::remove_dir_all(&dir).unwrap();
        Index::from_output(out)
    }

    fn doc(body: &str) -> RawDocument {
        RawDocument { url: String::new(), body: body.into() }
    }

    #[test]
    fn query_normalization_matches_indexing() {
        let idx = small_index(
            "norm",
            vec![doc("Zebras running EVERYWHERE"), doc("a zebra ran")],
        );
        // "Zebras"/"zebra" both hit the stemmed term.
        let l = idx.postings("zebras").unwrap();
        assert_eq!(l.len(), 2);
        let l2 = idx.postings("ZEBRA").unwrap();
        assert_eq!(l, l2);
        assert!(idx.postings("the").is_none(), "stop words have no postings");
    }

    #[test]
    fn search_intersects_and_ranks() {
        let idx = small_index(
            "search",
            vec![
                doc("apple banana apple"),   // doc 0
                doc("apple cherry"),         // doc 1
                doc("banana apple banana apple"), // doc 2
            ],
        );
        let hits = idx.search("apple banana");
        let docs: Vec<u32> = hits.iter().map(|(d, _)| d.0).collect();
        assert_eq!(docs, vec![2, 0], "doc 2 ranks above doc 0");
        assert!(idx.search("apple missingterm").is_empty());
        assert!(idx.search("the of and").is_empty(), "all-stopword query");
    }

    #[test]
    fn range_narrowed_postings() {
        let idx = small_index(
            "range",
            vec![doc("kiwi"), doc("kiwi"), doc("kiwi"), doc("kiwi")],
        );
        let mid = idx.postings_in_range("kiwi", DocId(1), DocId(2));
        let docs: Vec<u32> = mid.iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![1, 2]);
    }

    #[test]
    fn save_and_open_roundtrip() {
        let idx = small_index("persist", vec![doc("walrus penguin"), doc("walrus")]);
        let dir =
            std::env::temp_dir().join(format!("ii-core-persist-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        idx.save(&dir).unwrap();
        let loaded = Index::open(&dir).unwrap();
        assert_eq!(loaded.num_terms(), idx.num_terms());
        assert_eq!(loaded.postings("walrus"), idx.postings("walrus"));
        assert_eq!(loaded.postings("penguin"), idx.postings("penguin"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
