//! The user-facing index: build output plus query and persistence.

use ii_corpus::DocId;
use ii_dict::{GlobalDictionary, PartialDictionary};
use ii_obs::Registry;
use ii_pipeline::{
    BuildCheckpoint, DocMap, IndexOutput, PipelineReport, CHECKPOINT_ARTIFACT,
    DICTIONARY_ARTIFACT, DOCMAP_ARTIFACT,
};
use ii_postings::{
    parse_run_artifact_name, run_artifact_name, CodecError, Posting, PostingsList, RunFile,
    RunSet, SetCursor,
};
use ii_store::{
    ArtifactStatus, ManifestKind, RealVfs, SalvageReport, Store, StoreError, Txn, Vfs,
};
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// A built inverted index over a document collection.
pub struct Index {
    /// Combined dictionary (term → postings location).
    pub dictionary: GlobalDictionary,
    /// Run files per indexer id.
    pub run_sets: HashMap<u32, RunSet>,
    /// Auxiliary docID → source-file map (§III.F).
    pub doc_map: DocMap,
    /// Build timing/workload report (empty when loaded from disk).
    pub report: PipelineReport,
    /// Query-time metrics: the `query` stage (wall, items, latency) and a
    /// `query.postings_scanned` counter accumulate over this index's life.
    pub obs: Arc<Registry>,
}

impl Index {
    /// Wrap a pipeline output.
    pub fn from_output(out: IndexOutput) -> Index {
        Index {
            dictionary: out.dictionary,
            run_sets: out.run_sets,
            doc_map: out.doc_map,
            report: out.report,
            obs: Arc::new(Registry::new()),
        }
    }

    /// Source container file of a global document ID (§III.F auxiliary
    /// map), if known.
    pub fn source_file(&self, doc: DocId) -> Option<u32> {
        self.doc_map.file_of(doc)
    }

    /// Distinct terms in the index.
    pub fn num_terms(&self) -> usize {
        self.dictionary.len()
    }

    /// Documents indexed (0 when loaded from disk without a report).
    pub fn num_docs(&self) -> u32 {
        self.report.docs
    }

    /// Postings of a *surface* term. The term is normalized exactly as the
    /// parser would: lowercased, stemmed, classified by trie index.
    pub fn postings(&self, term: &str) -> Option<PostingsList> {
        let normalized = normalize_term(term)?;
        let e = self.dictionary.lookup(&normalized)?;
        Some(self.run_sets.get(&e.indexer)?.fetch(e.postings))
    }

    /// Postings of an *already-stemmed* term (no re-normalization; Porter
    /// stemming is not idempotent, so looking up stemmer output must skip
    /// the query-normalization path).
    pub fn postings_stemmed(&self, stemmed: &str) -> Option<PostingsList> {
        let e = self.dictionary.lookup(stemmed)?;
        Some(self.run_sets.get(&e.indexer)?.fetch(e.postings))
    }

    /// Postings restricted to `[lo, hi]` global document IDs — exercises
    /// the paper's range-narrowed partial-list retrieval (§III.F).
    pub fn postings_in_range(&self, term: &str, lo: DocId, hi: DocId) -> Vec<Posting> {
        let Some(normalized) = normalize_term(term) else { return Vec::new() };
        let Some(e) = self.dictionary.lookup(&normalized) else { return Vec::new() };
        let Some(set) = self.run_sets.get(&e.indexer) else { return Vec::new() };
        set.fetch_range(e.postings, lo, hi).0
    }

    /// Skip cursor over a surface term's postings (normalized like
    /// [`Self::postings`]). `Ok(None)` when the term is absent.
    fn term_cursor(&self, term: &str) -> Result<Option<SetCursor<'_>>, CodecError> {
        let Some(normalized) = normalize_term(term) else { return Ok(None) };
        let Some(e) = self.dictionary.lookup(&normalized) else { return Ok(None) };
        let Some(set) = self.run_sets.get(&e.indexer) else { return Ok(None) };
        set.cursor(e.postings)
    }

    /// Conjunctive (AND) search: documents containing *all* query terms,
    /// ranked by summed term frequency. Stop words in the query are
    /// ignored (as they were never indexed).
    ///
    /// The intersection is driven by skip cursors: the rarest term streams
    /// its postings and every other term `advance_to`s each candidate,
    /// using the per-list skip tables to jump over 128-document blocks
    /// that cannot contain it (blocks are only decoded when landed on —
    /// `query.blocks_decoded` / `query.blocks_skipped` record the win).
    pub fn search(&self, query: &str) -> Vec<(DocId, u64)> {
        let stage = self.obs.stage("query");
        let _span = stage.span();
        let scanned = self.obs.counter("query.postings_scanned");
        let mut cursors: Vec<SetCursor<'_>> = Vec::new();
        let mut it = ii_text::tokenize::tokens(query);
        while let Some(tok) = it.next_token() {
            let stemmed = ii_text::stem(tok);
            if ii_text::is_stop_word(&stemmed) {
                continue;
            }
            match self.term_cursor(&stemmed) {
                Ok(Some(c)) => cursors.push(c),
                // A required term absent — or its list unreadable — means
                // no document can satisfy the conjunction.
                Ok(None) | Err(_) => return Vec::new(),
            }
        }
        if cursors.is_empty() {
            return Vec::new();
        }
        scanned.add(cursors.iter().map(|c| c.df()).sum());
        // Rarest term drives; the others leapfrog via their skip tables.
        cursors.sort_by_key(|c| c.df());
        let hits = intersect_cursors(&mut cursors);
        self.record_block_metrics(&cursors);
        let mut out: Vec<(DocId, u64)> = hits
            .unwrap_or_default()
            .into_iter()
            .map(|(doc, tfs)| (doc, tfs.iter().map(|&tf| u64::from(tf)).sum()))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Record skip-cursor effectiveness on the query counters.
    pub(crate) fn record_block_metrics(&self, cursors: &[SetCursor<'_>]) {
        self.obs
            .counter("query.blocks_decoded")
            .add(cursors.iter().map(|c| u64::from(c.blocks_decoded())).sum());
        self.obs.counter("query.blocks_skipped").add(
            cursors
                .iter()
                .map(|c| (c.blocks_total() as u64).saturating_sub(u64::from(c.blocks_decoded())))
                .sum(),
        );
    }

    /// Persist the index: `dictionary.bin`, `docmap.bin`, plus one `.iirf`
    /// file per run per indexer — exactly the paper's on-disk artifacts
    /// (§III.F) — committed atomically through the ii-store manifest
    /// protocol. A crash mid-save leaves the previously committed index (or
    /// a recognizably uncommitted directory), never a silent mix.
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        self.save_with(dir, &RealVfs)
    }

    /// [`Self::save`] through an explicit [`Vfs`] — crash tests inject
    /// [`CrashVfs`](ii_store::CrashVfs) here.
    pub fn save_with(&self, dir: &Path, vfs: &dyn Vfs) -> Result<(), StoreError> {
        let mut txn = Txn::begin(dir, vfs)?.with_registry(Arc::clone(&self.obs));
        let mut indexers: Vec<u32> = self.run_sets.keys().copied().collect();
        indexers.sort_unstable();
        for indexer in indexers {
            for run in self.run_sets[&indexer].runs() {
                txn.put_with_meta(
                    &run_artifact_name(indexer, run.run_id),
                    &run.to_bytes(),
                    Some(ii_pipeline::run_postings_meta(run)),
                )?;
            }
        }
        let mut dm = Vec::new();
        self.doc_map.write_to(&mut dm).expect("vec write is infallible");
        txn.put(DOCMAP_ARTIFACT, &dm)?;
        // The dictionary is staged LAST: a power-loss crash that leaves
        // neither a manifest nor `.tmp` residue then lacks `dictionary.bin`
        // too, so the pre-manifest fallback in [`Self::open`] reports a
        // typed missing-artifact error instead of silently loading a
        // partial run set.
        let mut dict_bytes = Vec::new();
        self.dictionary.write_to(&mut dict_bytes).expect("vec write is infallible");
        txn.put(DICTIONARY_ARTIFACT, &dict_bytes)?;
        txn.commit(ManifestKind::Index)?;
        Ok(())
    }

    /// Load an index saved by [`Self::save`] (or committed by a durable
    /// pipeline build). Every artifact is verified against the manifest's
    /// length and CRC32; corruption, truncation, and version skew surface
    /// as typed [`StoreError`]s. Directories from pre-manifest layouts fall
    /// back to a direct scan — unless an aborted commit left `*.tmp` files
    /// behind, which is reported as [`StoreError::TornCommit`].
    pub fn open(dir: &Path) -> Result<Index, StoreError> {
        match Store::open(dir) {
            Ok(store) => Self::open_store(dir, &store),
            Err(StoreError::MissingManifest { .. }) => Self::open_legacy(dir),
            Err(e) => Err(e),
        }
    }

    fn open_store(dir: &Path, store: &Store) -> Result<Index, StoreError> {
        if store.manifest().kind != ManifestKind::Index {
            return Err(StoreError::IncompleteBuild { dir: dir.to_path_buf() });
        }
        let dictionary = GlobalDictionary::read_from(&mut store.read(DICTIONARY_ARTIFACT)?.as_slice())
            .map_err(|e| StoreError::Corrupt {
                name: DICTIONARY_ARTIFACT.into(),
                detail: e.to_string(),
            })?;
        let doc_map = match store.manifest().artifact(DOCMAP_ARTIFACT) {
            Some(_) => DocMap::read_from(&mut store.read(DOCMAP_ARTIFACT)?.as_slice())
                .map_err(|e| StoreError::Corrupt {
                    name: DOCMAP_ARTIFACT.into(),
                    detail: e.to_string(),
                })?,
            None => DocMap::new(),
        };
        let mut named: Vec<(u32, u32, &str)> = Vec::new();
        for name in store.manifest().names() {
            match parse_run_artifact_name(name) {
                Some((indexer, run)) => named.push((indexer, run, name)),
                // A manifest entry that merely *looks* like a run file is
                // foreign data, not something to silently skip.
                None if name.starts_with("run_") && name.ends_with(".iirf") => {
                    return Err(StoreError::Corrupt {
                        name: name.to_string(),
                        detail: "unrecognized run artifact name".into(),
                    });
                }
                None => {}
            }
        }
        named.sort();
        let mut run_sets: HashMap<u32, RunSet> = HashMap::new();
        for (indexer, _, name) in named {
            let run = RunFile::from_bytes(&store.read(name)?).map_err(|e| {
                StoreError::Corrupt { name: name.to_string(), detail: e.to_string() }
            })?;
            run_sets.entry(indexer).or_default().push(run);
        }
        Ok(Index {
            dictionary,
            run_sets,
            doc_map,
            report: PipelineReport::default(),
            obs: Arc::new(Registry::new()),
        })
    }

    /// Pre-manifest layout: no `MANIFEST.json`, artifacts scanned directly.
    fn open_legacy(dir: &Path) -> Result<Index, StoreError> {
        let mut run_names: Vec<String> = Vec::new();
        for entry in fs::read_dir(dir).map_err(StoreError::Io)? {
            let name = entry.map_err(StoreError::Io)?.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                // An interrupted manifest commit, not an old layout.
                return Err(StoreError::TornCommit { dir: dir.to_path_buf() });
            }
            if name.starts_with("run_") && name.ends_with(".iirf") {
                run_names.push(name);
            }
        }
        let mut f = match fs::File::open(dir.join(DICTIONARY_ARTIFACT)) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(StoreError::MissingArtifact { name: DICTIONARY_ARTIFACT.into() })
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        let dictionary = GlobalDictionary::read_from(&mut f).map_err(|e| StoreError::Corrupt {
            name: DICTIONARY_ARTIFACT.into(),
            detail: e.to_string(),
        })?;
        // Only *absence* of the doc map means an older layout; a doc map
        // that exists but cannot be read is corruption and must surface.
        let doc_map = match fs::File::open(dir.join(DOCMAP_ARTIFACT)) {
            Ok(mut dm) => DocMap::read_from(&mut dm).map_err(|e| StoreError::Corrupt {
                name: DOCMAP_ARTIFACT.into(),
                detail: e.to_string(),
            })?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => DocMap::new(),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let mut files: Vec<(u32, u32, String)> = Vec::new();
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for name in run_names {
            let (indexer, run) =
                parse_run_artifact_name(&name).ok_or_else(|| StoreError::Corrupt {
                    name: name.clone(),
                    detail: "unrecognized run file name".into(),
                })?;
            // Distinct names can still decode to the same logical run
            // (`run_0_1.iirf` vs `run_000_00001.iirf`): loading both would
            // silently double every posting in that run.
            if !seen.insert((indexer, run)) {
                return Err(StoreError::Corrupt {
                    name,
                    detail: format!("duplicate run file for indexer {indexer} run {run}"),
                });
            }
            files.push((indexer, run, name));
        }
        files.sort();
        let mut run_sets: HashMap<u32, RunSet> = HashMap::new();
        for (indexer, _, name) in files {
            let run = RunFile::from_bytes(&fs::read(dir.join(&name)).map_err(StoreError::Io)?)
                .map_err(|e| StoreError::Corrupt { name, detail: e.to_string() })?;
            run_sets.entry(indexer).or_default().push(run);
        }
        Ok(Index {
            dictionary,
            run_sets,
            doc_map,
            report: PipelineReport::default(),
            obs: Arc::new(Registry::new()),
        })
    }

    /// Checksum-verify every artifact of a committed index directory
    /// against its manifest. Statuses cover all artifacts, failed or not.
    pub fn verify_dir(dir: &Path) -> Result<Vec<ArtifactStatus>, StoreError> {
        Ok(Store::open(dir)?.verify())
    }

    /// Salvage what survives in a damaged index directory: every artifact
    /// that passes both its checksum and a semantic decode is re-committed
    /// under a fresh manifest; the rest is reported lost.
    pub fn repair(dir: &Path) -> Result<SalvageReport, StoreError> {
        ii_store::salvage(dir, &RealVfs, &validate_artifact)
    }
}

/// Semantic validation used by [`Index::repair`]: an artifact only
/// survives salvage if it actually decodes as what its name claims.
/// Salvaged run files re-derive their postings metadata so the repaired
/// manifest keeps skip-table and block-max information.
fn validate_artifact(name: &str, bytes: &[u8]) -> Result<Option<ii_store::PostingsMeta>, String> {
    if name == DICTIONARY_ARTIFACT {
        GlobalDictionary::read_from(&mut &bytes[..]).map(|_| None).map_err(|e| e.to_string())
    } else if name == DOCMAP_ARTIFACT {
        DocMap::read_from(&mut &bytes[..]).map(|_| None).map_err(|e| e.to_string())
    } else if name == CHECKPOINT_ARTIFACT {
        serde_json::from_slice::<BuildCheckpoint>(bytes)
            .map(|_| None)
            .map_err(|e| format!("{e:?}"))
    } else if name.ends_with(".iipd") {
        PartialDictionary::read_from(&mut &bytes[..]).map(|_| None).map_err(|e| e.to_string())
    } else if parse_run_artifact_name(name).is_some() {
        RunFile::from_bytes(bytes)
            .map(|r| Some(ii_pipeline::run_postings_meta(&r)))
            .map_err(|e| e.to_string())
    } else {
        Err("unrecognized artifact name".into())
    }
}

/// Leapfrog intersection: the first (rarest) cursor proposes candidates;
/// every other cursor advances to the candidate through its skip table. A
/// cursor that lands past the candidate keeps that posting as a pushback —
/// `advance_to` consumes what it returns, and the overshoot is exactly the
/// posting the next candidate must be checked against. Each hit carries
/// the per-cursor term frequencies in cursor order (callers sum them or
/// feed them into BM25). `Err` (a corrupt list discovered mid-stream)
/// surfaces as no matches.
pub(crate) fn intersect_cursors(
    cursors: &mut [SetCursor<'_>],
) -> Result<Vec<(DocId, Vec<u32>)>, CodecError> {
    let mut hits = Vec::new();
    let (first, rest) = cursors.split_at_mut(1);
    let driver = &mut first[0];
    let mut pending: Vec<Option<Posting>> = vec![None; rest.len()];
    'candidates: while let Some(p) = driver.next()? {
        let target = p.doc.0;
        let mut tfs = Vec::with_capacity(rest.len() + 1);
        tfs.push(p.tf);
        for (c, pend) in rest.iter_mut().zip(pending.iter_mut()) {
            let q = match pend.take() {
                Some(q) if q.doc.0 >= target => Some(q),
                _ => c.advance_to(target)?,
            };
            match q {
                Some(q) if q.doc.0 == target => tfs.push(q.tf),
                Some(q) => {
                    *pend = Some(q);
                    continue 'candidates;
                }
                // This term is exhausted: nothing later can match either.
                None => return Ok(hits),
            }
        }
        hits.push((p.doc, tfs));
    }
    Ok(hits)
}

/// Normalize a query term the way the parser normalizes document terms.
fn normalize_term(term: &str) -> Option<String> {
    let mut it = ii_text::tokenize::tokens(term);
    let tok = it.next_token()?.to_string();
    let stemmed = ii_text::stem(&tok).into_owned();
    if ii_text::is_stop_word(&stemmed) {
        None
    } else {
        Some(stemmed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_corpus::{CollectionSpec, RawDocument, StoredCollection};
    use ii_pipeline::{build_index, PipelineConfig};
    use std::sync::Arc;

    fn small_index(tag: &str, docs: Vec<RawDocument>) -> Index {
        // Build via the pipeline over a handcrafted collection: write the
        // docs as one container file.
        let dir = std::env::temp_dir().join(format!("ii-core-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Reuse the corpus container/compress machinery directly.
        let raw = ii_corpus::container::write_container(&docs);
        let packed = ii_corpus::compress::compress(&raw);
        std::fs::write(dir.join("file_00000.iic"), &packed).unwrap();
        let manifest = ii_corpus::Manifest {
            spec: CollectionSpec {
                name: tag.into(),
                num_files: 1,
                docs_per_file: docs.len(),
                mean_doc_tokens: 8,
                vocab_size: 100,
                zipf_s: 1.0,
                html: false,
                seed: 0,
                shift: None,
            },
            stats: ii_corpus::CollectionStats {
                documents: docs.len() as u64,
                uncompressed_bytes: raw.len() as u64,
                compressed_bytes: packed.len() as u64,
                ..Default::default()
            },
            file_compressed_bytes: vec![packed.len() as u64],
            file_uncompressed_bytes: vec![raw.len() as u64],
        };
        std::fs::write(dir.join("manifest.json"), serde_json::to_vec(&manifest).unwrap())
            .unwrap();
        let coll = Arc::new(StoredCollection::open(&dir).unwrap());
        let out = build_index(&coll, &PipelineConfig::small(1, 1, 1)).expect("build");
        std::fs::remove_dir_all(&dir).unwrap();
        Index::from_output(out)
    }

    fn doc(body: &str) -> RawDocument {
        RawDocument { url: String::new(), body: body.into() }
    }

    #[test]
    fn query_normalization_matches_indexing() {
        let idx = small_index(
            "norm",
            vec![doc("Zebras running EVERYWHERE"), doc("a zebra ran")],
        );
        // "Zebras"/"zebra" both hit the stemmed term.
        let l = idx.postings("zebras").unwrap();
        assert_eq!(l.len(), 2);
        let l2 = idx.postings("ZEBRA").unwrap();
        assert_eq!(l, l2);
        assert!(idx.postings("the").is_none(), "stop words have no postings");
    }

    #[test]
    fn search_intersects_and_ranks() {
        let idx = small_index(
            "search",
            vec![
                doc("apple banana apple"),   // doc 0
                doc("apple cherry"),         // doc 1
                doc("banana apple banana apple"), // doc 2
            ],
        );
        let hits = idx.search("apple banana");
        let docs: Vec<u32> = hits.iter().map(|(d, _)| d.0).collect();
        assert_eq!(docs, vec![2, 0], "doc 2 ranks above doc 0");
        assert!(idx.search("apple missingterm").is_empty());
        assert!(idx.search("the of and").is_empty(), "all-stopword query");
    }

    #[test]
    fn range_narrowed_postings() {
        let idx = small_index(
            "range",
            vec![doc("kiwi"), doc("kiwi"), doc("kiwi"), doc("kiwi")],
        );
        let mid = idx.postings_in_range("kiwi", DocId(1), DocId(2));
        let docs: Vec<u32> = mid.iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![1, 2]);
    }

    #[test]
    fn save_and_open_roundtrip() {
        let idx = small_index("persist", vec![doc("walrus penguin"), doc("walrus")]);
        let dir =
            std::env::temp_dir().join(format!("ii-core-persist-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        idx.save(&dir).unwrap();
        let loaded = Index::open(&dir).unwrap();
        assert_eq!(loaded.num_terms(), idx.num_terms());
        assert_eq!(loaded.postings("walrus"), idx.postings("walrus"));
        assert_eq!(loaded.postings("penguin"), idx.postings("penguin"));
        // The save is manifested and every artifact checksum-clean.
        let statuses = Index::verify_dir(&dir).unwrap();
        assert!(statuses.len() >= 3, "dictionary + docmap + runs");
        assert!(statuses.iter().all(|s| s.ok));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn saved_manifest_carries_postings_metadata() {
        let idx = small_index("pmeta", vec![doc("walrus penguin"), doc("walrus kiwi")]);
        let dir =
            std::env::temp_dir().join(format!("ii-core-pmeta-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        idx.save(&dir).unwrap();
        let store = ii_store::Store::open(&dir).unwrap();
        let mut runs_seen = 0;
        for a in &store.manifest().artifacts {
            if let Some((indexer, run_id)) = parse_run_artifact_name(&a.name) {
                runs_seen += 1;
                let p = a.postings.expect("every run artifact carries postings metadata");
                let run = idx.run_sets[&indexer]
                    .runs()
                    .iter()
                    .find(|r| r.run_id == run_id)
                    .unwrap();
                assert_eq!(p, ii_pipeline::run_postings_meta(run));
                assert_eq!(p.format, 2, "blocked wire format");
                assert_eq!(p.lists, run.entries.len() as u64);
                if !run.entries.is_empty() {
                    assert!(p.blocks >= p.lists, "at least one block per list");
                    assert!(p.max_tf >= 1);
                }
            } else {
                assert!(a.postings.is_none(), "{}: non-postings artifact", a.name);
            }
        }
        assert!(runs_seen >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_records_skip_metrics() {
        let idx = small_index(
            "skipmetrics",
            vec![doc("apple banana"), doc("apple cherry"), doc("apple banana date")],
        );
        let hits = idx.search("apple banana");
        assert_eq!(hits.len(), 2);
        // Both lists travel the cursor path: every block either decodes or
        // is skipped, and the scanned counter still reflects total df.
        assert!(idx.obs.counter("query.blocks_decoded").get() >= 2);
        assert!(idx.obs.counter("query.postings_scanned").get() >= 5);
    }

    /// A saved directory with its manifest removed — the pre-manifest
    /// layout Index::open must keep loading.
    fn legacy_dir(tag: &str, idx: &Index) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ii-core-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        idx.save(&dir).unwrap();
        std::fs::remove_file(dir.join(ii_store::MANIFEST_NAME)).unwrap();
        dir
    }

    #[test]
    fn legacy_layout_still_opens() {
        let idx = small_index("legacy", vec![doc("walrus penguin"), doc("walrus")]);
        let dir = legacy_dir("legacy-open", &idx);
        let loaded = Index::open(&dir).unwrap();
        assert_eq!(loaded.postings("walrus"), idx.postings("walrus"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_docmap_errors_instead_of_loading_empty() {
        let idx = small_index("dmcorrupt", vec![doc("walrus penguin"), doc("walrus")]);
        let dir = legacy_dir("dmcorrupt-open", &idx);
        std::fs::write(dir.join("docmap.bin"), b"not a docmap").unwrap();
        match Index::open(&dir) {
            Err(StoreError::Corrupt { name, .. }) => assert_eq!(name, "docmap.bin"),
            Err(other) => panic!("expected Corrupt, got {other}"),
            Ok(_) => panic!("corrupt docmap must not fall back to empty"),
        }
        // Only *absence* falls back to an empty map.
        std::fs::remove_file(dir.join("docmap.bin")).unwrap();
        let loaded = Index::open(&dir).unwrap();
        assert_eq!(loaded.doc_map.entries().len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_name_garbage_and_duplicates_rejected() {
        let idx = small_index("runname", vec![doc("walrus penguin"), doc("walrus")]);
        let dir = legacy_dir("runname-open", &idx);
        let a_run = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().starts_with("run_"))
            .expect("index has at least one run file")
            .path();
        // Trailing garbage after the run id must not parse as a run.
        std::fs::copy(&a_run, dir.join("run_000_00001_extra.iirf")).unwrap();
        match Index::open(&dir) {
            Err(StoreError::Corrupt { name, .. }) => {
                assert_eq!(name, "run_000_00001_extra.iirf")
            }
            Err(other) => panic!("expected Corrupt, got {other}"),
            Ok(_) => panic!("trailing garbage in run name must be rejected"),
        }
        std::fs::remove_file(dir.join("run_000_00001_extra.iirf")).unwrap();
        // Two spellings of the same (indexer, run) pair would double every
        // posting of that run.
        let alias = a_run.file_name().unwrap().to_string_lossy().replace("_0", "_");
        std::fs::copy(&a_run, dir.join(&alias)).unwrap();
        match Index::open(&dir) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(detail.contains("duplicate run file"), "{detail}")
            }
            Err(other) => panic!("expected Corrupt, got {other}"),
            Ok(_) => panic!("duplicate (indexer, run) pair must be rejected"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tmp_residue_means_torn_commit_not_legacy() {
        let idx = small_index("torn", vec![doc("walrus penguin")]);
        let dir = legacy_dir("torn-open", &idx);
        std::fs::write(dir.join("MANIFEST.json.tmp"), b"{").unwrap();
        assert!(matches!(Index::open(&dir), Err(StoreError::TornCommit { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_detects_and_repair_salvages_corruption() {
        let idx = small_index("repair", vec![doc("walrus penguin"), doc("walrus")]);
        let dir =
            std::env::temp_dir().join(format!("ii-core-repair-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        idx.save(&dir).unwrap();
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().starts_with("run_"))
            .unwrap();
        let victim_name = victim.file_name().to_string_lossy().into_owned();
        let mut bytes = std::fs::read(victim.path()).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(victim.path(), &bytes).unwrap();

        let statuses = Index::verify_dir(&dir).unwrap();
        let bad: Vec<&ArtifactStatus> = statuses.iter().filter(|s| !s.ok).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, victim_name);
        assert!(matches!(Index::open(&dir), Err(StoreError::ChecksumMismatch { .. })));

        let report = Index::repair(&dir).unwrap();
        assert!(report.kept.iter().any(|n| n == "dictionary.bin"));
        assert_eq!(report.lost.len(), 1);
        assert_eq!(report.lost[0].0, victim_name);
        // The repaired directory opens cleanly, minus the lost run.
        let loaded = Index::open(&dir).unwrap();
        assert_eq!(loaded.num_terms(), idx.num_terms());
        assert!(Index::verify_dir(&dir).unwrap().iter().all(|s| s.ok));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
