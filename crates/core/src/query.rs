//! Ranked retrieval over the inverted files.
//!
//! The paper's output — postings lists with term frequencies, doc-sorted —
//! is exactly what classic ranked retrieval consumes. This module adds a
//! BM25 scorer and boolean modes on top of [`Index`], demonstrating the
//! index as a drop-in retrieval substrate. Document lengths are not stored
//! in the paper's postings (only `<doc, tf>`), so BM25's length
//! normalization is disabled (b = 0), reducing it to the Robertson/Sparck
//! Jones tf-idf saturation form.

use crate::index::Index;
use ii_corpus::DocId;
use std::collections::HashMap;

/// Boolean combination mode for multi-term queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryMode {
    /// Documents must contain every term.
    And,
    /// Documents may contain any subset of the terms.
    Or,
}

/// BM25 parameters (b is fixed at 0 — no document lengths in the index).
#[derive(Clone, Copy, Debug)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2 }
    }
}

/// A scored document.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedHit {
    /// Document ID.
    pub doc: DocId,
    /// BM25 score.
    pub score: f64,
}

impl Index {
    /// BM25-ranked retrieval. Query terms are normalized like document
    /// terms; stop words are dropped. Returns hits best-first.
    pub fn search_ranked(&self, query: &str, mode: QueryMode, params: Bm25Params) -> Vec<RankedHit> {
        let stage = self.obs.stage("query");
        let _span = stage.span();
        let scanned = self.obs.counter("query.postings_scanned");
        // Collect normalized query terms through the same scratch-based
        // normalizer as the parse path: stem_into only allocates when a
        // kept term is pushed. Sort + dedup keeps idf honest for repeated
        // query words (per-term scores are summed, so order is free).
        let mut terms: Vec<String> = Vec::new();
        let mut stem_buf = ii_text::StemBuf::new();
        let mut it = ii_text::tokenize::tokens(query);
        while let Some(tok) = it.next_token() {
            let stemmed = ii_text::stem_into(tok, &mut stem_buf);
            if !ii_text::is_stop_word(stemmed) {
                terms.push(stemmed.to_string());
            }
        }
        terms.sort_unstable();
        terms.dedup();
        if terms.is_empty() {
            return Vec::new();
        }
        let n_docs = self.num_docs().max(self.doc_map.total_docs()).max(1) as f64;
        let idf_of = |df: f64| ((n_docs - df + 0.5) / (df + 0.5) + 1.0).ln();

        if mode == QueryMode::And {
            // Conjunctive retrieval rides the skip cursors: the rarest
            // term's list drives and the others leapfrog block to block,
            // decoding only the 128-document blocks they land in.
            let mut pairs = Vec::with_capacity(terms.len());
            for term in &terms {
                let cursor = self
                    .dictionary
                    .lookup(term)
                    .and_then(|e| self.run_sets.get(&e.indexer).zip(Some(e.postings)))
                    .and_then(|(set, handle)| set.cursor(handle).ok().flatten());
                // A missing term — or an unreadable list — empties the
                // conjunction.
                let Some(c) = cursor else { return Vec::new() };
                scanned.add(c.df());
                pairs.push((idf_of(c.df() as f64), c));
            }
            pairs.sort_by_key(|(_, c)| c.df());
            let idfs: Vec<f64> = pairs.iter().map(|(idf, _)| *idf).collect();
            let mut cursors: Vec<_> = pairs.into_iter().map(|(_, c)| c).collect();
            let hits = crate::index::intersect_cursors(&mut cursors).unwrap_or_default();
            self.record_block_metrics(&cursors);
            let mut out: Vec<RankedHit> = hits
                .into_iter()
                .map(|(doc, tfs)| {
                    let score = idfs
                        .iter()
                        .zip(&tfs)
                        .map(|(idf, &tf)| {
                            let tf = tf as f64;
                            idf * (tf * (params.k1 + 1.0)) / (tf + params.k1)
                        })
                        .sum();
                    RankedHit { doc, score }
                })
                .collect();
            out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
            return out;
        }

        let mut scores: HashMap<u32, (f64, usize)> = HashMap::new();
        let mut matched_terms = 0usize;
        for term in &terms {
            let Some(list) = self.postings_stemmed(term) else {
                if mode == QueryMode::And {
                    return Vec::new();
                }
                continue;
            };
            matched_terms += 1;
            scanned.add(list.len() as u64);
            let df = list.len() as f64;
            // BM25 idf with the +1 smoothing that keeps it positive.
            let idf = ((n_docs - df + 0.5) / (df + 0.5) + 1.0).ln();
            for p in list.postings() {
                let tf = p.tf as f64;
                let contrib = idf * (tf * (params.k1 + 1.0)) / (tf + params.k1);
                let e = scores.entry(p.doc.0).or_insert((0.0, 0));
                e.0 += contrib;
                e.1 += 1;
            }
        }
        let mut out: Vec<RankedHit> = scores
            .into_iter()
            .filter(|(_, (_, hit_terms))| mode == QueryMode::Or || *hit_terms == matched_terms)
            .map(|(doc, (score, _))| RankedHit { doc: DocId(doc), score })
            .collect();
        out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_corpus::{CollectionSpec, RawDocument, StoredCollection};
    use ii_pipeline::{build_index, PipelineConfig};
    use std::sync::Arc;

    fn index_of(bodies: &[&str]) -> Index {
        let dir = std::env::temp_dir()
            .join(format!("ii-query-test-{}-{}", bodies.len(), std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let docs: Vec<RawDocument> = bodies
            .iter()
            .map(|b| RawDocument { url: String::new(), body: (*b).into() })
            .collect();
        let raw = ii_corpus::container::write_container(&docs);
        let packed = ii_corpus::compress::compress(&raw);
        std::fs::write(dir.join("file_00000.iic"), &packed).unwrap();
        let manifest = ii_corpus::Manifest {
            spec: CollectionSpec {
                name: "query-test".into(),
                num_files: 1,
                docs_per_file: docs.len(),
                mean_doc_tokens: 8,
                vocab_size: 100,
                zipf_s: 1.0,
                html: false,
                seed: 0,
                shift: None,
            },
            stats: ii_corpus::CollectionStats {
                documents: docs.len() as u64,
                uncompressed_bytes: raw.len() as u64,
                compressed_bytes: packed.len() as u64,
                ..Default::default()
            },
            file_compressed_bytes: vec![packed.len() as u64],
            file_uncompressed_bytes: vec![raw.len() as u64],
        };
        std::fs::write(dir.join("manifest.json"), serde_json::to_vec(&manifest).unwrap())
            .unwrap();
        let coll = Arc::new(StoredCollection::open(&dir).unwrap());
        let out = build_index(&coll, &PipelineConfig::small(1, 1, 0)).expect("build");
        std::fs::remove_dir_all(&dir).unwrap();
        Index::from_output(out)
    }

    #[test]
    fn or_mode_returns_partial_matches() {
        let idx = index_of(&["apple banana", "apple", "cherry"]);
        let or = idx.search_ranked("apple banana", QueryMode::Or, Bm25Params::default());
        let or_docs: Vec<u32> = or.iter().map(|h| h.doc.0).collect();
        assert!(or_docs.contains(&0) && or_docs.contains(&1));
        let and = idx.search_ranked("apple banana", QueryMode::And, Bm25Params::default());
        let and_docs: Vec<u32> = and.iter().map(|h| h.doc.0).collect();
        assert_eq!(and_docs, vec![0]);
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        // "apple" in every doc, "quetzal" in one: doc with the rare term
        // must rank first in OR mode.
        let idx = index_of(&["apple", "apple", "apple quetzal", "apple"]);
        let hits = idx.search_ranked("apple quetzal", QueryMode::Or, Bm25Params::default());
        assert_eq!(hits[0].doc, DocId(2));
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn tf_saturates() {
        // BM25's k1 saturation: 10x the tf must NOT give 10x the score.
        let idx = index_of(&[
            "zebra",
            &"zebra ".repeat(10),
        ]);
        let hits = idx.search_ranked("zebra", QueryMode::Or, Bm25Params::default());
        assert_eq!(hits[0].doc, DocId(1), "higher tf still ranks first");
        assert!(
            hits[0].score < hits[1].score * 3.0,
            "saturation bounds the gain: {} vs {}",
            hits[0].score,
            hits[1].score
        );
    }

    #[test]
    fn and_mode_missing_term_empty() {
        let idx = index_of(&["apple banana"]);
        assert!(idx
            .search_ranked("apple nosuchterm", QueryMode::And, Bm25Params::default())
            .is_empty());
        assert!(!idx
            .search_ranked("apple nosuchterm", QueryMode::Or, Bm25Params::default())
            .is_empty());
    }

    #[test]
    fn empty_and_stopword_queries() {
        let idx = index_of(&["apple"]);
        assert!(idx.search_ranked("", QueryMode::Or, Bm25Params::default()).is_empty());
        assert!(idx
            .search_ranked("the of and", QueryMode::Or, Bm25Params::default())
            .is_empty());
    }
}
