//! # ii-core — fast inverted-file construction on heterogeneous platforms
//!
//! A from-scratch Rust reproduction of Wei & JaJa, *A Fast Algorithm for
//! Constructing Inverted Files on Heterogeneous Platforms* (IPDPS 2011):
//! a pipelined indexing system in which parallel parsers feed CPU indexers
//! (popular, Zipf-head trie collections) and GPU indexers (the long tail)
//! through a hybrid trie + B-tree dictionary with 4-byte string caches.
//!
//! This crate is the facade: a fluent [`IndexBuilder`], the queryable,
//! persistable [`Index`], and re-exports of every subsystem crate.
//!
//! ```no_run
//! use ii_core::{corpus::CollectionSpec, IndexBuilder};
//! # fn main() -> std::io::Result<()> {
//! let dir = std::path::Path::new("/tmp/my-collection");
//! ii_core::corpus::StoredCollection::generate(CollectionSpec::wikipedia_like(1.0), dir)?;
//! let index = IndexBuilder::new().parsers(6).cpu_indexers(2).gpus(2).build_from_dir(dir)?;
//! for (doc, score) in index.search("information retrieval") {
//!     println!("doc {doc} score {score}");
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builder;
mod index;
mod query;

pub use builder::IndexBuilder;
pub use index::Index;
pub use query::{Bm25Params, QueryMode, RankedHit};

/// Document-collection substrate (synthetic corpora, compression, storage).
pub use ii_corpus as corpus;
/// Hybrid trie + B-tree dictionary.
pub use ii_dict as dict;
/// Simulated GPU (SIMT warps, shared memory, coalescing, cost model).
pub use ii_gpusim as gpusim;
/// CPU/GPU indexers and load balancing.
pub use ii_indexer as indexer;
/// Metrics registry, stage spans, JSON snapshots.
pub use ii_obs as obs;
/// Pipelined dataflow driver.
pub use ii_pipeline as pipeline;
/// Platform performance model (Fig 10/11, Tables IV/VI, Fig 12).
pub use ii_platsim as platsim;
/// Postings lists, codecs and run files.
pub use ii_postings as postings;
/// Crash-safe artifact storage: manifest, atomic commit, fault injection.
pub use ii_store as store;
/// Parsing: tokenizer, Porter stemmer, stop words, regrouping.
pub use ii_text as text;
