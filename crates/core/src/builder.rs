//! Fluent builder over the pipeline configuration.

use crate::index::Index;
use ii_corpus::StoredCollection;
use ii_indexer::GpuIndexerConfig;
use ii_pipeline::{
    build_index, build_index_durable, DurableOptions, FaultAction, FaultPolicy, GovernorPolicy,
    PipelineConfig, PipelineError, SupervisorPolicy, TelemetryConfig, WorkerFaultPlan,
};
use ii_postings::Codec;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Configures and runs the pipelined heterogeneous indexing system.
///
/// ```no_run
/// use ii_core::IndexBuilder;
/// # fn main() -> std::io::Result<()> {
/// let index = IndexBuilder::new()
///     .parsers(6)
///     .cpu_indexers(2)
///     .gpus(2)
///     .build_from_dir(std::path::Path::new("/data/collection"))?;
/// println!("{} terms", index.num_terms());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct IndexBuilder {
    config: PipelineConfig,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexBuilder {
    /// Paper-default configuration: 6 parsers, 2 CPU indexers, 2 GPUs.
    pub fn new() -> Self {
        IndexBuilder { config: PipelineConfig::default() }
    }

    /// A small configuration for tests and examples.
    pub fn small() -> Self {
        IndexBuilder { config: PipelineConfig::small(2, 1, 1) }
    }

    /// Number of parallel parser threads.
    pub fn parsers(mut self, n: usize) -> Self {
        self.config.num_parsers = n;
        self
    }

    /// Number of CPU indexer threads.
    pub fn cpu_indexers(mut self, n: usize) -> Self {
        self.config.num_cpu_indexers = n;
        self
    }

    /// Number of (simulated) GPU indexers.
    pub fn gpus(mut self, n: usize) -> Self {
        self.config.num_gpus = n;
        self
    }

    /// GPU sizing (device memory, blocks, capacities).
    pub fn gpu_config(mut self, cfg: GpuIndexerConfig) -> Self {
        self.config.gpu_config = cfg;
        self
    }

    /// Postings compression codec (default: variable-byte, as the paper).
    pub fn codec(mut self, codec: Codec) -> Self {
        self.config.codec = codec;
        self
    }

    /// Size of the popular (CPU-bound) trie-collection group.
    pub fn popular_count(mut self, n: usize) -> Self {
        self.config.popular_count = n;
        self
    }

    /// Batches per output run.
    pub fn batches_per_run(mut self, n: usize) -> Self {
        self.config.batches_per_run = n.max(1);
        self
    }

    /// Retry budget per file for transient read faults.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.config.fault_policy.max_retries = n;
        self
    }

    /// What to do with unrecoverable files: abort ([`FaultAction::FailFast`],
    /// the default) or quarantine and continue ([`FaultAction::SkipFile`]).
    pub fn on_fault(mut self, action: FaultAction) -> Self {
        self.config.fault_policy.action = action;
        self
    }

    /// Replace the whole fault policy at once.
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.config.fault_policy = policy;
        self
    }

    /// Enable or disable worker-death supervision (on by default). Off,
    /// a dead parser is a fatal `ParserDisconnected` error — the
    /// pre-supervisor pipeline semantics.
    pub fn supervised(mut self, enabled: bool) -> Self {
        self.config.supervision.enabled = enabled;
        self
    }

    /// Heartbeat silence after which the watchdog declares a worker dead
    /// and reassigns its partitions (default 30s).
    pub fn stall_timeout(mut self, d: std::time::Duration) -> Self {
        self.config.supervision = self.config.supervision.with_stall_timeout(d);
        self
    }

    /// Replace the whole supervision policy at once.
    pub fn supervision(mut self, policy: SupervisorPolicy) -> Self {
        self.config.supervision = policy;
        self
    }

    /// Inject a seeded worker-fault schedule (chaos testing): kills and
    /// stalls at chosen pipeline points. Inert when supervision is off.
    pub fn worker_faults(mut self, plan: WorkerFaultPlan) -> Self {
        self.config.worker_faults = plan;
        self
    }

    /// Record an event-level trace of the build (per-worker timelines,
    /// stall spans, queue-depth samples). The merged trace lands in the
    /// report's `trace` field; export with `Trace::to_chrome_json`.
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.config.trace.enabled = enabled;
        self
    }

    /// Hard memory budget in bytes for the whole build (0 = unlimited).
    /// Under pressure the pipeline degrades deterministically —
    /// backpressure on the parsers, early run flushes, GPU-shard shedding —
    /// and refuses with a typed `MemoryBudgetExceeded` only when even the
    /// minimal configuration cannot fit. The logical index is identical at
    /// every budget.
    pub fn mem_budget(mut self, bytes: u64) -> Self {
        self.config.governor = if bytes == 0 {
            GovernorPolicy::unlimited()
        } else {
            GovernorPolicy::default().with_budget(bytes)
        };
        self
    }

    /// Replace the whole governor policy (budget + watermarks) at once.
    pub fn governor(mut self, policy: GovernorPolicy) -> Self {
        self.config.governor = policy;
        self
    }

    /// Serve a live OpenMetrics endpoint on `addr` (e.g. `127.0.0.1:9185`)
    /// for the duration of the build — the `ii build --metrics-addr`
    /// surface, consumed by `ii top` and Prometheus scrapes.
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.config.telemetry.metrics_addr = Some(addr.into());
        self
    }

    /// Toggle the always-on flight recorder (black-box ring of coarse
    /// pipeline samples; enabled by default, priced under the `obs_overhead`
    /// gate). Disabling it also leaves post-mortem bundles without a
    /// timeline, so prefer tuning the cadence over switching it off.
    pub fn flight_recorder(mut self, enabled: bool) -> Self {
        self.config.telemetry.recorder.enabled = enabled;
        self
    }

    /// Where automatic post-mortem bundles are written. Default: a
    /// `postmortem/` directory inside the durable index dir (in-memory
    /// builds then write none).
    pub fn postmortem_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.telemetry.postmortem_dir = Some(dir.into());
        self
    }

    /// Replace the whole telemetry configuration (recorder cadence,
    /// post-mortem switches, metrics endpoint) at once.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.config.telemetry = cfg;
        self
    }

    /// The underlying pipeline configuration.
    pub fn pipeline_config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Build an index over an already-opened stored collection.
    pub fn build(&self, collection: &Arc<StoredCollection>) -> Result<Index, PipelineError> {
        Ok(Index::from_output(build_index(collection, &self.config)?))
    }

    /// Build with crash-safe persistence into `index_dir`: run-boundary
    /// checkpoints every `checkpoint_every` runs plus a final atomic index
    /// commit. With `resume`, a build interrupted after a checkpoint
    /// continues from it and yields a byte-identical index.
    pub fn build_durable(
        &self,
        collection: &Arc<StoredCollection>,
        index_dir: &Path,
        checkpoint_every: usize,
        resume: bool,
    ) -> Result<Index, PipelineError> {
        let opts = DurableOptions::new(index_dir).checkpoint_every(checkpoint_every).resume(resume);
        Ok(Index::from_output(build_index_durable(collection, &self.config, &opts)?))
    }

    /// Open the collection directory and [`Self::build_durable`] into
    /// `index_dir`.
    pub fn build_dir_durable(
        &self,
        collection_dir: &Path,
        index_dir: &Path,
        checkpoint_every: usize,
        resume: bool,
    ) -> io::Result<Index> {
        let coll = Arc::new(StoredCollection::open(collection_dir)?);
        self.build_durable(&coll, index_dir, checkpoint_every, resume).map_err(io::Error::other)
    }

    /// Open the collection directory and build.
    pub fn build_from_dir(&self, dir: &Path) -> io::Result<Index> {
        let coll = Arc::new(StoredCollection::open(dir)?);
        self.build(&coll).map_err(io::Error::other)
    }

    /// Build the plain index plus a positional index for phrase search
    /// (the Ivory-style "extra information" extension; see
    /// `ii_indexer::positional`). The positional pass is a separate serial
    /// sweep over the collection, so its extra cost is directly visible in
    /// wall time (measured by the `ablate_positional` bench).
    pub fn build_with_positions(
        &self,
        collection: &Arc<StoredCollection>,
    ) -> io::Result<(Index, ii_indexer::PositionalIndex)> {
        let index = self.build(collection).map_err(io::Error::other)?;
        let html = collection.manifest.spec.html;
        let mut pos = ii_indexer::PositionalIndexer::new();
        let mut offset = 0u32;
        for f in 0..collection.num_files() {
            let docs = collection.read_file_docs(f)?;
            let batch = ii_text::parse_documents(&docs, html, f);
            pos.index_batch(&batch, offset);
            offset += batch.num_docs;
        }
        Ok((index, pos.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_corpus::CollectionSpec;

    #[test]
    fn builder_fluent_api() {
        let b = IndexBuilder::new()
            .parsers(3)
            .cpu_indexers(1)
            .gpus(0)
            .popular_count(5)
            .max_retries(5)
            .on_fault(FaultAction::SkipFile)
            .stall_timeout(std::time::Duration::from_secs(5))
            .supervised(false);
        assert_eq!(b.pipeline_config().num_parsers, 3);
        assert_eq!(b.pipeline_config().num_cpu_indexers, 1);
        assert_eq!(b.pipeline_config().num_gpus, 0);
        assert_eq!(b.pipeline_config().popular_count, 5);
        assert_eq!(b.pipeline_config().fault_policy.max_retries, 5);
        assert_eq!(b.pipeline_config().fault_policy.action, FaultAction::SkipFile);
        assert_eq!(
            b.pipeline_config().supervision.stall_timeout,
            std::time::Duration::from_secs(5)
        );
        assert!(!b.pipeline_config().supervision.enabled);
        let b = b.supervised(true).worker_faults(
            WorkerFaultPlan::none().kill(ii_pipeline::WorkerClass::GpuIndexer, 0, 1),
        );
        assert!(b.pipeline_config().supervision.enabled);
        assert!(!b.pipeline_config().worker_faults.is_empty());
        let b = b.mem_budget(64 << 20);
        assert_eq!(b.pipeline_config().governor.budget_bytes, 64 << 20);
        let b = b.mem_budget(0);
        assert_eq!(b.pipeline_config().governor.budget_bytes, 0, "0 = unlimited");
    }

    #[test]
    fn build_with_positions_enables_phrase_search() {
        let dir = std::env::temp_dir()
            .join(format!("ii-builder-pos-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ii_corpus::StoredCollection::generate(CollectionSpec::tiny(72), &dir).unwrap();
        let coll = Arc::new(StoredCollection::open(&dir).unwrap());
        let (index, positional) = IndexBuilder::small().build_with_positions(&coll).unwrap();
        assert_eq!(index.num_terms(), positional.len());
        // Every phrase hit must also be a conjunctive hit of the plain index.
        let e = index.dictionary.entries().first().unwrap().full_term();
        let hits = positional.phrase_search(&e);
        for (doc, _) in &hits {
            let plain = index.postings_stemmed(&e).unwrap();
            assert!(plain.postings().iter().any(|p| p.doc == *doc));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn build_from_dir_end_to_end() {
        let dir = std::env::temp_dir()
            .join(format!("ii-builder-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ii_corpus::StoredCollection::generate(CollectionSpec::tiny(71), &dir).unwrap();
        let idx = IndexBuilder::small().build_from_dir(&dir).unwrap();
        assert!(idx.num_terms() > 0);
        assert!(idx.num_docs() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
