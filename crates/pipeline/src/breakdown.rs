//! Per-stage breakdown of one pipeline build (paper Table V / Fig 9).
//!
//! `build_index` records every stage of the dataflow — serialized read,
//! decompression, parsing, indexing, run flush, dictionary combine/write —
//! into a per-build [`ii_obs::Registry`] and freezes it here. The
//! breakdown carries wall time, queue-wait time, payload bytes, and item
//! counts per stage, plus the deep counters (B-tree node splits,
//! string-cache hit rate, warp comparisons, simulated-GPU traffic), and
//! renders the Table V-style text used by `ii build --stats`.

use ii_obs::{Snapshot, StageSnapshot};

/// Frozen per-stage metrics of one build.
#[derive(Clone, Debug, Default)]
pub struct StageBreakdown {
    /// The raw registry snapshot (counters, gauges, histograms, stages).
    /// `snapshot.to_json()` is the `--stats-json` / bench-file format.
    pub snapshot: Snapshot,
}

impl StageBreakdown {
    /// Freeze a registry into a breakdown.
    pub fn from_registry(r: &ii_obs::Registry) -> StageBreakdown {
        StageBreakdown { snapshot: r.snapshot() }
    }

    /// A stage's frozen metrics, if it was recorded.
    pub fn stage(&self, name: &str) -> Option<&StageSnapshot> {
        self.snapshot.stages.get(name)
    }

    /// A counter's value (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.snapshot.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's last level (0 when never set).
    pub fn gauge(&self, name: &str) -> i64 {
        self.snapshot.gauges.get(name).copied().unwrap_or(0)
    }

    /// Fraction of dictionary node searches settled by the in-node 4-byte
    /// head/cache array alone (paper §III.D.1), `None` before any search.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits = self.counter("dict.cache_hits");
        let total = hits + self.counter("dict.cache_misses");
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Render the Table V-style per-stage table plus the deep counters.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12}{:>10}{:>12}{:>14}{:>8}{:>10}\n",
            "stage", "wall s", "q-wait s", "bytes", "items", "MB/s"
        ));
        out.push_str(&format!("{}\n", "-".repeat(66)));
        // Dataflow order, not alphabetical.
        for name in ["read", "decompress", "parse", "index", "post_process", "dict_combine", "dict_write"] {
            let Some(s) = self.stage(name) else { continue };
            let mb_s = if s.wall_seconds > 0.0 {
                s.bytes as f64 / 1e6 / s.wall_seconds
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<12}{:>10.3}{:>12.3}{:>14}{:>8}{:>10.1}\n",
                name, s.wall_seconds, s.queue_wait_seconds, s.bytes, s.items, mb_s
            ));
        }
        // Any stage outside the canonical dataflow still gets a row.
        for (name, s) in &self.snapshot.stages {
            if ["read", "decompress", "parse", "index", "post_process", "dict_combine", "dict_write"]
                .contains(&name.as_str())
            {
                continue;
            }
            out.push_str(&format!(
                "{:<12}{:>10.3}{:>12.3}{:>14}{:>8}\n",
                name, s.wall_seconds, s.queue_wait_seconds, s.bytes, s.items
            ));
        }
        if let Some(rate) = self.cache_hit_rate() {
            out.push_str(&format!(
                "string cache: {:.1}% hit ({} hits / {} misses), {} node splits, {} head ties settled by length\n",
                rate * 100.0,
                self.counter("dict.cache_hits"),
                self.counter("dict.cache_misses"),
                self.counter("dict.node_splits"),
                self.counter("dict.head_tie_breaks"),
            ));
        }
        if self.counter("gpu.warp_comparisons") > 0 {
            out.push_str(&format!(
                "gpu: {} warp comparisons, {} global transactions ({} B), h2d {} B, d2h {} B\n",
                self.counter("gpu.warp_comparisons"),
                self.counter("gpu.global_transactions"),
                self.counter("gpu.global_bytes"),
                self.counter("gpu.h2d_bytes"),
                self.counter("gpu.d2h_bytes"),
            ));
        }
        // Only builds that ran with a budget (or hit any rung of the
        // degradation ladder) get a governor row; unlimited, untouched
        // builds keep the table unchanged.
        let budget = self.gauge("governor.budget_bytes");
        let degraded = self.counter("governor.credit_waits")
            + self.counter("governor.early_flushes")
            + self.counter("governor.gpu_sheds")
            + self.counter("governor.squeezes");
        if budget > 0 || degraded > 0 {
            out.push_str(&format!(
                "governor: budget {:.1} MB (high water {:.1} MB), {} credit waits ({:.3} s), \
                 {} early flushes, {} gpu sheds, {} squeezes\n",
                budget as f64 / 1e6,
                self.gauge("governor.high_water_bytes") as f64 / 1e6,
                self.counter("governor.credit_waits"),
                self.counter("governor.credit_wait_ns") as f64 / 1e9,
                self.counter("governor.early_flushes"),
                self.counter("governor.gpu_sheds"),
                self.counter("governor.squeezes"),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_obs::Registry;

    #[test]
    fn render_includes_known_stages_in_order() {
        let r = Registry::new();
        drop(r.stage("index").span());
        {
            let read = r.stage("read");
            let mut s = read.span();
            s.add_bytes(4096);
        }
        r.counter("dict.cache_hits").add(90);
        r.counter("dict.cache_misses").add(10);
        r.counter("dict.node_splits").add(3);
        let b = StageBreakdown::from_registry(&r);
        let t = b.render_table();
        let read_at = t.find("read").unwrap();
        let index_at = t.find("index").unwrap();
        assert!(read_at < index_at, "dataflow order:\n{t}");
        assert!(t.contains("90.0% hit"), "{t}");
        assert!(t.contains("3 node splits"), "{t}");
        assert_eq!(b.cache_hit_rate(), Some(0.9));
        assert_eq!(b.counter("no.such.counter"), 0);
    }

    #[test]
    fn empty_breakdown_renders_header_only() {
        let b = StageBreakdown::default();
        let t = b.render_table();
        assert!(t.contains("stage"));
        assert!(b.cache_hit_rate().is_none());
        assert!(!t.contains("governor:"), "no governor row without a budget");
    }

    #[test]
    fn governor_row_appears_only_under_budget_or_degradation() {
        let r = Registry::new();
        r.gauge("governor.budget_bytes").set(64_000_000);
        r.gauge("governor.high_water_bytes").set(48_000_000);
        r.counter("governor.early_flushes").add(3);
        let b = StageBreakdown::from_registry(&r);
        let t = b.render_table();
        assert!(t.contains("governor: budget 64.0 MB (high water 48.0 MB)"), "{t}");
        assert!(t.contains("3 early flushes"), "{t}");
        assert_eq!(b.gauge("governor.budget_bytes"), 64_000_000);
        assert_eq!(b.gauge("no.such.gauge"), 0);

        // Unlimited budget but a squeeze mid-build still earns the row.
        let r2 = Registry::new();
        r2.counter("governor.squeezes").add(1);
        let t2 = StageBreakdown::from_registry(&r2).render_table();
        assert!(t2.contains("1 squeezes"), "{t2}");
    }
}
