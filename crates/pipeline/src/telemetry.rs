//! Live telemetry and crash forensics: the build-time wiring of ii-obs's
//! flight recorder, the automatic post-mortem bundle, and its renderer.
//!
//! The flight recorder answers "what were the last seconds like?" when a
//! build dies; this module decides *what it watches* (the index stage,
//! governor resident/high-water figures, queue gauges, every worker
//! heartbeat), *when a bundle is cut* (any failure-domain event: worker
//! death, quarantine, memory-budget abort, commit failure), and *what the
//! bundle holds*:
//!
//! * an `event` section — trigger, cause detail, batch ordinal, the
//!   supervision ledger, quarantined files. Fully deterministic: two
//!   identically-seeded chaos builds produce byte-identical event
//!   sections (a property test pins this).
//! * a `telemetry` section — flight-recorder ring dump, full registry
//!   snapshot, and the tail of each worker's trace ring (when tracing is
//!   on). Timing-dependent by nature, so it comes last in the file.
//!
//! Bundles are committed through ii-store's write-temp → fsync → rename
//! protocol ([`ii_store::write_file_durable`]) into a `postmortem/`
//! subdirectory of the index dir — a crash while writing the crash report
//! can't tear it. Writing is best-effort and always via the real
//! filesystem: a post-mortem must never turn one failure into two, and
//! must not perturb the op numbering of an injected [`ii_store::CrashVfs`].
//!
//! `ii postmortem <bundle>` renders [`render_bundle_report`]: cause
//! attribution plus a transposed timeline (one row per watched metric,
//! one column per flight-recorder sample).

use crate::fault::FileFault;
use crate::supervisor::SupervisionReport;
use ii_obs::json::{self, JsonValue};
use ii_obs::{FlightRecorder, RecorderConfig, Registry, Trace, Tracer, WorkerTrace};
use ii_store::RealVfs;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Subdirectory of the index dir where bundles land.
pub const POSTMORTEM_DIR: &str = "postmortem";

/// Version of the bundle JSON layout.
pub const BUNDLE_SCHEMA_VERSION: u32 = 1;

/// Per-worker trace events kept in a bundle's trace tail.
const TRACE_TAIL_EVENTS: usize = 64;

/// Flight-recorder samples shown per timeline row in the rendered report.
const TIMELINE_COLUMNS: usize = 8;

/// Telemetry knobs on [`crate::PipelineConfig`].
///
/// Excluded from the checkpoint config fingerprint, like tracing and
/// supervision: telemetry observes a build, it never changes index bytes.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Flight-recorder cadence and ring size (enabled by default; the
    /// per-message cost is priced in the `obs_overhead` bench gate).
    pub recorder: RecorderConfig,
    /// Cut automatic post-mortem bundles on failure-domain events.
    pub postmortem: bool,
    /// Where bundles land. `None` (default) = `postmortem/` inside the
    /// durable index dir; in-memory builds then write no bundles. Tests
    /// and embedders can point it anywhere.
    pub postmortem_dir: Option<PathBuf>,
    /// Serve a live OpenMetrics endpoint on this address for the whole
    /// build (`ii build --metrics-addr`).
    pub metrics_addr: Option<String>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            recorder: RecorderConfig::default(),
            postmortem: true,
            postmortem_dir: None,
            metrics_addr: None,
        }
    }
}

/// The deterministic half of a bundle: what happened, and the supervision
/// state at that moment.
#[derive(Debug)]
pub struct PostmortemContext<'a> {
    /// Event class: `worker-death`, `quarantine`, `file-fault`,
    /// `memory-budget`, `commit-failure`.
    pub trigger: &'a str,
    /// Human-readable cause (a [`crate::WorkerDeath`] display, a fault
    /// message, the budget figures).
    pub detail: String,
    /// Batches fully indexed when the event fired.
    pub batch_ordinal: usize,
    /// The supervisor's ledger at the moment of the event.
    pub supervision: &'a SupervisionReport,
    /// Files quarantined so far.
    pub quarantined: &'a [FileFault],
}

/// Cuts bundles into a directory; inert when constructed with `None`.
#[derive(Debug, Default)]
pub struct PostmortemWriter {
    dir: Option<PathBuf>,
    written: Vec<PathBuf>,
    failed: u32,
}

impl PostmortemWriter {
    /// A writer targeting `dir` (`None` = write nothing).
    pub fn new(dir: Option<PathBuf>) -> PostmortemWriter {
        PostmortemWriter { dir, written: Vec::new(), failed: 0 }
    }

    /// Bundles successfully written so far.
    pub fn bundles_written(&self) -> u32 {
        self.written.len() as u32
    }

    /// Bundle writes that themselves failed (best-effort; counted, never
    /// raised).
    pub fn failures(&self) -> u32 {
        self.failed
    }

    /// Paths of the bundles written, in order.
    pub fn paths(&self) -> &[PathBuf] {
        &self.written
    }

    /// Force a last flight-recorder sample and durably write one bundle.
    /// Returns the bundle path, or `None` when disabled or the write
    /// failed — a post-mortem never turns one failure into two.
    pub fn write(
        &mut self,
        ctx: &PostmortemContext<'_>,
        recorder: &FlightRecorder,
        registry: &Registry,
        tracer: &Tracer,
    ) -> Option<PathBuf> {
        let dir = self.dir.clone()?;
        recorder.force_sample();
        let bundle = render_bundle(ctx, recorder, registry, tracer);
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("bundle_{:03}_{}.json", self.written.len(), ctx.trigger));
        match ii_store::write_file_durable(&RealVfs, &path, bundle.as_bytes()) {
            Ok(()) => {
                self.written.push(path.clone());
                Some(path)
            }
            Err(_) => {
                self.failed += 1;
                None
            }
        }
    }
}

/// The deterministic `event` section (byte-identical across
/// identically-seeded runs).
fn render_event_json(ctx: &PostmortemContext<'_>) -> String {
    let mut o = String::from("{\n  \"trigger\": ");
    json::write_json_str(&mut o, ctx.trigger);
    o.push_str(",\n  \"detail\": ");
    json::write_json_str(&mut o, &ctx.detail);
    o.push_str(&format!(",\n  \"batch_ordinal\": {},\n  \"deaths\": [", ctx.batch_ordinal));
    for (i, d) in ctx.supervision.deaths.iter().enumerate() {
        o.push_str(if i == 0 { "\n    " } else { ",\n    " });
        o.push_str("{\"class\": ");
        json::write_json_str(&mut o, &d.class.to_string());
        o.push_str(&format!(", \"index\": {}, \"cause\": ", d.index));
        json::write_json_str(&mut o, &d.cause.to_string());
        o.push('}');
    }
    let s = ctx.supervision;
    o.push_str(&format!(
        "\n  ],\n  \"reassignments\": {}, \"gpu_takeovers\": {}, \"inline_parsed_files\": {}, \"commit_retries\": {},\n  \"lossy_incidents\": [",
        s.reassignments, s.gpu_takeovers, s.inline_parsed_files, s.commit_retries
    ));
    for (i, l) in s.lossy_incidents.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        json::write_json_str(&mut o, l);
    }
    o.push_str("],\n  \"quarantined_files\": [");
    for (i, f) in ctx.quarantined.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        o.push_str(&f.file_idx.to_string());
    }
    o.push_str("]\n}");
    o
}

/// The last [`TRACE_TAIL_EVENTS`] events of each worker's ring.
fn trace_tail(full: &Trace) -> Trace {
    Trace {
        workers: full
            .workers
            .iter()
            .map(|w| {
                let skip = w.events.len().saturating_sub(TRACE_TAIL_EVENTS);
                WorkerTrace {
                    name: w.name.clone(),
                    events: w.events[skip..].to_vec(),
                    dropped: w.dropped + skip as u64,
                }
            })
            .collect(),
        gauges: full.gauges.clone(),
        dropped: full.dropped,
    }
}

/// Assemble the full bundle: deterministic `event` first, timing-dependent
/// `telemetry` last.
fn render_bundle(
    ctx: &PostmortemContext<'_>,
    recorder: &FlightRecorder,
    registry: &Registry,
    tracer: &Tracer,
) -> String {
    let mut o = format!("{{\n\"schema_version\": {BUNDLE_SCHEMA_VERSION},\n\"event\": ");
    o.push_str(&render_event_json(ctx));
    o.push_str(",\n\"telemetry\": {\n\"flight_recorder\": ");
    match recorder.dump() {
        Some(d) => o.push_str(&d.to_json()),
        None => o.push_str("null"),
    }
    o.push_str(",\n\"snapshot\": ");
    o.push_str(registry.snapshot().to_json().trim_end());
    o.push_str(",\n\"trace_tail\": ");
    match tracer.finish() {
        Some(trace) if !trace.workers.is_empty() => {
            o.push_str(trace_tail(&trace).to_chrome_json().trim_end());
        }
        _ => o.push_str("null"),
    }
    o.push_str("\n}\n}\n");
    o
}

/// Bundle files in `dir`, sorted by name (write order).
pub fn list_bundles(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && p.extension().is_some_and(|e| e == "json")
                && p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("bundle_"))
        })
        .collect();
    out.sort();
    Ok(out)
}

fn short_num(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Append the transposed flight-recorder timeline: one row per watched
/// metric, one column per sample (last [`TIMELINE_COLUMNS`]).
fn render_timeline(fr: &JsonValue, o: &mut String) {
    let names = |key: &str| -> Vec<String> {
        fr.get(key)
            .and_then(|v| v.as_arr())
            .map(|a| a.iter().map(|n| n.as_str().unwrap_or("?").to_string()).collect())
            .unwrap_or_default()
    };
    let counters = names("counters");
    let gauges = names("gauges");
    let workers = names("workers");
    let samples = fr.get("samples").and_then(|v| v.as_arr()).unwrap_or(&[]);
    let dropped = fr.get("dropped").and_then(|v| v.as_u64()).unwrap_or(0);
    o.push_str(&format!(
        "flight recorder: {} samples in ring ({} evicted)\n",
        samples.len(),
        dropped
    ));
    if samples.is_empty() {
        return;
    }
    let take = samples.len().min(TIMELINE_COLUMNS);
    let first_shown = samples.len() - take;
    let window = &samples[first_shown..];
    // Value of series `key[idx]` in one sample.
    let val = |s: &JsonValue, key: &str, idx: usize| -> f64 {
        s.get(key).and_then(|v| v.as_arr()).and_then(|a| a.get(idx)).and_then(|v| v.as_f64()).unwrap_or(0.0)
    };
    let label_w = counters
        .iter()
        .map(|n| n.len() + 2)
        .chain(gauges.iter().map(|n| n.len()))
        .chain(workers.iter().map(|n| n.len() + 10))
        .chain(["t_ms".len()])
        .max()
        .unwrap_or(4)
        .max(4);
    o.push_str(&format!(
        "timeline (last {take} of {} samples, oldest → newest; Δ = delta per sample):\n",
        samples.len()
    ));
    let mut row = |label: &str, cells: Vec<String>| {
        o.push_str(&format!("  {label:<label_w$}"));
        for c in cells {
            o.push_str(&format!(" {c:>8}"));
        }
        o.push('\n');
    };
    row(
        "t_ms",
        window
            .iter()
            .map(|s| format!("{:.0}", s.get("t_ns").and_then(|v| v.as_f64()).unwrap_or(0.0) / 1e6))
            .collect(),
    );
    for (ci, name) in counters.iter().enumerate() {
        let cells = window
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let prev = if first_shown + i == 0 {
                    0.0
                } else {
                    val(&samples[first_shown + i - 1], "c", ci)
                };
                short_num(val(s, "c", ci) - prev)
            })
            .collect();
        row(&format!("Δ {name}"), cells);
    }
    for (gi, name) in gauges.iter().enumerate() {
        let cells = window.iter().map(|s| short_num(val(s, "g", gi))).collect();
        row(name, cells);
    }
    for (wi, name) in workers.iter().enumerate() {
        let cells =
            window.iter().map(|s| short_num(val(s, "idle_ns", wi) / 1e6)).collect();
        row(&format!("idle {name} (ms)"), cells);
    }
}

/// Render a bundle's human-readable report: cause attribution, the
/// supervision ledger, and the flight-recorder timeline. This is what
/// `ii postmortem` prints.
pub fn render_bundle_report(text: &str) -> Result<String, String> {
    let v = json::parse_json(text)?;
    let event = v.get("event").ok_or("bundle has no 'event' section")?;
    let schema = v.get("schema_version").and_then(|x| x.as_u64()).unwrap_or(0);
    if schema > BUNDLE_SCHEMA_VERSION as u64 {
        return Err(format!(
            "bundle schema {schema} is newer than this build reads ({BUNDLE_SCHEMA_VERSION})"
        ));
    }
    let sv = |k: &str| event.get(k).and_then(|x| x.as_str()).unwrap_or("?").to_string();
    let nv = |k: &str| event.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
    let mut o = format!("post-mortem bundle (schema {schema})\n");
    o.push_str(&format!("trigger: {}\n", sv("trigger")));
    o.push_str(&format!("cause: {}\n", sv("detail")));
    o.push_str(&format!("batch ordinal: {}\n", nv("batch_ordinal")));
    if let Some(deaths) = event.get("deaths").and_then(|d| d.as_arr()) {
        if !deaths.is_empty() {
            o.push_str("deaths:\n");
            for d in deaths {
                o.push_str(&format!(
                    "  - {} {} died ({})\n",
                    d.get("class").and_then(|x| x.as_str()).unwrap_or("?"),
                    d.get("index").and_then(|x| x.as_u64()).unwrap_or(0),
                    d.get("cause").and_then(|x| x.as_str()).unwrap_or("?"),
                ));
            }
        }
    }
    o.push_str(&format!(
        "reassignments: {} (gpu takeovers: {}), inline parsed files: {}, commit retries: {}\n",
        nv("reassignments"),
        nv("gpu_takeovers"),
        nv("inline_parsed_files"),
        nv("commit_retries")
    ));
    if let Some(lossy) = event.get("lossy_incidents").and_then(|l| l.as_arr()) {
        if !lossy.is_empty() {
            o.push_str(&format!("lossy incidents: {}\n", lossy.len()));
            for l in lossy {
                o.push_str(&format!("  - {}\n", l.as_str().unwrap_or("?")));
            }
        }
    }
    match event.get("quarantined_files").and_then(|q| q.as_arr()) {
        Some(q) if !q.is_empty() => {
            let idxs: Vec<String> =
                q.iter().map(|x| format!("{}", x.as_u64().unwrap_or(0))).collect();
            o.push_str(&format!("quarantined files: {}\n", idxs.join(", ")));
        }
        _ => {}
    }
    let telemetry = v.get("telemetry");
    match telemetry.and_then(|t| t.get("flight_recorder")) {
        Some(JsonValue::Null) | None => o.push_str("flight recorder: disabled\n"),
        Some(fr) => render_timeline(fr, &mut o),
    }
    if let Some(trace) = telemetry.and_then(|t| t.get("trace_tail")) {
        if let Some(events) = trace.get("traceEvents").and_then(|e| e.as_arr()) {
            o.push_str(&format!("trace tail: {} events\n", events.len()));
        }
    }
    Ok(o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{DeathCause, WorkerDeath};
    use crate::WorkerClass;
    use std::sync::Arc;
    use std::time::Duration;

    fn sample_ledger() -> SupervisionReport {
        SupervisionReport {
            deaths: vec![WorkerDeath {
                class: WorkerClass::GpuIndexer,
                index: 0,
                cause: DeathCause::Injected,
            }],
            reassignments: 2,
            gpu_takeovers: 2,
            inline_parsed_files: 0,
            fallback_seconds: 0.0,
            commit_retries: 0,
            lossy_incidents: vec![],
        }
    }

    fn harness() -> (FlightRecorder, Registry, Tracer) {
        let recorder = FlightRecorder::new(16, Duration::ZERO);
        let registry = Registry::new();
        let c = registry.counter("pipeline.docs");
        recorder.watch_counter("pipeline.docs", Arc::clone(&c));
        c.add(42);
        recorder.maybe_sample();
        c.add(8);
        (recorder, registry, Tracer::disabled())
    }

    #[test]
    fn bundle_renders_and_report_attributes_cause() {
        let (recorder, registry, tracer) = harness();
        let ledger = sample_ledger();
        let ctx = PostmortemContext {
            trigger: "worker-death",
            detail: "gpu-indexer 0 died (injected kill)".into(),
            batch_ordinal: 3,
            supervision: &ledger,
            quarantined: &[],
        };
        recorder.force_sample();
        let bundle = render_bundle(&ctx, &recorder, &registry, &tracer);
        json::parse_json(&bundle).expect("bundle must be valid JSON");
        let report = render_bundle_report(&bundle).expect("report");
        assert!(report.contains("trigger: worker-death"), "{report}");
        assert!(report.contains("cause: gpu-indexer 0 died (injected kill)"), "{report}");
        assert!(report.contains("- gpu-indexer 0 died (injected kill)"), "{report}");
        assert!(report.contains("batch ordinal: 3"), "{report}");
        assert!(report.contains("reassignments: 2 (gpu takeovers: 2)"), "{report}");
        assert!(report.contains("Δ pipeline.docs"), "{report}");
        // The event section precedes the telemetry section.
        assert!(bundle.find("\"event\"").unwrap() < bundle.find("\"telemetry\"").unwrap());
    }

    #[test]
    fn event_section_is_deterministic() {
        let ledger = sample_ledger();
        let make = || {
            render_event_json(&PostmortemContext {
                trigger: "memory-budget",
                detail: "budget 1024 B, needed 4096 B".into(),
                batch_ordinal: 7,
                supervision: &ledger,
                quarantined: &[],
            })
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn writer_is_inert_without_a_dir_and_writes_bundles_with_one() {
        let (recorder, registry, tracer) = harness();
        let ledger = SupervisionReport::default();
        let ctx = PostmortemContext {
            trigger: "quarantine",
            detail: "file 3: permanent fault".into(),
            batch_ordinal: 1,
            supervision: &ledger,
            quarantined: &[],
        };
        let mut inert = PostmortemWriter::new(None);
        assert!(inert.write(&ctx, &recorder, &registry, &tracer).is_none());
        assert_eq!(inert.bundles_written(), 0);

        let dir = std::env::temp_dir()
            .join(format!("ii-postmortem-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut writer = PostmortemWriter::new(Some(dir.clone()));
        let p1 = writer.write(&ctx, &recorder, &registry, &tracer).expect("bundle 1");
        let p2 = writer.write(&ctx, &recorder, &registry, &tracer).expect("bundle 2");
        assert_eq!(writer.bundles_written(), 2);
        assert_eq!(writer.failures(), 0);
        assert!(p1.file_name().unwrap().to_string_lossy().starts_with("bundle_000_"));
        assert!(p2.file_name().unwrap().to_string_lossy().starts_with("bundle_001_"));
        let listed = list_bundles(&dir).unwrap();
        assert_eq!(listed, vec![p1.clone(), p2]);
        let text = fs::read_to_string(&p1).unwrap();
        render_bundle_report(&text).expect("written bundle renders");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn trace_tail_keeps_last_events_and_counts_the_rest_dropped() {
        let mut full = Trace::default();
        let mk = |i: u64| ii_obs::TraceEvent {
            kind: ii_obs::TraceKind::Parse,
            t_start_ns: i * 10,
            t_end_ns: i * 10 + 5,
            bytes: 0,
            batch_id: 0,
            trie_lo: 0,
            trie_hi: 0,
            gpu: None,
        };
        full.workers.push(WorkerTrace {
            name: "parser-0".into(),
            events: (0..(TRACE_TAIL_EVENTS as u64 + 10)).map(mk).collect(),
            dropped: 3,
        });
        let tail = trace_tail(&full);
        assert_eq!(tail.workers[0].events.len(), TRACE_TAIL_EVENTS);
        assert_eq!(tail.workers[0].dropped, 13);
        assert_eq!(tail.workers[0].events.last().unwrap().t_start_ns, (TRACE_TAIL_EVENTS as u64 + 9) * 10);
    }
}
