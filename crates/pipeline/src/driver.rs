//! End-to-end pipelined indexing (paper Fig 9, Table VI).
//!
//! `build_index` drives the full system over a stored collection:
//! sampling → balance plan → parallel parsers → round-robin batch
//! consumption by the indexer pool → per-run postings flushes → dictionary
//! combine → dictionary write. It reports the same timing rows as the
//! paper's Table VI plus per-file indexing times for Fig 11.
//!
//! Timing domains: CPU-side stage times are measured wall-clock (they are
//! single-threaded work on this host); GPU times are the simulator's device
//! seconds. The `ii-platsim` crate projects both onto the paper's 8-core +
//! 2-GPU platform for the headline experiments.
//!
//! Fault handling: both the sampling pre-pass and the streaming build obey
//! the [`FaultPolicy`] on the config — transient read faults are retried,
//! permanent ones either abort the build with a typed [`PipelineError`]
//! (fail-fast) or quarantine the file and continue (skip-file). Everything
//! survived is tallied in the report's [`FaultReport`].

use crate::breakdown::StageBreakdown;
use crate::checkpoint::{
    collection_fingerprint, config_fingerprint, shard_artifact_name, BuildCheckpoint,
    QuarantinedFile, CHECKPOINT_ARTIFACT, DICTIONARY_ARTIFACT, DOCMAP_ARTIFACT,
};
use crate::docmap::DocMap;
use crate::fault::{
    FaultAction, FaultClass, FaultPolicy, FaultReport, FaultStage, FileFault, PipelineError,
    WorkerClass, WorkerFaultKind, WorkerFaultPlan,
};
use crate::governor::{GovernorPolicy, MemoryGovernor, PoolBytes};
use crate::parsers::{
    panic_message, BatchRecycler, ParserObs, ParserPool, SpawnOptions, SupervisedRoundRobin,
};
use crate::supervisor::{DeathCause, Supervisor, SupervisorPolicy};
use crate::telemetry::{PostmortemContext, PostmortemWriter, TelemetryConfig, POSTMORTEM_DIR};
use ii_corpus::StoredCollection;
use ii_obs::{FlightRecorder, MetricsServer, Registry, Trace, TraceConfig, TraceKind, Tracer};
use ii_dict::{GlobalDictionary, PartialDictionary};
use ii_indexer::{make_plan, sample_counts, BalancePlan, GpuIndexerConfig, IndexerPool, WorkloadStats};
use ii_postings::{parse_run_artifact_name, run_artifact_name, Codec, RunFile, RunFormat, RunSet};
use ii_store::{ManifestKind, PostingsMeta, RealVfs, Store, StoreError, Txn, Vfs};
use ii_text::{parse_documents_into, ParseScratch};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Pipeline configuration (the knobs of §IV.A/§IV.B).
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Parallel parser threads (paper optimum: 6).
    pub num_parsers: usize,
    /// CPU indexer threads (paper optimum: 2).
    pub num_cpu_indexers: usize,
    /// GPU indexers (paper: 2 Tesla C1060).
    pub num_gpus: usize,
    /// GPU sizing.
    pub gpu_config: GpuIndexerConfig,
    /// Postings codec.
    pub codec: Codec,
    /// Size of the popular group (paper observes ~100).
    pub popular_count: usize,
    /// Documents sampled per sampled file for the balance plan.
    pub sample_docs_per_file: usize,
    /// Sample every n-th file (1 = all files).
    pub sample_file_stride: usize,
    /// Parser output-buffer depth (batches).
    pub buffer_depth: usize,
    /// Batches per run (1 = one run per container file).
    pub batches_per_run: usize,
    /// Retry and quarantine behaviour for faulty container files.
    pub fault_policy: FaultPolicy,
    /// Parse with the retained naive reference path instead of the
    /// scratch-based hot path. Outputs are byte-identical by invariant
    /// (the differential suite builds the same collection both ways);
    /// excluded from the checkpoint config fingerprint for that reason.
    pub reference_parser: bool,
    /// Event tracing (disabled by default). Excluded from the checkpoint
    /// config fingerprint: tracing never changes index bytes, so a traced
    /// build may resume an untraced one and vice versa.
    pub trace: TraceConfig,
    /// Failure-domain supervision: per-worker heartbeats, the stall
    /// watchdog, and shard reassignment on worker death. Excluded from the
    /// checkpoint config fingerprint — supervision changes how a build
    /// executes, never what it produces.
    pub supervision: SupervisorPolicy,
    /// Seeded worker-kill/stall schedule (chaos testing; empty by
    /// default). Also fingerprint-excluded: a degraded build's output is
    /// byte-identical to a healthy one.
    pub worker_faults: WorkerFaultPlan,
    /// Memory budget and degradation watermarks. The budget knobs ARE
    /// fingerprinted: early run flushes move run boundaries, so a resume
    /// under a different budget would splice incompatible run sets. (The
    /// *logical* index — dictionary, postings, doc map — stays identical
    /// across budgets; the checkpoint guard protects the physical runs.)
    pub governor: GovernorPolicy,
    /// Live telemetry: flight-recorder cadence, automatic post-mortem
    /// bundles, and the optional OpenMetrics endpoint. Excluded from the
    /// checkpoint config fingerprint like `trace` and `supervision`:
    /// telemetry observes a build, it never changes index bytes.
    pub telemetry: TelemetryConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            num_parsers: 6,
            num_cpu_indexers: 2,
            num_gpus: 2,
            gpu_config: GpuIndexerConfig::default(),
            // Auto picks a codec per list length class: varbyte for short
            // lists, PForDelta for medium, BP128 for long (see
            // `ii_postings::codec_for`).
            codec: Codec::Auto,
            popular_count: 100,
            sample_docs_per_file: 2,
            sample_file_stride: 1,
            buffer_depth: 2,
            batches_per_run: 1,
            fault_policy: FaultPolicy::default(),
            reference_parser: false,
            trace: TraceConfig::default(),
            supervision: SupervisorPolicy::default(),
            worker_faults: WorkerFaultPlan::none(),
            governor: GovernorPolicy::default(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// A small configuration for tests.
    pub fn small(num_parsers: usize, num_cpu: usize, num_gpus: usize) -> Self {
        PipelineConfig {
            num_parsers,
            num_cpu_indexers: num_cpu,
            num_gpus,
            gpu_config: GpuIndexerConfig::small(),
            popular_count: 8,
            ..Default::default()
        }
    }
}

/// Per-file indexing timing (Fig 11's x/y data).
#[derive(Clone, Copy, Debug)]
pub struct FileTiming {
    /// Container file index.
    pub file_idx: usize,
    /// Uncompressed bytes of the file.
    pub uncompressed_bytes: u64,
    /// Measured wall seconds the indexing stage spent on this batch
    /// (includes the host cost of simulating the GPU kernels).
    pub wall_seconds: f64,
    /// Modeled stage seconds: max over indexers of (CPU wall, GPU device +
    /// transfer simulated).
    pub modeled_seconds: f64,
    /// Seconds the consumer blocked waiting for this file's parsed batch —
    /// separates "the parser pipeline was behind" (large value) from "the
    /// file itself was expensive to index" (small value, large
    /// `wall_seconds`).
    pub queue_wait_seconds: f64,
    /// Terms handed to indexers.
    pub tokens: u64,
}

/// Table VI-style timing rows plus supporting detail.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// Sampling + plan time (Table VI "Sampling Time").
    pub sampling_seconds: f64,
    /// Summed parser-thread busy time (read + decompress + parse).
    pub parser_busy_seconds: f64,
    /// Serialized read seconds (disk lock held).
    pub read_seconds: f64,
    /// Wall time of the streaming phase (parse + index overlap).
    pub streaming_seconds: f64,
    /// Simulated GPU pre-processing (input transfer) seconds.
    pub pre_processing_seconds: f64,
    /// Indexing time: sum over batches of the modeled stage time.
    pub indexing_seconds: f64,
    /// Post-processing: measured run-flush/encode seconds.
    pub post_processing_seconds: f64,
    /// Dictionary combine seconds (Table VI).
    pub dict_combine_seconds: f64,
    /// Dictionary write seconds (Table VI).
    pub dict_write_seconds: f64,
    /// Total wall seconds for the whole build.
    pub total_seconds: f64,
    /// Per-file indexing detail (Fig 11); quarantined files have no row.
    pub per_file: Vec<FileTiming>,
    /// CPU-side workload (Table V).
    pub cpu_stats: WorkloadStats,
    /// GPU-side workload (Table V).
    pub gpu_stats: WorkloadStats,
    /// Documents indexed.
    pub docs: u32,
    /// Uncompressed input bytes actually indexed (quarantined files'
    /// bytes are excluded so throughput stays honest).
    pub uncompressed_bytes: u64,
    /// Faults retried, recovered, and quarantined during the build.
    pub faults: FaultReport,
    /// Worker deaths, shard reassignments, and degraded modes the
    /// supervisor carried the build through.
    pub supervision: crate::supervisor::SupervisionReport,
    /// Per-stage observability breakdown (wall, queue-wait, bytes, items)
    /// plus deep counters — the Table V / Fig 9 view of this build.
    pub stages: StageBreakdown,
    /// Merged event trace (`Some` only when the build ran with
    /// [`TraceConfig::enabled`]); export with
    /// [`Trace::to_chrome_json`].
    pub trace: Option<Trace>,
    /// Post-mortem bundles written during the build (worker deaths and
    /// quarantines on an otherwise-successful build; fatal errors leave
    /// their bundle in the `postmortem/` dir without a report to carry it).
    pub postmortem_bundles: Vec<PathBuf>,
}

impl PipelineReport {
    /// End-to-end throughput in MB/s over uncompressed input (the paper's
    /// headline metric), using measured wall time on *this* host.
    pub fn throughput_mb_s(&self) -> f64 {
        if self.total_seconds == 0.0 {
            return 0.0;
        }
        self.uncompressed_bytes as f64 / 1e6 / self.total_seconds
    }
}

/// The built index: dictionary + per-indexer run sets + serialized
/// dictionary bytes + timing report.
pub struct IndexOutput {
    /// Combined dictionary.
    pub dictionary: GlobalDictionary,
    /// Run files grouped by indexer id.
    pub run_sets: HashMap<u32, RunSet>,
    /// Serialized (front-coded) dictionary, as written to disk.
    pub dict_bytes: Vec<u8>,
    /// Auxiliary docID -> source-file map (§III.F).
    pub doc_map: DocMap,
    /// Timing and workload report.
    pub report: PipelineReport,
}

impl IndexOutput {
    /// Postings of a *surface* term (classified and prefix-stripped here).
    pub fn postings(&self, term: &str) -> Option<ii_postings::PostingsList> {
        let e = self.dictionary.lookup(term)?;
        Some(self.run_sets.get(&e.indexer)?.fetch(e.postings))
    }
}

/// Outcome of the sampling pre-pass: the balance plan plus the faults the
/// pass recovered from while reading its sample.
pub struct SamplePlan {
    /// Term → indexer balance plan.
    pub plan: BalancePlan,
    /// Wall seconds spent sampling and planning.
    pub seconds: f64,
    /// Transient read attempts that failed before a file sampled cleanly.
    pub retries: u32,
    /// Files that needed at least one retry and ultimately sampled.
    pub recovered_files: u32,
}

/// Run the sampling pass: parse a slice of every n-th file and build the
/// balance plan.
///
/// Faulty files obey the config's [`FaultPolicy`]: transient faults retry
/// with backoff; unrecoverable files abort under fail-fast or are simply
/// left out of the sample under skip-file (the streaming pass is the one
/// that quarantines and reports them, so each bad file appears exactly once
/// in the final [`FaultReport`]).
pub fn sample_plan(
    collection: &StoredCollection,
    cfg: &PipelineConfig,
) -> Result<SamplePlan, PipelineError> {
    let t0 = Instant::now();
    let policy = cfg.fault_policy;
    let html = collection.manifest.spec.html;
    let mut batches = Vec::new();
    let mut retries = 0u32;
    let mut recovered_files = 0u32;
    // One scratch for the whole pass: sampled files share buffers.
    let mut scratch = ParseScratch::new();
    let stride = cfg.sample_file_stride.max(1);
    let mut f = 0;
    while f < collection.num_files() {
        let mut attempts = 0u32;
        let docs = loop {
            // Containment also covers the sampling read: an injected (or
            // real) panic inside decode must not unwind out of the build.
            match catch_unwind(AssertUnwindSafe(|| collection.read_file(f))) {
                Ok(Ok(docs)) => break Some(docs),
                Ok(Err(e)) if e.is_transient() && attempts < policy.max_retries => {
                    attempts += 1;
                    std::thread::sleep(policy.jittered_backoff(attempts, f as u64));
                }
                Ok(Err(e)) => {
                    if policy.action == FaultAction::FailFast {
                        let class = if e.is_transient() {
                            FaultClass::Transient
                        } else {
                            FaultClass::Permanent
                        };
                        return Err(PipelineError::File(FileFault {
                            file_idx: f,
                            class,
                            retries: attempts,
                            stage: FaultStage::Sampling,
                            error: e.to_string(),
                        }));
                    }
                    break None;
                }
                Err(payload) => {
                    if policy.action == FaultAction::FailFast {
                        return Err(PipelineError::File(FileFault {
                            file_idx: f,
                            class: FaultClass::Panic,
                            retries: attempts,
                            stage: FaultStage::Sampling,
                            error: panic_message(payload.as_ref()),
                        }));
                    }
                    break None;
                }
            }
        };
        if let Some(docs) = docs {
            if attempts > 0 {
                retries += attempts;
                recovered_files += 1;
            }
            let take = cfg.sample_docs_per_file.min(docs.len());
            batches.push(if cfg.reference_parser {
                ii_text::parse_documents_reference(&docs[..take], html, f)
            } else {
                parse_documents_into(&mut scratch, &docs[..take], html, f)
            });
        }
        f += stride;
    }
    let counts = sample_counts(&batches);
    let plan = make_plan(&counts, cfg.num_cpu_indexers, cfg.num_gpus, cfg.popular_count);
    Ok(SamplePlan { plan, seconds: t0.elapsed().as_secs_f64(), retries, recovered_files })
}

/// Durable-build options: where commits land, how often to checkpoint, and
/// whether to resume from the directory's committed checkpoint.
pub struct DurableOptions<'v> {
    /// Index directory every commit lands in.
    pub dir: PathBuf,
    /// Commit a build checkpoint every N flushed runs (0 = only the final
    /// index commit).
    pub checkpoint_every_runs: usize,
    /// Continue from a committed checkpoint in `dir` if one exists; a fresh
    /// directory starts a fresh build, a completed index is refused.
    pub resume: bool,
    /// Storage VFS — crash tests inject
    /// [`CrashVfs`](ii_store::CrashVfs) here.
    pub vfs: &'v dyn Vfs,
}

impl DurableOptions<'static> {
    /// Durable build into `dir` with the real filesystem, no periodic
    /// checkpoints, no resume.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            dir: dir.into(),
            checkpoint_every_runs: 0,
            resume: false,
            vfs: &RealVfs,
        }
    }
}

impl<'v> DurableOptions<'v> {
    /// Commit a checkpoint every `runs` flushed runs.
    pub fn checkpoint_every(mut self, runs: usize) -> Self {
        self.checkpoint_every_runs = runs;
        self
    }

    /// Resume from the directory's committed checkpoint.
    pub fn resume(mut self, yes: bool) -> Self {
        self.resume = yes;
        self
    }

    /// Route storage operations through `vfs` (fault injection).
    pub fn with_vfs<'w>(self, vfs: &'w dyn Vfs) -> DurableOptions<'w> {
        DurableOptions {
            dir: self.dir,
            checkpoint_every_runs: self.checkpoint_every_runs,
            resume: self.resume,
            vfs,
        }
    }
}

/// Build the full inverted index for a stored collection.
///
/// Returns a typed [`PipelineError`] when a file fails unrecoverably under
/// [`FaultAction::FailFast`], when a parser disconnects before delivering
/// its files, or when an artifact write fails. Under
/// [`FaultAction::SkipFile`] unrecoverable files are quarantined — their
/// round-robin slot is preserved with an empty docID range so every
/// surviving document keeps the ID a clean build would assign it — and
/// listed in the report's [`FaultReport`].
pub fn build_index(
    collection: &Arc<StoredCollection>,
    cfg: &PipelineConfig,
) -> Result<IndexOutput, PipelineError> {
    build_inner(collection, cfg, None)
}

/// [`build_index`] with crash-safe persistence: every flushed run, the doc
/// map, the indexer dictionary shards, and finally the whole index are
/// committed to `opts.dir` through the ii-store atomic-commit protocol.
/// With `opts.resume`, a build interrupted after a checkpoint continues
/// from it — skipping already-indexed container files — and produces a
/// byte-identical dictionary and postings to an uninterrupted build.
pub fn build_index_durable(
    collection: &Arc<StoredCollection>,
    cfg: &PipelineConfig,
    opts: &DurableOptions<'_>,
) -> Result<IndexOutput, PipelineError> {
    build_inner(collection, cfg, Some(opts))
}

/// Mid-build state recovered from a committed checkpoint.
struct ResumeState {
    parts: Vec<PartialDictionary>,
    run_sets: HashMap<u32, RunSet>,
    doc_map: DocMap,
    files_done: usize,
    next_doc: u32,
    docs_indexed: u32,
    runs_flushed: u32,
    retries: u32,
    recovered_files: u32,
    quarantined: Vec<FileFault>,
}

/// Load and validate the resumable state of `opts.dir`. `Ok(None)` means a
/// fresh directory (start from scratch); a completed index or a checkpoint
/// for a different collection/config is a typed refusal.
fn load_resume_state(
    collection: &StoredCollection,
    cfg: &PipelineConfig,
    opts: &DurableOptions<'_>,
) -> Result<Option<ResumeState>, PipelineError> {
    let store = match Store::open(&opts.dir) {
        Ok(s) => s,
        Err(StoreError::MissingManifest { .. }) => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if store.manifest().kind == ManifestKind::Index {
        return Err(PipelineError::Resume(format!(
            "{} already holds a completed index",
            opts.dir.display()
        )));
    }
    let ckpt: BuildCheckpoint = serde_json::from_slice(&store.read(CHECKPOINT_ARTIFACT)?)
        .map_err(|e| PipelineError::Resume(format!("checkpoint descriptor unreadable: {e:?}")))?;
    let want_coll = collection_fingerprint(collection);
    if ckpt.collection != want_coll {
        return Err(StoreError::CheckpointMismatch {
            what: "collection".into(),
            expected: ckpt.collection,
            found: want_coll,
        }
        .into());
    }
    let want_cfg = config_fingerprint(cfg);
    if ckpt.config != want_cfg {
        return Err(StoreError::CheckpointMismatch {
            what: "config".into(),
            expected: ckpt.config,
            found: want_cfg,
        }
        .into());
    }
    let doc_map = DocMap::read_from(&mut store.read(DOCMAP_ARTIFACT)?.as_slice())?;
    let mut run_names: Vec<(u32, u32, String)> = Vec::new();
    for name in store.manifest().names() {
        if let Some((indexer, run)) = parse_run_artifact_name(name) {
            run_names.push((indexer, run, name.to_string()));
        }
    }
    // Push runs in run-id order per indexer so postings concatenate in doc
    // order.
    run_names.sort();
    let mut run_sets: HashMap<u32, RunSet> = HashMap::new();
    for (indexer, _, name) in &run_names {
        let rf = RunFile::from_bytes(&store.read(name)?).map_err(|e| {
            StoreError::Corrupt { name: name.clone(), detail: e.to_string() }
        })?;
        run_sets.entry(*indexer).or_default().push(rf);
    }
    let mut parts = Vec::with_capacity(ckpt.indexers.len());
    for &id in &ckpt.indexers {
        let name = shard_artifact_name(id);
        let p = PartialDictionary::read_from(&mut store.read(&name)?.as_slice())
            .map_err(|e| StoreError::Corrupt { name, detail: e.to_string() })?;
        parts.push(p);
    }
    let mut quarantined = Vec::with_capacity(ckpt.quarantined.len());
    for q in &ckpt.quarantined {
        quarantined.push(q.to_fault().ok_or_else(|| {
            PipelineError::Resume(format!("unrecognized fault record '{}/{}'", q.class, q.stage))
        })?);
    }
    Ok(Some(ResumeState {
        parts,
        run_sets,
        doc_map,
        files_done: ckpt.files_done as usize,
        next_doc: ckpt.next_doc,
        docs_indexed: ckpt.docs_indexed,
        runs_flushed: ckpt.runs_flushed,
        retries: ckpt.retries,
        recovered_files: ckpt.recovered_files,
        quarantined,
    }))
}

/// Manifest-level postings metadata of a run file: wire format, list and
/// skip-table block counts, and the block-max bound. Committed alongside
/// every run artifact so an index's shape is readable from the manifest
/// alone.
pub fn run_postings_meta(run: &RunFile) -> PostingsMeta {
    PostingsMeta {
        format: match run.format {
            RunFormat::Legacy => 1,
            RunFormat::Blocked => 2,
        },
        lists: run.entries.len() as u64,
        blocks: run.block_count(),
        max_tf: run.max_tf(),
    }
}

/// Stage every sealed run into `txn` (unchanged runs are reused, not
/// rewritten) plus the doc map.
fn stage_runs_and_docmap(
    txn: &mut Txn<'_>,
    run_sets: &HashMap<u32, RunSet>,
    doc_map: &DocMap,
) -> Result<(), StoreError> {
    let mut indexers: Vec<u32> = run_sets.keys().copied().collect();
    indexers.sort_unstable();
    for indexer in indexers {
        for run in run_sets[&indexer].runs() {
            txn.put_with_meta(
                &run_artifact_name(indexer, run.run_id),
                &run.to_bytes(),
                Some(run_postings_meta(run)),
            )?;
        }
    }
    let mut dm = Vec::new();
    doc_map.write_to(&mut dm).expect("vec write is infallible");
    txn.put(DOCMAP_ARTIFACT, &dm)?;
    Ok(())
}

/// Commit a mid-build checkpoint: sealed runs + doc map + dictionary
/// shards + descriptor, as one atomic generation.
#[allow(clippy::too_many_arguments)]
fn commit_checkpoint(
    opts: &DurableOptions<'_>,
    registry: &Arc<Registry>,
    collection: &StoredCollection,
    cfg: &PipelineConfig,
    pool: &mut IndexerPool,
    run_sets: &HashMap<u32, RunSet>,
    doc_map: &DocMap,
    files_done: usize,
    report: &PipelineReport,
) -> Result<(), StoreError> {
    let parts = pool.snapshot_shards();
    let mut txn = Txn::begin(&opts.dir, opts.vfs)?.with_registry(Arc::clone(registry));
    stage_runs_and_docmap(&mut txn, run_sets, doc_map)?;
    let mut indexers = Vec::with_capacity(parts.len());
    for p in &parts {
        let mut bytes = Vec::new();
        p.write_to(&mut bytes).expect("vec write is infallible");
        txn.put(&shard_artifact_name(p.indexer_id), &bytes)?;
        indexers.push(p.indexer_id);
    }
    let ckpt = BuildCheckpoint {
        files_done: files_done as u64,
        next_doc: pool.next_doc(),
        docs_indexed: pool.docs_indexed(),
        runs_flushed: pool.runs_flushed(),
        indexers,
        collection: collection_fingerprint(collection),
        config: config_fingerprint(cfg),
        retries: report.faults.retries,
        recovered_files: report.faults.recovered_files,
        quarantined: report.faults.quarantined.iter().map(QuarantinedFile::from_fault).collect(),
    };
    let bytes = serde_json::to_vec_pretty(&ckpt).expect("checkpoint serialization is infallible");
    txn.put(CHECKPOINT_ARTIFACT, &bytes)?;
    txn.commit(ManifestKind::Checkpoint)?;
    Ok(())
}

/// Fire any scheduled indexer kills/stalls for this batch ordinal. A kill
/// marks the executor dead and reassigns its shards to the lightest
/// survivors; a stall sleeps on the spot (indexer executors run on the
/// driver thread) and is treated as a death only when the silence would
/// exceed the watchdog timeout. Inert when supervision is disabled.
fn inject_indexer_faults(
    cfg: &PipelineConfig,
    pool: &mut IndexerPool,
    supervisor: &mut Supervisor,
    batch_ordinal: usize,
) {
    if !cfg.supervision.enabled {
        return;
    }
    for (class, count) in [
        (WorkerClass::CpuIndexer, cfg.num_cpu_indexers),
        (WorkerClass::GpuIndexer, cfg.num_gpus),
    ] {
        for idx in 0..count {
            let Some(kind) = cfg.worker_faults.fault_at(class, idx, batch_ordinal) else {
                continue;
            };
            let cause = match kind {
                WorkerFaultKind::Kill => DeathCause::Injected,
                WorkerFaultKind::Stall(d) if d < cfg.supervision.stall_timeout => {
                    // A hiccup the watchdog tolerates: the executor pauses
                    // and resumes; nothing is reassigned.
                    std::thread::sleep(d);
                    continue;
                }
                WorkerFaultKind::Stall(d) => DeathCause::Stall(d),
            };
            let takeovers = match class {
                WorkerClass::CpuIndexer => pool.kill_cpu(idx),
                WorkerClass::GpuIndexer => pool.kill_gpu(idx),
                WorkerClass::Parser => unreachable!("parser faults fire in the parser threads"),
            };
            if supervisor.declare_dead(class, idx, cause) {
                let gpu = takeovers.iter().filter(|t| t.gpu_takeover).count() as u32;
                supervisor.record_reassignments(takeovers.len() as u32, gpu);
            }
        }
    }
}

fn build_inner(
    collection: &Arc<StoredCollection>,
    cfg: &PipelineConfig,
    durable: Option<&DurableOptions<'_>>,
) -> Result<IndexOutput, PipelineError> {
    let t_total = Instant::now();
    let tracer = Tracer::from_config(&cfg.trace);
    // The driver's own timeline: sampling, round-robin waits, per-batch
    // dispatch, flushes, checkpoints, and the dictionary endgame.
    let driver_sink = tracer.sink("driver");
    // One governor per build: parsers acquire in-flight byte credits from
    // it before sending a batch downstream; the driver feeds it resident
    // figures at batch boundaries and walks the degradation ladder. The
    // drop guard closes the credit gate on *every* exit path — typed
    // errors included — so no parser stays parked on a gate nobody will
    // ever drain.
    let governor = MemoryGovernor::new(cfg.governor);
    struct GateGuard(MemoryGovernor);
    impl Drop for GateGuard {
        fn drop(&mut self) {
            self.0.close();
        }
    }
    let _gate_guard = GateGuard(governor.clone());
    let resume_state = match durable {
        Some(opts) if opts.resume => load_resume_state(collection, cfg, opts)?,
        _ => None,
    };
    let sampled = {
        let _span = driver_sink.span(TraceKind::Sample);
        sample_plan(collection, cfg)?
    };
    let mut report = PipelineReport {
        sampling_seconds: sampled.seconds,
        uncompressed_bytes: collection.manifest.stats.uncompressed_bytes,
        ..Default::default()
    };
    report.faults.retries = sampled.retries;
    report.faults.recovered_files = sampled.recovered_files;

    let (mut pool, mut run_sets, mut doc_map, start_file) = match resume_state {
        Some(rs) => {
            report.faults.retries += rs.retries;
            report.faults.recovered_files += rs.recovered_files;
            for fault in rs.quarantined {
                report.uncompressed_bytes = report.uncompressed_bytes.saturating_sub(
                    *collection
                        .manifest
                        .file_uncompressed_bytes
                        .get(fault.file_idx)
                        .unwrap_or(&0),
                );
                if fault.class == FaultClass::Panic {
                    report.faults.parser_panics += 1;
                }
                report.faults.quarantined.push(fault);
            }
            let pool = IndexerPool::restore(
                sampled.plan,
                cfg.gpu_config,
                cfg.codec,
                rs.parts,
                rs.next_doc,
                rs.docs_indexed,
                rs.runs_flushed,
            );
            (pool, rs.run_sets, rs.doc_map, rs.files_done)
        }
        None => (
            IndexerPool::new(sampled.plan, cfg.gpu_config, cfg.codec),
            HashMap::new(),
            DocMap::new(),
            0,
        ),
    };
    // Register cpu-N / gpu-N timelines so indexer slices appear as their
    // own workers in the trace even though they execute on this thread.
    pool.attach_tracer(&tracer);

    // Failure-domain supervision: one heartbeat per worker, bumped by that
    // worker's trace spans (liveness without new instrumentation). The
    // driver thread is the watchdog.
    let mut supervisor = Supervisor::new();
    let parser_beats: Vec<_> =
        (0..cfg.num_parsers).map(|p| supervisor.register(WorkerClass::Parser, p)).collect();
    let cpu_beats: Vec<_> = (0..cfg.num_cpu_indexers)
        .map(|i| supervisor.register(WorkerClass::CpuIndexer, i))
        .collect();
    let gpu_beats: Vec<_> =
        (0..cfg.num_gpus).map(|g| supervisor.register(WorkerClass::GpuIndexer, g)).collect();
    pool.attach_heartbeats(&cpu_beats, &gpu_beats);

    // One registry per build: concurrent builds (parallel tests, library
    // embedders) never interleave metrics.
    let registry = Arc::new(Registry::new());
    let index_stage = registry.stage("index");
    let post_stage = registry.stage("post_process");
    // The flight recorder rides the consumer loop: one cheap gate per
    // message, a bounded ring of absolute samples behind it. Watches
    // cover the index stage, the governor's resident/high-water figures,
    // the inter-stage queue gauges (added below, once they exist), and
    // every worker heartbeat — the figures a post-mortem needs to explain
    // the final seconds of a build.
    let recorder = FlightRecorder::from_config(&cfg.telemetry.recorder);
    recorder.watch_stage("index", Arc::clone(&index_stage));
    {
        let g = governor.clone();
        recorder.watch_gauge_fn("governor.resident_bytes", move || g.resident().total() as i64);
        let g = governor.clone();
        recorder.watch_counter_fn("governor.high_water_bytes", move || g.high_water());
    }
    for (p, hb) in parser_beats.iter().enumerate() {
        recorder.watch_heartbeat(&format!("parser-{p}"), Arc::clone(hb));
    }
    for (i, hb) in cpu_beats.iter().enumerate() {
        recorder.watch_heartbeat(&format!("cpu-{i}"), Arc::clone(hb));
    }
    for (g, hb) in gpu_beats.iter().enumerate() {
        recorder.watch_heartbeat(&format!("gpu-{g}"), Arc::clone(hb));
    }
    // Live OpenMetrics endpoint (`ii build --metrics-addr`, scraped by
    // `ii top` and Prometheus). Bound for the duration of the build; the
    // handle's Drop unbinds it on every exit path, typed errors included.
    let _metrics_server: Option<MetricsServer> = match cfg.telemetry.metrics_addr.as_deref() {
        Some(addr) => {
            Some(MetricsServer::serve(addr, Arc::clone(&registry)).map_err(PipelineError::Io)?)
        }
        None => None,
    };
    // Post-mortem bundles land in `postmortem/` next to the index (or
    // wherever the config points); in-memory builds with no explicit dir
    // write none.
    let mut postmortem = PostmortemWriter::new(if cfg.telemetry.postmortem {
        cfg.telemetry
            .postmortem_dir
            .clone()
            .or_else(|| durable.map(|o| o.dir.join(POSTMORTEM_DIR)))
    } else {
        None
    });
    // Deaths already bundled: a bundle is cut the batch a death happens,
    // not at end of build, so the ring still holds the surrounding samples.
    let mut deaths_bundled = 0usize;
    // Progress and liveness gauges for the live exposition (`ii top`):
    // files done vs total and per-worker heartbeat idle ages, refreshed
    // once per consumed message.
    registry.gauge("pipeline.files_total").set(collection.num_files() as i64);
    let files_done_gauge = registry.gauge("pipeline.files_done");
    files_done_gauge.set(start_file as i64);
    let beat_gauges: Vec<_> = parser_beats
        .iter()
        .enumerate()
        .map(|(p, hb)| (registry.gauge(&format!("worker.parser-{p}.idle_ms")), Arc::clone(hb)))
        .chain(cpu_beats.iter().enumerate().map(|(i, hb)| {
            (registry.gauge(&format!("worker.cpu-{i}.idle_ms")), Arc::clone(hb))
        }))
        .chain(gpu_beats.iter().enumerate().map(|(g, hb)| {
            (registry.gauge(&format!("worker.gpu-{g}.idle_ms")), Arc::clone(hb))
        }))
        .collect();
    let t_stream = Instant::now();
    // Consumed batch buffers flow back to the parser threads through this
    // pool; size it to the in-flight window (one slot per buffered batch
    // per parser, plus the one being indexed).
    let recycler = BatchRecycler::new(cfg.num_parsers * cfg.buffer_depth + 1);
    let spawn_options = SpawnOptions {
        start_file,
        recycler: Some(recycler.clone()),
        reference_parser: cfg.reference_parser,
        tracer: tracer.clone(),
        heartbeats: parser_beats,
        worker_faults: cfg.worker_faults.clone(),
        governor: governor.clone(),
    };
    let mut parser_pool = ParserPool::spawn_with(
        Arc::clone(collection),
        cfg.num_parsers,
        cfg.buffer_depth,
        cfg.fault_policy,
        ParserObs::from_registry(&registry),
        spawn_options.clone(),
    );
    // Sampled queue-depth gauges on every inter-stage channel: one per
    // parser output buffer plus the recycler return pool, mirrored into
    // the registry (last value) and the trace (full time series).
    let queue_gauges: Vec<_> = (0..cfg.num_parsers)
        .map(|p| {
            (
                registry.gauge(&format!("queue.parser-{p}.depth")),
                tracer.gauge(&format!("queue.parser-{p}")),
            )
        })
        .collect();
    let recycler_gauge =
        (registry.gauge("recycler.pool.depth"), tracer.gauge("recycler.pool"));
    for (p, (gauge, _)) in queue_gauges.iter().enumerate() {
        recorder.watch_gauge(&format!("queue.parser-{p}.depth"), Arc::clone(gauge));
    }
    recorder.watch_gauge("recycler.pool.depth", Arc::clone(&recycler_gauge.0));
    // Governor gauges published per batch so a live scrape sees the
    // memory-vs-budget picture mid-build; counters stay end-of-build
    // (`governor.export`) so they are added exactly once.
    let gov_gauges = (
        registry.gauge("governor.effective_budget_bytes"),
        registry.gauge("governor.dict_bytes"),
        registry.gauge("governor.postings_bytes"),
        registry.gauge("governor.device_bytes"),
        registry.gauge("governor.high_water_bytes"),
    );
    registry.gauge("governor.budget_bytes").set(cfg.governor.budget_bytes as i64);
    let mut batches_in_run = 0usize;
    let mut runs_since_checkpoint = 0usize;
    let mut batch_ordinal = 0usize;
    let mut files_done;
    // The supervised consumer owns the parser buffers: it watches for
    // disconnects and heartbeat stalls, and re-ingests a dead parser's
    // files inline. With supervision disabled it degrades to the strict
    // fail-on-disconnect consumer.
    let mut round_robin = SupervisedRoundRobin::new(
        &mut parser_pool,
        Arc::clone(collection),
        collection.num_files(),
        start_file,
        cfg.fault_policy,
        ParserObs::from_registry(&registry),
        spawn_options,
        cfg.supervision,
    )
    .with_queue_wait(Arc::clone(&index_stage))
    .with_trace(driver_sink.clone());
    while let Some(msg) = round_robin.next() {
        let msg = msg?;
        files_done = msg.file_idx() + 1;
        recorder.maybe_sample();
        let queue_wait_seconds = msg.queue_wait_seconds;
        for (p, (gauge, series)) in queue_gauges.iter().enumerate() {
            let depth = round_robin.queue_depth(p) as i64;
            gauge.set(depth);
            series.sample(depth);
        }
        let pool_depth = recycler.depth() as i64;
        recycler_gauge.0.set(pool_depth);
        recycler_gauge.1.sample(pool_depth);
        files_done_gauge.set(files_done as i64);
        for (gauge, hb) in &beat_gauges {
            gauge.set(hb.idle().as_millis() as i64);
        }
        let batch = match msg.result {
            Ok(batch) => {
                if msg.retries > 0 {
                    report.faults.retries += msg.retries;
                    report.faults.recovered_files += 1;
                }
                batch
            }
            Err(fault) => {
                if cfg.fault_policy.action == FaultAction::FailFast {
                    postmortem.write(
                        &PostmortemContext {
                            trigger: "file-fault",
                            detail: fault.to_string(),
                            batch_ordinal,
                            supervision: &supervisor.report,
                            quarantined: &report.faults.quarantined,
                        },
                        &recorder,
                        &registry,
                        &tracer,
                    );
                    return Err(PipelineError::File(fault));
                }
                // Quarantine: keep the file's slot in the doc map as an
                // empty entry that still reserves the file's doc-ID range,
                // so every surviving document gets the same global ID a
                // clean build would assign. Synthetic collections hold
                // exactly `docs_per_file` documents per container.
                let reserved = collection.manifest.spec.docs_per_file as u32;
                doc_map.push_quarantined(fault.file_idx as u32, reserved);
                pool.skip_docs(reserved);
                report.uncompressed_bytes = report.uncompressed_bytes.saturating_sub(
                    *collection
                        .manifest
                        .file_uncompressed_bytes
                        .get(fault.file_idx)
                        .unwrap_or(&0),
                );
                if fault.class == FaultClass::Panic {
                    report.faults.parser_panics += 1;
                }
                let detail = fault.to_string();
                report.faults.quarantined.push(fault);
                postmortem.write(
                    &PostmortemContext {
                        trigger: "quarantine",
                        detail,
                        batch_ordinal,
                        supervision: &supervisor.report,
                        quarantined: &report.faults.quarantined,
                    },
                    &recorder,
                    &registry,
                    &tracer,
                );
                continue;
            }
        };
        // Credit captured at receive time: the parser acquired exactly
        // `mem_bytes()` before sending, and the batch is consumed (and its
        // buffers recycled) below, so this is the last point the figure is
        // still readable. Files are round-robin over parsers (idx ≡ p mod
        // num_parsers), which names the ledger the credit returns to.
        let credit = batch.mem_bytes();
        let credit_parser = batch.file_idx % cfg.num_parsers;
        doc_map.push_file(batch.file_idx as u32, batch.num_docs);
        let file_bytes = *collection
            .manifest
            .file_uncompressed_bytes
            .get(batch.file_idx)
            .unwrap_or(&0);
        // Chaos injection for the indexer classes, at the batch boundary —
        // a clean point where every shard's state is whole, mirroring the
        // granularity at which the supervisor reassigns work.
        if !cfg.worker_faults.is_empty() {
            inject_indexer_faults(cfg, &mut pool, &mut supervisor, batch_ordinal);
            // Budget squeezes fire at the same clean boundary: the
            // effective budget only ever shrinks, so the degradation
            // ladder below reacts on this very batch.
            if let Some(bytes) = cfg.worker_faults.squeeze_at(batch_ordinal) {
                governor.squeeze_to(bytes);
            }
        }
        // Aliveness before the batch: any executor dead afterwards was
        // killed by an in-batch panic, which the watchdog records.
        let cpu_alive_before: Vec<bool> =
            (0..cfg.num_cpu_indexers).map(|i| pool.cpu_is_alive(i)).collect();
        let gpu_alive_before: Vec<bool> =
            (0..cfg.num_gpus).map(|g| pool.gpu_is_alive(g)).collect();
        let t0 = Instant::now();
        let timing = {
            let mut span = index_stage.span();
            span.add_bytes(file_bytes);
            let mut tspan = driver_sink.span(TraceKind::Index);
            tspan.set_batch(batch.file_idx as u32);
            tspan.add_bytes(file_bytes);
            pool.index_batch(&batch)
        };
        batch_ordinal += 1;
        if !timing.panics.is_empty() {
            // A genuine mid-batch panic is contained and the shard
            // reassigned, but the shard's partial work for this batch has
            // unknown extent — the build completes, without the
            // byte-identity guarantee. Record who died and why.
            let first_panic = timing.panics[0].1.clone();
            for (shard, msg) in &timing.panics {
                supervisor
                    .record_lossy(format!("shard {shard} panicked mid-batch: {msg}"));
            }
            for (i, was_alive) in cpu_alive_before.iter().enumerate() {
                if *was_alive && !pool.cpu_is_alive(i) {
                    supervisor.declare_dead(
                        WorkerClass::CpuIndexer,
                        i,
                        DeathCause::Panic(first_panic.clone()),
                    );
                }
            }
            for (g, was_alive) in gpu_alive_before.iter().enumerate() {
                if *was_alive && !pool.gpu_is_alive(g) {
                    supervisor.declare_dead(
                        WorkerClass::GpuIndexer,
                        g,
                        DeathCause::Panic(first_panic.clone()),
                    );
                }
            }
        }
        if !timing.takeovers.is_empty() {
            let gpu_takeovers =
                timing.takeovers.iter().filter(|t| t.gpu_takeover).count() as u32;
            supervisor.record_reassignments(timing.takeovers.len() as u32, gpu_takeovers);
        }
        supervisor.report.fallback_seconds += timing.fallback_seconds;
        // Any new death this batch — injected kill, mid-batch panic — cuts
        // a post-mortem bundle now, while the flight-recorder ring still
        // holds the samples surrounding the event.
        if supervisor.report.deaths.len() > deaths_bundled {
            let detail = supervisor.report.deaths[deaths_bundled..]
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            deaths_bundled = supervisor.report.deaths.len();
            postmortem.write(
                &PostmortemContext {
                    trigger: "worker-death",
                    detail,
                    batch_ordinal,
                    supervision: &supervisor.report,
                    quarantined: &report.faults.quarantined,
                },
                &recorder,
                &registry,
                &tracer,
            );
        }
        let wall = t0.elapsed().as_secs_f64();
        let modeled = timing.stage_seconds();
        report.pre_processing_seconds +=
            timing.gpu.iter().map(|g| g.transfer_seconds).sum::<f64>();
        report.indexing_seconds += modeled;
        report.per_file.push(FileTiming {
            file_idx: batch.file_idx,
            uncompressed_bytes: file_bytes,
            wall_seconds: wall,
            modeled_seconds: modeled,
            queue_wait_seconds,
            tokens: batch.stats.terms_kept,
        });
        // The batch is fully consumed; return its buffers to the parsers.
        recycler.reclaim(batch);
        governor.release(credit_parser, credit);
        batches_in_run += 1;
        // Feed the governor the deterministic resident figures — dictionary
        // arenas, pending postings, live GPU device state — then walk the
        // degradation ladder. Rung 1 (backpressure) lives in the parsers'
        // credit gate; rungs 2-4 fire here, at the batch boundary, keyed
        // only on content-derived byte counts so the same budget schedule
        // degrades identically on every run.
        let (dict, postings, device) = pool.resident_bytes();
        governor.note_resident(PoolBytes { dict, postings, device });
        let r = governor.resident();
        gov_gauges.0.set(governor.effective_budget() as i64);
        gov_gauges.1.set(r.dict as i64);
        gov_gauges.2.set(r.postings as i64);
        gov_gauges.3.set(r.device as i64);
        gov_gauges.4.set(governor.high_water() as i64);
        // Rung 2: flush the run early when pending postings push the pools
        // past the watermark (the paper's flush-when-full rule). Run
        // boundaries move; the merged postings do not.
        let early_flush = batches_in_run < cfg.batches_per_run && governor.should_flush_early();
        if early_flush {
            governor.record_early_flush();
        }
        if batches_in_run >= cfg.batches_per_run || early_flush {
            let t0 = Instant::now();
            let mut span = post_stage.span();
            let tspan = driver_sink.span(TraceKind::Flush);
            for run in pool.flush_run() {
                span.add_bytes(run.payload.len() as u64);
                run_sets.entry(run.indexer_id).or_default().push(run);
            }
            drop(tspan);
            drop(span);
            report.post_processing_seconds += t0.elapsed().as_secs_f64();
            batches_in_run = 0;
            runs_since_checkpoint += 1;
            if let Some(opts) = durable {
                if opts.checkpoint_every_runs > 0
                    && runs_since_checkpoint >= opts.checkpoint_every_runs
                {
                    let _ckpt_span = driver_sink.span(TraceKind::Checkpoint);
                    commit_checkpoint(
                        opts, &registry, collection, cfg, &mut pool, &run_sets, &doc_map,
                        files_done, &report,
                    )?;
                    runs_since_checkpoint = 0;
                }
            }
            let (dict, postings, device) = pool.resident_bytes();
            governor.note_resident(PoolBytes { dict, postings, device });
        }
        // Rung 3: park GPU shards onto the CPU salvage path, heaviest
        // sampled load first. A shed is deliberate degradation, not a
        // worker death — it lands in `governor.gpu_sheds`, never in the
        // supervision ledger.
        while governor.should_shed() {
            let Some((_gpu, _moves)) = pool.shed_gpu() else { break };
            governor.record_shed();
            let (dict, postings, device) = pool.resident_bytes();
            governor.note_resident(PoolBytes { dict, postings, device });
        }
        // Rung 4: even with postings flushed and every GPU shed, the
        // dictionaries alone no longer fit — a typed refusal beats an OOM
        // kill.
        if let Some((budget, needed)) = governor.budget_exceeded() {
            postmortem.write(
                &PostmortemContext {
                    trigger: "memory-budget",
                    detail: format!(
                        "budget {budget} B, resident needs {needed} B after full degradation"
                    ),
                    batch_ordinal,
                    supervision: &supervisor.report,
                    quarantined: &report.faults.quarantined,
                },
                &recorder,
                &registry,
                &tracer,
            );
            return Err(PipelineError::MemoryBudgetExceeded { budget, needed });
        }
    }
    if batches_in_run > 0 {
        let t0 = Instant::now();
        let mut span = post_stage.span();
        let tspan = driver_sink.span(TraceKind::Flush);
        for run in pool.flush_run() {
            span.add_bytes(run.payload.len() as u64);
            run_sets.entry(run.indexer_id).or_default().push(run);
        }
        drop(tspan);
        drop(span);
        report.post_processing_seconds += t0.elapsed().as_secs_f64();
    }
    report.streaming_seconds = t_stream.elapsed().as_secs_f64();
    // Fold the consumer-side supervision ledger: parser deaths the
    // watchdog declared, and the files the driver re-ingested inline.
    for d in round_robin.deaths() {
        supervisor.declare_dead(d.class, d.index, d.cause.clone());
    }
    supervisor.report.inline_parsed_files += round_robin.inline_parsed_files();
    // Parser deaths surface from the consumer ledger at end of streaming;
    // bundle any the per-batch watermark has not seen yet.
    if supervisor.report.deaths.len() > deaths_bundled {
        let detail = supervisor.report.deaths[deaths_bundled..]
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        postmortem.write(
            &PostmortemContext {
                trigger: "worker-death",
                detail,
                batch_ordinal,
                supervision: &supervisor.report,
                quarantined: &report.faults.quarantined,
            },
            &recorder,
            &registry,
            &tracer,
        );
    }
    let inline_timing = round_robin.inline_timing();
    // Release the receivers so a parser parked on a full buffer exits.
    drop(round_robin);
    let parser_timings = parser_pool.join();
    report.parser_busy_seconds = parser_timings
        .iter()
        .map(|t| t.read_seconds + t.decompress_seconds + t.parse_seconds)
        .sum::<f64>()
        + inline_timing.read_seconds
        + inline_timing.decompress_seconds
        + inline_timing.parse_seconds;
    report.read_seconds =
        parser_timings.iter().map(|t| t.read_seconds).sum::<f64>() + inline_timing.read_seconds;

    report.docs = pool.docs_indexed();
    let (cpu_stats, gpu_stats) = pool.workload_split();
    report.cpu_stats = cpu_stats;
    report.gpu_stats = gpu_stats;

    // Deep counters: exported from each component's native tallies into
    // the build registry before `finish` consumes the pool.
    registry.counter("pipeline.docs").add(pool.docs_indexed() as u64);
    registry.counter("pipeline.retries").add(report.faults.retries as u64);
    registry
        .counter("pipeline.files.quarantined")
        .add(report.faults.quarantined.len() as u64);
    for c in &pool.cpus {
        registry.counter("dict.cache_hits").add(c.dict.store.cache_hits);
        registry.counter("dict.cache_misses").add(c.dict.store.cache_misses);
        registry.counter("dict.node_splits").add(c.dict.store.node_splits);
        registry.counter("dict.head_tie_breaks").add(c.dict.store.head_tie_breaks);
    }
    // Shards salvaged off dead GPUs continue on the CPU dictionary path;
    // their tallies belong in the same counters.
    for a in pool.adopted_shards() {
        registry.counter("dict.cache_hits").add(a.dict.store.cache_hits);
        registry.counter("dict.cache_misses").add(a.dict.store.cache_misses);
        registry.counter("dict.node_splits").add(a.dict.store.node_splits);
        registry.counter("dict.head_tie_breaks").add(a.dict.store.head_tie_breaks);
    }
    for g in &pool.gpus {
        let m = &g.kernel_metrics;
        registry.counter("gpu.warp_comparisons").add(m.warp_comparisons);
        registry.counter("gpu.global_transactions").add(m.global_transactions);
        registry.counter("gpu.global_bytes").add(m.global_bytes);
        registry.counter("gpu.shared_accesses").add(m.shared_accesses);
        registry.counter("gpu.bank_conflict_cycles").add(m.bank_conflict_cycles);
        registry.counter("gpu.instructions").add(m.instructions);
        registry.counter("gpu.divergent_branches").add(m.divergent_branches);
        let t = g.transfer_metrics();
        registry.counter("gpu.h2d_bytes").add(t.h2d_bytes);
        registry.counter("gpu.d2h_bytes").add(t.d2h_bytes);
    }

    let t0 = Instant::now();
    let combine_stage = registry.stage("dict_combine");
    let tspan = driver_sink.span(TraceKind::DictCombine);
    let parts = {
        let _span = combine_stage.span();
        pool.finish()
    };
    let dictionary = {
        let _span = combine_stage.span();
        GlobalDictionary::combine(&parts)
    };
    drop(tspan);
    report.dict_combine_seconds = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut dict_bytes = Vec::new();
    {
        let write_stage = registry.stage("dict_write");
        let mut span = write_stage.span();
        let mut tspan = driver_sink.span(TraceKind::DictWrite);
        dictionary.write_to(&mut dict_bytes)?;
        span.add_bytes(dict_bytes.len() as u64);
        tspan.add_bytes(dict_bytes.len() as u64);
    }
    report.dict_write_seconds = t0.elapsed().as_secs_f64();
    registry.counter("pipeline.terms").add(dictionary.len() as u64);

    if let Some(opts) = durable {
        // The final commit flips the manifest kind to Index; the commit's
        // garbage collection removes the checkpoint descriptor and shard
        // artifacts the index no longer references. A retriable storage
        // failure (disk full) retries the whole transaction — each attempt
        // rebuilds it from scratch, the commit protocol is all-or-nothing —
        // with jittered backoff; anything else is a typed error.
        let mut attempt = 0u32;
        loop {
            let committed = (|| -> Result<(), StoreError> {
                let mut txn =
                    Txn::begin(&opts.dir, opts.vfs)?.with_registry(Arc::clone(&registry));
                stage_runs_and_docmap(&mut txn, &run_sets, &doc_map)?;
                txn.put(DICTIONARY_ARTIFACT, &dict_bytes)?;
                txn.commit(ManifestKind::Index)?;
                Ok(())
            })();
            match committed {
                Ok(()) => break,
                Err(e) if e.is_retriable() && attempt < cfg.fault_policy.max_retries => {
                    attempt += 1;
                    supervisor.report.commit_retries += 1;
                    std::thread::sleep(
                        cfg.fault_policy.jittered_backoff(attempt, 0xD15C_F0FF),
                    );
                }
                Err(e) => {
                    postmortem.write(
                        &PostmortemContext {
                            trigger: "commit-failure",
                            detail: e.to_string(),
                            batch_ordinal,
                            supervision: &supervisor.report,
                            quarantined: &report.faults.quarantined,
                        },
                        &recorder,
                        &registry,
                        &tracer,
                    );
                    return Err(e.into());
                }
            }
        }
    }

    // The supervisor's ledger, as registry counters (surfaced by
    // `ii build --stats` and the JSON snapshot) and on the report.
    let sup = &supervisor.report;
    registry.counter("supervisor.worker_deaths").add(sup.deaths.len() as u64);
    registry.counter("supervisor.reassignments").add(u64::from(sup.reassignments));
    registry.counter("supervisor.gpu_takeovers").add(u64::from(sup.gpu_takeovers));
    registry.counter("supervisor.inline_parsed_files").add(u64::from(sup.inline_parsed_files));
    registry.counter("supervisor.commit_retries").add(u64::from(sup.commit_retries));
    registry.counter("supervisor.lossy_incidents").add(sup.lossy_incidents.len() as u64);
    if postmortem.bundles_written() > 0 {
        registry.counter("postmortem.bundles").add(u64::from(postmortem.bundles_written()));
    }

    // The governor's ledger: budget, per-pool resident gauges, high-water,
    // credit-gate waits, and each rung's trigger count.
    governor.export(&registry);

    report.supervision = supervisor.report;
    report.total_seconds = t_total.elapsed().as_secs_f64();
    report.stages = StageBreakdown::from_registry(&registry);
    report.trace = tracer.finish();
    report.postmortem_bundles = postmortem.paths().to_vec();
    Ok(IndexOutput { dictionary, run_sets, dict_bytes, doc_map, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_corpus::{CollectionSpec, FaultKind, FaultPlan};
    use ii_store::{CrashMode, CrashVfs};
    use std::path::{Path, PathBuf};

    fn stored(tag: &str, spec: CollectionSpec) -> (Arc<StoredCollection>, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("ii-driver-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = StoredCollection::generate(spec, &dir).unwrap();
        (Arc::new(s), dir)
    }

    fn reopen_with(dir: &Path, plan: FaultPlan) -> Arc<StoredCollection> {
        Arc::new(StoredCollection::open(dir).unwrap().with_faults(plan))
    }

    #[test]
    fn builds_a_queryable_index() {
        let mut spec = CollectionSpec::tiny(41);
        spec.num_files = 4;
        spec.docs_per_file = 12;
        let (coll, dir) = stored("query", spec);
        let out = build_index(&coll, &PipelineConfig::small(2, 1, 1)).expect("build");
        assert!(out.dictionary.len() > 50, "dictionary too small: {}", out.dictionary.len());
        assert_eq!(out.report.docs, 48);
        assert!(out.report.faults.is_clean());
        // The head stop words must NOT be in the dictionary.
        assert!(out.dictionary.lookup("the").is_none());
        // A frequent vocabulary word should be present and have postings in
        // many documents.
        let e = out
            .dictionary
            .entries()
            .iter()
            .max_by_key(|e| {
                out.run_sets[&e.indexer].fetch(e.postings).len()
            })
            .unwrap();
        let l = out.run_sets[&e.indexer].fetch(e.postings);
        assert!(l.len() > 10, "head term should hit many docs");
        // Doc ids strictly increasing (global sort invariant).
        let docs: Vec<u32> = l.postings().iter().map(|p| p.doc.0).collect();
        assert!(docs.windows(2).all(|w| w[0] < w[1]));
        assert!(docs.iter().all(|&d| d < 48));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn output_identical_across_configurations() {
        // The pipeline must be deterministic and configuration-independent:
        // same dictionary + postings for any parser/indexer mix.
        let mut spec = CollectionSpec::tiny(42);
        spec.num_files = 3;
        spec.docs_per_file = 10;
        let (coll, dir) = stored("configs", spec);
        let mut fingerprints = Vec::new();
        for (p, c, g) in [(1, 1, 0), (3, 2, 0), (2, 1, 1), (1, 0, 2)] {
            let out = build_index(&coll, &PipelineConfig::small(p, c, g)).expect("build");
            let mut fp: Vec<(String, Vec<(u32, u32)>)> = out
                .dictionary
                .entries()
                .iter()
                .map(|e| {
                    let l = out.run_sets[&e.indexer].fetch(e.postings);
                    (
                        e.full_term(),
                        l.postings().iter().map(|p| (p.doc.0, p.tf)).collect(),
                    )
                })
                .collect();
            fp.sort();
            fingerprints.push(fp);
        }
        for fp in &fingerprints[1..] {
            assert_eq!(fp, &fingerprints[0]);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn report_fields_populated() {
        let (coll, dir) = stored("report", CollectionSpec::tiny(43));
        let out = build_index(&coll, &PipelineConfig::small(2, 1, 1)).expect("build");
        let r = &out.report;
        assert!(r.total_seconds > 0.0);
        assert!(r.parser_busy_seconds > 0.0);
        assert!(r.indexing_seconds > 0.0);
        assert!(r.pre_processing_seconds > 0.0, "GPU transfers modeled");
        assert_eq!(r.per_file.len(), coll.num_files());
        assert!(r.throughput_mb_s() > 0.0);
        assert!(r.cpu_stats.tokens + r.gpu_stats.tokens > 0);
        assert!(!out.dict_bytes.is_empty());
        assert!(r.faults.is_clean());
        assert_eq!(r.faults.summary(), "no faults");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn postings_lookup_convenience() {
        let mut spec = CollectionSpec::tiny(44);
        spec.docs_per_file = 20;
        let (coll, dir) = stored("lookup", spec);
        let out = build_index(&coll, &PipelineConfig::small(1, 1, 0)).expect("build");
        // "zebra"-like content words exist in the tiny vocab; use the
        // dictionary itself to pick one and cross-check the helper.
        let e = &out.dictionary.entries()[0];
        let term = e.full_term();
        let via_helper = out.postings(&term).unwrap();
        let direct = out.run_sets[&e.indexer].fetch(e.postings);
        assert_eq!(via_helper, direct);
        assert!(out.postings("no-such-term-xyzzy").is_none());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn quarantine_preserves_doc_ids_and_reports() {
        let mut spec = CollectionSpec::tiny(45);
        spec.num_files = 6;
        spec.docs_per_file = 10;
        let (_, dir) = stored("quarantine", spec);
        let coll = reopen_with(&dir, FaultPlan::new(7).with_fault(2, FaultKind::Garbage));
        let mut cfg = PipelineConfig::small(2, 1, 0);
        cfg.fault_policy = FaultPolicy::skip_file();
        let out = build_index(&coll, &cfg).expect("skip-file build survives corruption");
        assert_eq!(out.report.faults.quarantined_files(), vec![2]);
        assert_eq!(out.report.docs, 50, "5 surviving files x 10 docs");
        // The quarantined file keeps its (empty) slot in the doc map, so
        // later files' docIDs match a clean build.
        let entries = out.doc_map.entries();
        assert_eq!(entries.len(), 6);
        assert_eq!(entries[2].n_docs, 0);
        assert_eq!(entries[3].first_doc, 30, "file 3 starts where a clean build would");
        // Quarantined files have no Fig 11 row and their bytes are excluded.
        assert_eq!(out.report.per_file.len(), 5);
        assert!(
            out.report.uncompressed_bytes < coll.manifest.stats.uncompressed_bytes
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn fail_fast_surfaces_typed_error() {
        let mut spec = CollectionSpec::tiny(46);
        spec.num_files = 4;
        let (_, dir) = stored("failfast", spec);
        let coll = reopen_with(&dir, FaultPlan::new(8).with_fault(1, FaultKind::Garbage));
        let err = build_index(&coll, &PipelineConfig::small(2, 1, 0))
            .err()
            .expect("default policy must abort on corruption");
        match err {
            PipelineError::File(fault) => {
                assert_eq!(fault.file_idx, 1);
                assert_eq!(fault.class, FaultClass::Permanent);
            }
            other => panic!("expected a file fault, got {other}"),
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn transient_faults_yield_identical_dictionary() {
        let mut spec = CollectionSpec::tiny(47);
        spec.num_files = 4;
        let (clean, dir) = stored("transient-dict", spec);
        let cfg = PipelineConfig::small(2, 1, 0);
        let baseline = build_index(&clean, &cfg).expect("clean build");
        let coll = reopen_with(
            &dir,
            FaultPlan::new(9)
                .with_fault(0, FaultKind::TransientRead { failures: 2 })
                .with_fault(3, FaultKind::TransientRead { failures: 1 }),
        );
        let out = build_index(&coll, &cfg).expect("transient faults must be recovered");
        assert_eq!(out.dict_bytes, baseline.dict_bytes, "byte-identical dictionary");
        assert_eq!(out.report.docs, baseline.report.docs);
        assert!(out.report.faults.retries >= 3, "{}", out.report.faults.summary());
        assert!(out.report.faults.recovered_files >= 2);
        assert!(out.report.faults.quarantined.is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// (dictionary bytes, sorted run encodings, doc-map bytes).
    type IndexBytes = (Vec<u8>, Vec<(u32, u32, Vec<u8>)>, Vec<u8>);

    /// Everything that makes two index builds byte-comparable: the
    /// dictionary encoding, every sealed run's encoding, and the doc map.
    fn index_fingerprint(out: &IndexOutput) -> IndexBytes {
        let mut runs: Vec<(u32, u32, Vec<u8>)> = out
            .run_sets
            .iter()
            .flat_map(|(id, rs)| rs.runs().iter().map(|r| (*id, r.run_id, r.to_bytes())))
            .collect();
        runs.sort();
        let mut dm = Vec::new();
        out.doc_map.write_to(&mut dm).unwrap();
        (out.dict_bytes.clone(), runs, dm)
    }

    #[test]
    fn durable_build_commits_a_loadable_index() {
        let mut spec = CollectionSpec::tiny(48);
        spec.num_files = 4;
        spec.docs_per_file = 8;
        let (coll, dir) = stored("durable", spec);
        let idx_dir = dir.join("index");
        let cfg = PipelineConfig::small(2, 1, 1);
        let opts = DurableOptions::new(&idx_dir).checkpoint_every(1);
        let out = build_index_durable(&coll, &cfg, &opts).expect("durable build");

        let store = Store::open(&idx_dir).expect("open committed index");
        assert_eq!(store.manifest().kind, ManifestKind::Index);
        assert_eq!(store.read(DICTIONARY_ARTIFACT).unwrap(), out.dict_bytes);
        // The final commit garbage-collects the checkpoint scaffolding.
        assert!(store.manifest().artifact(CHECKPOINT_ARTIFACT).is_none());
        for (id, rs) in &out.run_sets {
            for r in rs.runs() {
                assert_eq!(
                    store.read(&run_artifact_name(*id, r.run_id)).unwrap(),
                    r.to_bytes()
                );
            }
        }
        for st in store.verify() {
            assert!(st.ok, "{}: {:?}", st.name, st.detail);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn resume_after_kill_is_byte_identical() {
        let mut spec = CollectionSpec::tiny(49);
        spec.num_files = 6;
        spec.docs_per_file = 8;
        let (coll, dir) = stored("resume", spec);
        let cfg = PipelineConfig::small(2, 1, 1);
        let baseline = build_index(&coll, &cfg).expect("baseline");

        // Probe a full durable run to count its storage ops, then kill a
        // second run halfway through them — after some checkpoints have
        // committed, before the final index commit.
        let probe = CrashVfs::probe();
        let opts = DurableOptions::new(dir.join("probe")).checkpoint_every(1).with_vfs(&probe);
        build_index_durable(&coll, &cfg, &opts).expect("probe build");
        let total = probe.ops();
        assert!(total > 0, "durable build must touch storage");

        let idx_dir = dir.join("index");
        let crash = CrashVfs::new(total / 2, CrashMode::PowerLoss, 11);
        let opts = DurableOptions::new(&idx_dir).checkpoint_every(1).with_vfs(&crash);
        assert!(
            build_index_durable(&coll, &cfg, &opts).is_err(),
            "killed build must error"
        );
        assert!(crash.crashed());

        // Resuming under the wrong config is refused with the typed
        // mismatch carrying both fingerprints, not silently mixed.
        let mut other_cfg = cfg.clone();
        other_cfg.popular_count += 1;
        let opts = DurableOptions::new(&idx_dir).checkpoint_every(1).resume(true);
        match build_index_durable(&coll, &other_cfg, &opts) {
            Err(PipelineError::Store(StoreError::CheckpointMismatch {
                what,
                expected,
                found,
            })) => {
                assert_eq!(what, "config");
                assert_ne!(expected, found);
                assert!(found.contains("popular=9"), "{found}");
            }
            other => panic!("expected config refusal, got {:?}", other.map(|_| "index")),
        }

        // A different memory budget is refused the same way: early-flush
        // points move run boundaries, so resuming would splice
        // incompatible physical runs.
        let mut budget_cfg = cfg.clone();
        budget_cfg.governor = GovernorPolicy::default().with_budget(64 << 20);
        match build_index_durable(&coll, &budget_cfg, &opts) {
            Err(PipelineError::Store(StoreError::CheckpointMismatch { what, found, .. })) => {
                assert_eq!(what, "config");
                assert!(found.contains("mem_budget=67108864"), "{found}");
            }
            other => panic!("expected budget refusal, got {:?}", other.map(|_| "index")),
        }

        let resumed = build_index_durable(&coll, &cfg, &opts).expect("resume");
        assert_eq!(index_fingerprint(&resumed), index_fingerprint(&baseline));
        assert_eq!(resumed.report.docs, baseline.report.docs);
        let store = Store::open(&idx_dir).expect("resumed index committed");
        assert_eq!(store.manifest().kind, ManifestKind::Index);

        // Resuming a completed index is refused.
        match build_index_durable(&coll, &cfg, &opts) {
            Err(PipelineError::Resume(why)) => assert!(why.contains("completed"), "{why}"),
            other => panic!("expected completed-index refusal, got {:?}", other.map(|_| "index")),
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn gpu_death_mid_build_degrades_byte_identically() {
        let mut spec = CollectionSpec::tiny(50);
        spec.num_files = 6;
        spec.docs_per_file = 8;
        let (coll, dir) = stored("gpu-death", spec);
        let cfg = PipelineConfig::small(2, 1, 1);
        let baseline = build_index(&coll, &cfg).expect("healthy build");
        assert!(baseline.report.supervision.is_clean());

        // Kill the GPU indexer after the second batch: its shards must be
        // salvaged onto the CPU path and the final index must not differ
        // from the healthy build by a single byte.
        let mut chaos = cfg.clone();
        chaos.worker_faults = WorkerFaultPlan::none().kill(WorkerClass::GpuIndexer, 0, 2);
        let out = build_index(&coll, &chaos).expect("GPU death must degrade, not abort");
        assert_eq!(index_fingerprint(&out), index_fingerprint(&baseline));
        let sup = &out.report.supervision;
        assert_eq!(sup.deaths_of(WorkerClass::GpuIndexer), 1, "{}", sup.summary());
        assert!(sup.gpu_takeovers >= 1, "{}", sup.summary());
        assert!(sup.reassignments >= sup.gpu_takeovers);
        assert!(sup.lossy_incidents.is_empty(), "clean-boundary kill is lossless");
        assert!(!sup.is_clean());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn multi_class_chaos_reassigns_and_stays_byte_identical() {
        let mut spec = CollectionSpec::tiny(51);
        spec.num_files = 8;
        spec.docs_per_file = 6;
        let (coll, dir) = stored("multi-chaos", spec);
        let cfg = PipelineConfig::small(2, 2, 1);
        let baseline = build_index(&coll, &cfg).expect("healthy build");

        // One CPU indexer killed mid-run (shards rehosted to the
        // survivor), one parser killed (its remaining files re-ingested
        // inline on the driver), one parser stalled past the watchdog
        // timeout (same recovery path as a kill).
        let mut chaos = cfg.clone();
        chaos.supervision = SupervisorPolicy::default()
            .with_stall_timeout(std::time::Duration::from_millis(200));
        chaos.worker_faults = WorkerFaultPlan::none()
            .kill(WorkerClass::CpuIndexer, 0, 3)
            .kill(WorkerClass::Parser, 1, 3)
            .stall(WorkerClass::Parser, 0, 6, std::time::Duration::from_secs(1));
        let out = build_index(&coll, &chaos).expect("multi-class chaos must degrade");
        assert_eq!(index_fingerprint(&out), index_fingerprint(&baseline));
        let sup = &out.report.supervision;
        assert_eq!(sup.deaths_of(WorkerClass::CpuIndexer), 1, "{}", sup.summary());
        assert!(sup.deaths_of(WorkerClass::Parser) >= 2, "{}", sup.summary());
        assert!(sup.reassignments >= 1, "{}", sup.summary());
        assert!(sup.inline_parsed_files >= 1, "{}", sup.summary());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn supervision_disabled_keeps_plain_semantics() {
        let mut spec = CollectionSpec::tiny(52);
        spec.num_files = 4;
        let (coll, dir) = stored("plain-mode", spec);
        let mut cfg = PipelineConfig::small(2, 1, 0);
        cfg.supervision = SupervisorPolicy::disabled();
        // Injected faults are inert when supervision is off; the build is
        // the pre-supervisor pipeline.
        cfg.worker_faults = WorkerFaultPlan::none().kill(WorkerClass::CpuIndexer, 0, 1);
        let out = build_index(&coll, &cfg).expect("plain build");
        assert!(out.report.supervision.is_clean());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Dictionary bytes, sorted term → (doc, tf) postings, doc map.
    type LogicalFingerprint = (Vec<u8>, Vec<(String, Vec<(u32, u32)>)>, Vec<u8>);

    /// Logical index identity: dictionary bytes, per-term (doc, tf)
    /// postings, and the doc map. This — not the physical run encodings —
    /// is the invariant the governor preserves: early flushes move run
    /// boundaries, the merged postings never change.
    fn logical_fingerprint(out: &IndexOutput) -> LogicalFingerprint {
        let mut terms: Vec<(String, Vec<(u32, u32)>)> = out
            .dictionary
            .entries()
            .iter()
            .map(|e| {
                let l = out.run_sets[&e.indexer].fetch(e.postings);
                (e.full_term(), l.postings().iter().map(|p| (p.doc.0, p.tf)).collect())
            })
            .collect();
        terms.sort();
        let mut dm = Vec::new();
        out.doc_map.write_to(&mut dm).unwrap();
        (out.dict_bytes.clone(), terms, dm)
    }

    fn governor_gauge(out: &IndexOutput, name: &str) -> i64 {
        out.report.stages.snapshot.gauges.get(name).copied().unwrap_or(-1)
    }

    fn total_runs(out: &IndexOutput) -> usize {
        out.run_sets.values().map(|rs| rs.runs().len()).sum()
    }

    #[test]
    fn early_flush_under_pressure_is_logically_identical() {
        let mut spec = CollectionSpec::tiny(55);
        spec.num_files = 6;
        spec.docs_per_file = 10;
        let (coll, dir) = stored("governor-flush", spec);
        let mut cfg = PipelineConfig::small(2, 1, 1);
        cfg.batches_per_run = 3;
        cfg.governor = GovernorPolicy::unlimited();
        let baseline = build_index(&coll, &cfg).expect("unlimited build");
        assert_eq!(baseline.report.stages.counter("governor.early_flushes"), 0);
        assert_eq!(
            governor_gauge(&baseline, "governor.budget_bytes"),
            0,
            "unlimited reports budget 0"
        );
        assert!(
            governor_gauge(&baseline, "governor.high_water_bytes") > 0,
            "accounting runs even without a budget"
        );

        // A flush watermark so low every batch crosses it: each batch
        // seals its own run — more, smaller runs, same merged index.
        let mut pressured = cfg.clone();
        pressured.governor = GovernorPolicy {
            budget_bytes: 512 << 20,
            flush_watermark: 1e-9,
            shed_watermark: 0.85,
        };
        let out = build_index(&coll, &pressured).expect("pressured build");
        assert!(
            out.report.stages.counter("governor.early_flushes") >= 3,
            "every mid-run batch should flush early: {}",
            out.report.stages.counter("governor.early_flushes")
        );
        assert!(
            total_runs(&out) > total_runs(&baseline),
            "early flushes must produce more, smaller runs ({} vs {})",
            total_runs(&out),
            total_runs(&baseline)
        );
        assert_eq!(logical_fingerprint(&out), logical_fingerprint(&baseline));
        assert!(out.report.supervision.is_clean(), "pressure is not a fault");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn gpu_shed_under_pressure_is_logically_identical() {
        let mut spec = CollectionSpec::tiny(56);
        spec.num_files = 6;
        spec.docs_per_file = 8;
        let (coll, dir) = stored("governor-shed", spec);
        let mut cfg = PipelineConfig::small(2, 1, 1);
        cfg.governor = GovernorPolicy::unlimited();
        let baseline = build_index(&coll, &cfg).expect("unlimited build");

        // A shed watermark so low any device residency crosses it: the
        // GPU's shards are parked onto the CPU salvage path at the first
        // batch boundary, and the rest of the build runs CPU-only.
        let mut pressured = cfg.clone();
        pressured.governor = GovernorPolicy {
            budget_bytes: 512 << 20,
            flush_watermark: 0.5,
            shed_watermark: 1e-9,
        };
        let out = build_index(&coll, &pressured).expect("shed build");
        assert_eq!(out.report.stages.counter("governor.gpu_sheds"), 1, "one GPU to shed");
        assert_eq!(logical_fingerprint(&out), logical_fingerprint(&baseline));
        // A shed is deliberate degradation, not a worker death: the
        // supervision ledger stays clean (`--strict` builds still pass).
        assert!(out.report.supervision.is_clean(), "{}", out.report.supervision.summary());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn mid_build_squeeze_is_logically_identical_and_counted() {
        let mut spec = CollectionSpec::tiny(57);
        spec.num_files = 8;
        spec.docs_per_file = 8;
        let (coll, dir) = stored("governor-squeeze", spec);
        let mut cfg = PipelineConfig::small(2, 1, 1);
        cfg.governor = GovernorPolicy::unlimited();
        let baseline = build_index(&coll, &cfg).expect("unlimited build");
        let high_water = governor_gauge(&baseline, "governor.high_water_bytes") as u64;
        assert!(high_water > 0);

        // Start generous, then shrink mid-build — twice. Squeezes fire at
        // batch ordinals on the deterministic resident figures, so two
        // identical runs degrade identically.
        let mut squeezed = cfg.clone();
        squeezed.governor = GovernorPolicy::default().with_budget(high_water * 4);
        squeezed.worker_faults =
            WorkerFaultPlan::none().squeeze(2, high_water * 3).squeeze(5, high_water * 2);
        let out = build_index(&coll, &squeezed).expect("squeezed build");
        assert_eq!(out.report.stages.counter("governor.squeezes"), 2);
        assert_eq!(
            governor_gauge(&out, "governor.effective_budget_bytes") as u64,
            high_water * 2,
            "the tightest squeeze is the effective budget"
        );
        assert_eq!(logical_fingerprint(&out), logical_fingerprint(&baseline));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn impossible_budget_fails_typed_not_oom() {
        let mut spec = CollectionSpec::tiny(58);
        spec.num_files = 4;
        let (coll, dir) = stored("governor-abort", spec);
        let mut cfg = PipelineConfig::small(1, 1, 0);
        // 80 KB total → 60 KB resident share: below even one empty
        // dictionary shard's fixed trie-roots table, so no amount of
        // flushing or shedding can fit. The build must refuse with the
        // typed error naming both figures — never an OOM kill.
        cfg.governor = GovernorPolicy::default().with_budget(80_000);
        match build_index(&coll, &cfg) {
            Err(PipelineError::MemoryBudgetExceeded { budget, needed }) => {
                assert_eq!(budget, 80_000);
                assert!(needed > 60_000, "needed={needed}");
            }
            other => panic!("expected budget refusal, got {:?}", other.map(|_| "index")),
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn disk_full_final_commit_is_retried_to_success() {
        let mut spec = CollectionSpec::tiny(53);
        spec.num_files = 4;
        spec.docs_per_file = 6;
        let (coll, dir) = stored("disk-full", spec);
        let cfg = PipelineConfig::small(1, 1, 0);
        let baseline = build_index(&coll, &cfg).expect("baseline");

        // With no periodic checkpoints every storage op belongs to the
        // final commit, so an ENOSPC window over ops 2-3 hits the first
        // commit attempt (and the first retry) during early artifact
        // writes; the ops of a later retry fall past the window and land.
        let idx_dir = dir.join("index");
        let full = CrashVfs::disk_full(2, 2);
        let opts = DurableOptions::new(&idx_dir).with_vfs(&full);
        let out = build_index_durable(&coll, &cfg, &opts).expect("commit retried past ENOSPC");
        assert!(out.report.supervision.commit_retries >= 1, "retries must be reported");
        assert!(!full.crashed(), "disk-full is pressure, not a crash");
        assert_eq!(index_fingerprint(&out), index_fingerprint(&baseline));
        let store = Store::open(&idx_dir).expect("index committed after retry");
        assert_eq!(store.manifest().kind, ManifestKind::Index);
        for st in store.verify() {
            assert!(st.ok, "{}: {:?}", st.name, st.detail);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn disk_full_past_retry_budget_fails_typed_and_retriable() {
        let mut spec = CollectionSpec::tiny(54);
        spec.num_files = 3;
        let (coll, dir) = stored("disk-full-hard", spec);
        let cfg = PipelineConfig::small(1, 1, 0);
        // A volume that never frees space: the build must surface the
        // typed, retriable error — not a torn index, not a panic.
        let full = CrashVfs::disk_full(0, u64::MAX);
        let opts = DurableOptions::new(dir.join("index")).with_vfs(&full);
        match build_index_durable(&coll, &cfg, &opts) {
            Err(PipelineError::Store(e)) => {
                assert!(e.is_retriable(), "must classify as retriable: {e}");
                assert!(matches!(e, StoreError::DiskFull { .. }), "{e:?}");
            }
            other => panic!("expected typed disk-full, got {:?}", other.map(|_| "index")),
        }
        std::fs::remove_dir_all(dir).unwrap();
    }
}
