//! Build checkpoints: the state a crash-interrupted build resumes from.
//!
//! A checkpoint is an ordinary ii-store commit with
//! [`ManifestKind::Checkpoint`](ii_store::ManifestKind): the sealed run
//! files so far, the docmap high-water mark, one serialized
//! [`PartialDictionary`](ii_dict::PartialDictionary) per indexer (the
//! handle-assignment state byte-identical resume depends on), and this
//! module's `checkpoint.json` describing the scalar counters and the
//! collection/config fingerprints the checkpoint is only valid for.
//! Checkpoints are taken at run boundaries, where every indexer's pending
//! postings have just been flushed — so no in-memory postings need saving.

use crate::fault::{FaultClass, FaultStage, FileFault};
use serde::{Deserialize, Serialize};

/// Logical artifact name of the checkpoint descriptor.
pub const CHECKPOINT_ARTIFACT: &str = "checkpoint.json";
/// Logical artifact name of the document map.
pub const DOCMAP_ARTIFACT: &str = "docmap.bin";
/// Logical artifact name of the combined dictionary.
pub const DICTIONARY_ARTIFACT: &str = "dictionary.bin";

/// Logical artifact name of one indexer's checkpointed dictionary shard.
pub fn shard_artifact_name(indexer_id: u32) -> String {
    format!("state_{indexer_id:03}.iipd")
}

/// A quarantined file carried across a resume so the final report lists
/// every fault of the whole build, not just the post-resume part.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedFile {
    /// Container file index.
    pub file_idx: u64,
    /// Fault class (`transient` / `permanent` / `panic`).
    pub class: String,
    /// Pipeline stage (`sampling` / `parsing`).
    pub stage: String,
    /// Retries burned before giving up.
    pub retries: u32,
    /// Human-readable failure description.
    pub error: String,
}

impl QuarantinedFile {
    /// Capture a [`FileFault`] for the checkpoint.
    pub fn from_fault(f: &FileFault) -> Self {
        QuarantinedFile {
            file_idx: f.file_idx as u64,
            class: f.class.to_string(),
            stage: f.stage.to_string(),
            retries: f.retries,
            error: f.error.clone(),
        }
    }

    /// Rebuild the [`FileFault`] on resume. `None` if the class/stage
    /// strings are not ones this build writes (a foreign checkpoint).
    pub fn to_fault(&self) -> Option<FileFault> {
        let class = match self.class.as_str() {
            "transient" => FaultClass::Transient,
            "permanent" => FaultClass::Permanent,
            "panic" => FaultClass::Panic,
            _ => return None,
        };
        let stage = match self.stage.as_str() {
            "sampling" => FaultStage::Sampling,
            "parsing" => FaultStage::Parsing,
            _ => return None,
        };
        Some(FileFault {
            file_idx: self.file_idx as usize,
            class,
            retries: self.retries,
            stage,
            error: self.error.clone(),
        })
    }
}

/// The scalar state of a mid-build checkpoint (`checkpoint.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BuildCheckpoint {
    /// Container files fully consumed: resume starts at this index.
    pub files_done: u64,
    /// Global doc-ID high-water mark (indexed + quarantine-reserved).
    pub next_doc: u32,
    /// Documents actually indexed.
    pub docs_indexed: u32,
    /// Runs flushed so far (the next run id).
    pub runs_flushed: u32,
    /// Indexer ids with a `state_NNN.iipd` shard artifact.
    pub indexers: Vec<u32>,
    /// Identity of the collection this checkpoint belongs to.
    pub collection: String,
    /// Fingerprint of every config knob that affects index bytes.
    pub config: String,
    /// Read retries recovered before the checkpoint.
    pub retries: u32,
    /// Files that needed retries but ultimately parsed.
    pub recovered_files: u32,
    /// Files quarantined before the checkpoint.
    pub quarantined: Vec<QuarantinedFile>,
}

/// Identity of a stored collection, pinned into every checkpoint: resuming
/// against a different (or regenerated) collection is refused rather than
/// silently producing a franken-index.
pub fn collection_fingerprint(c: &ii_corpus::StoredCollection) -> String {
    let spec = &c.manifest.spec;
    format!(
        "{}|seed={}|files={}|docs_per_file={}|bytes={}",
        spec.name,
        spec.seed,
        spec.num_files,
        spec.docs_per_file,
        c.manifest.stats.uncompressed_bytes,
    )
}

/// Fingerprint of the pipeline-config knobs that change index *bytes*.
/// Deliberately excludes `num_parsers`, `buffer_depth`, and the fault
/// policy: those change scheduling and recovery, not output (the
/// round-robin consumption rule makes output parser-count-independent).
/// The memory-governor knobs ARE included: a different budget or watermark
/// moves early-flush and shed points, which moves run boundaries — the
/// logical index is identical, but a resume would splice physically
/// incompatible run files, so the mismatch is refused instead.
pub fn config_fingerprint(cfg: &crate::driver::PipelineConfig) -> String {
    format!(
        "cpus={}|gpus={}|popular={}|batches_per_run={}|codec={:?}|sample={}x{}\
         |mem_budget={}|flush_wm={}|shed_wm={}",
        cfg.num_cpu_indexers,
        cfg.num_gpus,
        cfg.popular_count,
        cfg.batches_per_run,
        cfg.codec,
        cfg.sample_docs_per_file,
        cfg.sample_file_stride,
        cfg.governor.budget_bytes,
        cfg.governor.flush_watermark,
        cfg.governor.shed_watermark,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_json_roundtrip() {
        let ckpt = BuildCheckpoint {
            files_done: 7,
            next_doc: 220,
            docs_indexed: 200,
            runs_flushed: 3,
            indexers: vec![0, 1, 2],
            collection: "tiny|seed=41|files=10|docs_per_file=20|bytes=12345".into(),
            config: "cpus=1|gpus=1|popular=8|batches_per_run=1|codec=VarByte|sample=2x1".into(),
            retries: 2,
            recovered_files: 1,
            quarantined: vec![QuarantinedFile {
                file_idx: 4,
                class: "permanent".into(),
                stage: "parsing".into(),
                retries: 0,
                error: "container parse failed: bad magic".into(),
            }],
        };
        let bytes = serde_json::to_vec_pretty(&ckpt).unwrap();
        let back: BuildCheckpoint = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, ckpt);
        let fault = back.quarantined[0].to_fault().unwrap();
        assert_eq!(fault.file_idx, 4);
        assert_eq!(fault.class, FaultClass::Permanent);
        assert_eq!(fault.stage, FaultStage::Parsing);
        // The round-trip through QuarantinedFile is lossless.
        assert_eq!(QuarantinedFile::from_fault(&fault), back.quarantined[0]);
    }

    #[test]
    fn foreign_class_strings_rejected() {
        let q = QuarantinedFile {
            file_idx: 0,
            class: "cosmic-ray".into(),
            stage: "parsing".into(),
            retries: 0,
            error: String::new(),
        };
        assert!(q.to_fault().is_none());
    }

    #[test]
    fn shard_names_are_stable() {
        assert_eq!(shard_artifact_name(0), "state_000.iipd");
        assert_eq!(shard_artifact_name(12), "state_012.iipd");
    }
}
