//! Parallel parsers with a serialized disk scheduler (paper §III.C, §III.F).
//!
//! "To avoid several parsers from trying to read from the same disk at the
//! same time, a scheduler is used to organize the reads of the different
//! parsers, one at a time." Parser `i` owns files `i, i+M, i+2M, ...`, so
//! consuming the parser buffers in round-robin order replays the global
//! file order and document IDs come out "intrinsically in sorted order".
//!
//! Each parser performs Step 1 (read + decompress + doc-ID table) and
//! Steps 2-5 (tokenize, stem, stop words, regroup) and pushes the parsed
//! batch into its bounded output buffer.
//!
//! Fault handling: transient read errors are retried with exponential
//! backoff under the [`FaultPolicy`]; permanent corruption (and exhausted
//! retries) produce a typed [`FileFault`] message in the file's round-robin
//! slot, so the strict consumption order — and with it docID determinism —
//! survives a bad file. Each file's work runs under `catch_unwind`, so a
//! poisoned parser surfaces as a `Panic`-class fault instead of hanging the
//! consumer or silently truncating the stream.

use crate::fault::{
    FaultAction, FaultClass, FaultPolicy, FaultStage, FileFault, PipelineError, WorkerClass,
    WorkerFaultKind, WorkerFaultPlan,
};
use crate::governor::MemoryGovernor;
use crate::supervisor::{DeathCause, SupervisorPolicy, WorkerDeath};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use ii_corpus::{compress, container, StoredCollection};
use ii_obs::{Heartbeat, Registry, Stage, TraceKind, TraceSink, Tracer};
use ii_text::{parse_documents_into, parse_documents_reference, ParseScratch, ParsedBatch};
use parking_lot::Mutex;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Stage handles the parser threads record into: one [`Stage`] per
/// dataflow step of paper Step 1 (read, decompress) and Steps 2-5 (parse).
/// Producer back-pressure (time blocked sending into a full buffer) lands
/// in the parse stage's `queue_wait_ns`.
#[derive(Clone)]
pub struct ParserObs {
    /// Serialized disk reads (bytes = compressed bytes read).
    pub read: Arc<Stage>,
    /// In-memory decompression (bytes = uncompressed output).
    pub decompress: Arc<Stage>,
    /// Container parse + tokenize/stem/stop/regroup (bytes = uncompressed
    /// input).
    pub parse: Arc<Stage>,
}

impl ParserObs {
    /// Intern the parser stages ("read", "decompress", "parse") in `r`.
    pub fn from_registry(r: &Registry) -> ParserObs {
        ParserObs {
            read: r.stage("read"),
            decompress: r.stage("decompress"),
            parse: r.stage("parse"),
        }
    }
}

/// Returns consumed [`ParsedBatch`] buffers from the round-robin consumer
/// to the parser threads, so output allocations circulate instead of being
/// made fresh per container file.
///
/// A bounded mutex-guarded pool carries the husks; both ends use
/// non-blocking `try_lock`, so contention — or a full pool — simply drops
/// the batch (the allocator takes over) and an empty pool means parsers
/// allocate normally. Correctness never depends on recycling.
#[derive(Clone)]
pub struct BatchRecycler {
    pool: Arc<Mutex<Vec<ParsedBatch>>>,
    capacity: usize,
}

impl BatchRecycler {
    /// Pool holding at most `capacity` drained batches.
    pub fn new(capacity: usize) -> BatchRecycler {
        let capacity = capacity.max(1);
        BatchRecycler {
            pool: Arc::new(Mutex::new(Vec::with_capacity(capacity))),
            capacity,
        }
    }

    /// Consumer side: hand back a batch whose contents have been indexed.
    /// Never blocks; the batch is dropped if the pool is full or busy.
    pub fn reclaim(&self, batch: ParsedBatch) {
        if let Some(mut pool) = self.pool.try_lock() {
            if pool.len() < self.capacity {
                pool.push(batch);
            }
        }
    }

    /// Parser side: move one available husk's buffers into `scratch`.
    /// (One per file keeps the pool spread across parser threads.)
    fn refill(&self, scratch: &mut ParseScratch) {
        let husk = self.pool.try_lock().and_then(|mut pool| pool.pop());
        if let Some(husk) = husk {
            scratch.recycle(husk);
        }
    }

    /// Number of husks currently pooled (0 when the pool is busy) — a
    /// gauge-sampling probe, approximate by design.
    pub fn depth(&self) -> usize {
        self.pool.try_lock().map_or(0, |pool| pool.len())
    }
}

/// Extended spawn options (the plain `spawn*` constructors cover the
/// common defaults).
#[derive(Clone, Default)]
pub struct SpawnOptions {
    /// First container file to ingest (resume path).
    pub start_file: usize,
    /// Buffer pool fed by the consumer via [`BatchRecycler::reclaim`].
    pub recycler: Option<BatchRecycler>,
    /// Parse with the retained naive reference path instead of the
    /// scratch-based hot path (differential testing).
    pub reference_parser: bool,
    /// Event tracer; each parser registers a `parser-{p}` timeline. The
    /// default (disabled) tracer records nothing.
    pub tracer: Tracer,
    /// Liveness beacons, one per parser in parser order (the supervisor's
    /// registrations). Parser `p` bumps `heartbeats[p]` through its trace
    /// spans; missing entries leave that parser unsupervised for stalls.
    pub heartbeats: Vec<Arc<Heartbeat>>,
    /// Seeded worker-fault schedule (chaos testing). A scheduled `Kill`
    /// makes the parser thread exit just before ingesting the trigger
    /// file; a `Stall` makes it sleep that long without heartbeating.
    pub worker_faults: WorkerFaultPlan,
    /// Shared memory governor. Parsers acquire byte credits from its
    /// in-flight gate before sending each batch downstream (blocked time
    /// lands in `memory_wait` spans); the default unlimited governor
    /// accounts but never blocks.
    pub governor: MemoryGovernor,
}

/// Per-parser timing accumulators (read under the disk lock vs the rest).
#[derive(Clone, Copy, Debug, Default)]
pub struct ParserTiming {
    /// Seconds holding the disk (serialized reads).
    pub read_seconds: f64,
    /// Seconds decompressing in memory.
    pub decompress_seconds: f64,
    /// Seconds tokenizing/stemming/regrouping.
    pub parse_seconds: f64,
    /// Files handled successfully.
    pub files: usize,
}

/// One parser's message for one container file: either the parsed batch or
/// the fault that consumed the file's round-robin slot.
#[derive(Debug)]
pub struct ParsedFile {
    /// Failed read attempts recovered from before success (0 on the error
    /// path — the fault itself carries its retry count).
    pub retries: u32,
    /// Seconds the *consumer* blocked waiting for this message (set by
    /// [`RoundRobin`]; 0 until the message is consumed). Distinguishes
    /// "the parser was slow" from "the file itself was slow" in per-file
    /// reports.
    pub queue_wait_seconds: f64,
    /// The batch, or the fault occupying this file's slot.
    pub result: Result<ParsedBatch, FileFault>,
}

impl ParsedFile {
    /// The container file this message accounts for.
    pub fn file_idx(&self) -> usize {
        match &self.result {
            Ok(batch) => batch.file_idx,
            Err(fault) => fault.file_idx,
        }
    }
}

/// Handle to a running parser pool.
pub struct ParserPool {
    /// One output buffer per parser, in parser order.
    pub buffers: Vec<Receiver<ParsedFile>>,
    handles: Vec<std::thread::JoinHandle<ParserTiming>>,
}

impl ParserPool {
    /// Spawn `num_parsers` parser threads over the collection's files.
    /// `buffer_depth` bounds each parser's output buffer, providing the
    /// back-pressure that couples the two pipeline stages. `policy` governs
    /// retry and skip behaviour for faulty files.
    pub fn spawn(
        collection: Arc<StoredCollection>,
        num_parsers: usize,
        buffer_depth: usize,
        policy: FaultPolicy,
    ) -> ParserPool {
        // Callers that don't care about metrics still record into a
        // throwaway registry — the instrumentation stays exercised (and
        // measured) everywhere.
        Self::spawn_observed(
            collection,
            num_parsers,
            buffer_depth,
            policy,
            ParserObs::from_registry(&Registry::new()),
        )
    }

    /// [`Self::spawn`] recording per-stage metrics into `obs` (the
    /// pipeline driver passes stages interned in its per-build registry).
    pub fn spawn_observed(
        collection: Arc<StoredCollection>,
        num_parsers: usize,
        buffer_depth: usize,
        policy: FaultPolicy,
        obs: ParserObs,
    ) -> ParserPool {
        Self::spawn_observed_from(collection, num_parsers, buffer_depth, policy, obs, 0)
    }

    /// [`Self::spawn_observed`] starting at container file `start_file`
    /// instead of 0 — the resume path after a build checkpoint. Parser `p`
    /// still owns every file whose index is `p` modulo `num_parsers`, so a
    /// resumed build routes each remaining file through the same parser
    /// slot (and thus the same round-robin consumption order) as an
    /// uninterrupted build.
    pub fn spawn_observed_from(
        collection: Arc<StoredCollection>,
        num_parsers: usize,
        buffer_depth: usize,
        policy: FaultPolicy,
        obs: ParserObs,
        start_file: usize,
    ) -> ParserPool {
        Self::spawn_with(
            collection,
            num_parsers,
            buffer_depth,
            policy,
            obs,
            SpawnOptions { start_file, ..SpawnOptions::default() },
        )
    }

    /// [`Self::spawn_observed_from`] with the full option set: batch-buffer
    /// recycling and the reference-parser differential knob.
    pub fn spawn_with(
        collection: Arc<StoredCollection>,
        num_parsers: usize,
        buffer_depth: usize,
        policy: FaultPolicy,
        obs: ParserObs,
        options: SpawnOptions,
    ) -> ParserPool {
        let start_file = options.start_file;
        assert!(num_parsers >= 1);
        let disk = Arc::new(Mutex::new(()));
        let html = collection.manifest.spec.html;
        let num_files = collection.num_files();
        let mut buffers = Vec::with_capacity(num_parsers);
        let mut handles = Vec::with_capacity(num_parsers);
        for p in 0..num_parsers {
            let (tx, rx): (Sender<ParsedFile>, Receiver<ParsedFile>) =
                bounded(buffer_depth.max(1));
            let disk = Arc::clone(&disk);
            let coll = Arc::clone(&collection);
            let obs = obs.clone();
            let options = options.clone();
            // Register timelines in parser order (before the threads race).
            let mut sink = options.tracer.sink(&format!("parser-{p}"));
            if let Some(hb) = options.heartbeats.get(p) {
                sink = sink.with_heartbeat(Arc::clone(hb));
            }
            let handle = std::thread::spawn(move || {
                let mut timing = ParserTiming::default();
                // Thread-owned working memory, carried across files so
                // steady-state parsing reuses every buffer.
                let mut scratch = ParseScratch::new();
                // First index >= start_file owned by this parser (idx ≡ p
                // mod num_parsers).
                let mut file_idx =
                    start_file + (p + num_parsers - start_file % num_parsers) % num_parsers;
                while file_idx < num_files {
                    // Chaos injection: a scheduled kill ends this thread at
                    // the file boundary (the channel disconnect is what the
                    // watchdog observes); a stall sleeps without beating the
                    // heartbeat, so only the watchdog timeout can notice.
                    match options.worker_faults.fault_at(WorkerClass::Parser, p, file_idx) {
                        Some(WorkerFaultKind::Kill) => break,
                        Some(WorkerFaultKind::Stall(d)) => std::thread::sleep(d),
                        None => {}
                    }
                    // Crash containment: a panic anywhere in this file's
                    // ingest becomes a typed fault in its round-robin slot.
                    // (The scratch self-cleans any stale state on reuse.)
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        ingest_file(
                            &coll,
                            &disk,
                            html,
                            file_idx,
                            &policy,
                            &mut timing,
                            &obs,
                            &mut scratch,
                            &options,
                            &sink,
                        )
                    }));
                    let msg = match outcome {
                        Ok((retries, Ok(batch))) => {
                            ParsedFile { retries, queue_wait_seconds: 0.0, result: Ok(batch) }
                        }
                        Ok((retries, Err((class, error)))) => ParsedFile {
                            retries: 0,
                            queue_wait_seconds: 0.0,
                            result: Err(FileFault {
                                file_idx,
                                class,
                                retries,
                                stage: FaultStage::Parsing,
                                error,
                            }),
                        },
                        Err(payload) => ParsedFile {
                            retries: 0,
                            queue_wait_seconds: 0.0,
                            result: Err(FileFault {
                                file_idx,
                                class: FaultClass::Panic,
                                retries: 0,
                                stage: FaultStage::Parsing,
                                error: panic_message(payload.as_ref()),
                            }),
                        },
                    };
                    let failed = msg.result.is_err();
                    // Memory back-pressure: a parsed batch may not enter
                    // the in-flight queues until the governor's byte-credit
                    // gate admits its footprint (fault messages carry no
                    // payload and pass free). The driver returns the credit
                    // when the batch's memory is recycled.
                    let credit = msg.result.as_ref().map_or(0, |b| b.mem_bytes());
                    options.governor.acquire(p, credit, &sink);
                    // Producer back-pressure: time blocked on a full buffer.
                    let t_send = Instant::now();
                    {
                        let mut qspan = sink.span(TraceKind::QueueFull);
                        qspan.set_batch(file_idx as u32);
                        if tx.send(msg).is_err() {
                            options.governor.release(p, credit);
                            break; // consumer gone
                        }
                    }
                    obs.parse.queue_wait_ns.add(t_send.elapsed().as_nanos() as u64);
                    if failed && policy.action == FaultAction::FailFast {
                        break; // the consumer will abort on receipt
                    }
                    file_idx += num_parsers;
                }
                timing
            });
            buffers.push(rx);
            handles.push(handle);
        }
        ParserPool { buffers, handles }
    }

    /// Wait for all parsers and collect their timings. A parser that died
    /// outside its per-file containment contributes empty timings rather
    /// than propagating the panic.
    pub fn join(self) -> Vec<ParserTiming> {
        self.handles.into_iter().map(|h| h.join().unwrap_or_default()).collect()
    }
}

type IngestOutcome = (u32, Result<ParsedBatch, (FaultClass, String)>);

/// Ingest one container file: serialized read (with transient-fault retry),
/// decompress, container parse, and Steps 2-5 parsing. Returns the number
/// of recovered retries plus the batch or the classified failure.
#[allow(clippy::too_many_arguments)]
fn ingest_file(
    coll: &StoredCollection,
    disk: &Mutex<()>,
    html: bool,
    file_idx: usize,
    policy: &FaultPolicy,
    timing: &mut ParserTiming,
    obs: &ParserObs,
    scratch: &mut ParseScratch,
    options: &SpawnOptions,
    sink: &TraceSink,
) -> IngestOutcome {
    let mut retries = 0u32;
    // Step 1a: serialized read of the compressed file, retried on
    // transient faults with exponential backoff (sleeping outside the
    // disk lock so other parsers proceed).
    let raw = loop {
        let read = {
            let wait_span = sink.span(TraceKind::DiskWait);
            let _disk_token = disk.lock();
            drop(wait_span); // lock acquired: the read-wait stall ends here
            let mut rspan = sink.span(TraceKind::Read);
            rspan.set_batch(file_idx as u32);
            let t0 = Instant::now();
            let r = coll.read_file_raw(file_idx);
            let dt = t0.elapsed();
            timing.read_seconds += dt.as_secs_f64();
            obs.read.wall_ns.add(dt.as_nanos() as u64);
            obs.read.latency.record_ns(dt.as_nanos() as u64);
            if let Ok(raw) = &r {
                rspan.add_bytes(raw.len() as u64);
            }
            r
        };
        match read {
            Ok(raw) => {
                obs.read.items.inc();
                obs.read.bytes.add(raw.len() as u64);
                break raw;
            }
            Err(e) => {
                let transient = io_is_transient(&e);
                if transient && retries < policy.max_retries {
                    retries += 1;
                    // Jittered: parsers sharing a glitching disk must not
                    // re-stampede it in lockstep.
                    std::thread::sleep(policy.jittered_backoff(retries, file_idx as u64));
                    continue;
                }
                let class =
                    if transient { FaultClass::Transient } else { FaultClass::Permanent };
                return (retries, Err((class, format!("read failed: {e}"))));
            }
        }
    };
    // Step 1b: in-memory decompression (outside the lock — the
    // separate-step scheme of §IV.A).
    let mut span = obs.decompress.span();
    let mut tspan = sink.span(TraceKind::Decompress);
    tspan.set_batch(file_idx as u32);
    let t0 = Instant::now();
    let bytes = match compress::decompress(&raw) {
        Ok(b) => b,
        Err(e) => {
            drop(span);
            return (retries, Err((FaultClass::Permanent, format!("decompress failed: {e}"))));
        }
    };
    timing.decompress_seconds += t0.elapsed().as_secs_f64();
    span.add_bytes(bytes.len() as u64);
    tspan.add_bytes(bytes.len() as u64);
    drop(span);
    drop(tspan);
    // Steps 1c-5: container parse + tokenize/stem/stop/regroup.
    let mut span = obs.parse.span();
    let mut tspan = sink.span(TraceKind::Parse);
    tspan.set_batch(file_idx as u32);
    let t0 = Instant::now();
    let docs = match container::parse_container(&bytes) {
        Ok(d) => d,
        Err(e) => {
            drop(span);
            return (
                retries,
                Err((FaultClass::Permanent, format!("container parse failed: {e}"))),
            );
        }
    };
    // Pull consumed batch buffers back from the consumer before parsing so
    // their capacity is reused for this file's output.
    if let Some(recycler) = &options.recycler {
        recycler.refill(scratch);
    }
    let batch = if options.reference_parser {
        parse_documents_reference(&docs, html, file_idx)
    } else {
        parse_documents_into(scratch, &docs, html, file_idx)
    };
    timing.parse_seconds += t0.elapsed().as_secs_f64();
    timing.files += 1;
    span.add_bytes(bytes.len() as u64);
    tspan.add_bytes(bytes.len() as u64);
    drop(span);
    drop(tspan);
    (retries, Ok(batch))
}

/// I/O errors are retried unless the kind indicates a fault retrying
/// cannot fix.
fn io_is_transient(e: &io::Error) -> bool {
    !matches!(
        e.kind(),
        io::ErrorKind::NotFound
            | io::ErrorKind::PermissionDenied
            | io::ErrorKind::Unsupported
            | io::ErrorKind::InvalidData
            | io::ErrorKind::InvalidInput
    )
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "parser panicked".to_string()
    }
}

/// Consume the parser buffers in strict round-robin order, yielding one
/// message per file in global file order (the §III.F consumption rule).
///
/// A channel that closes before delivering its files yields a
/// [`PipelineError::ParserDisconnected`] instead of ending the stream —
/// the silent-truncation bug where a crashed parser looked identical to
/// end-of-input.
pub struct RoundRobin<'a> {
    buffers: &'a [Receiver<ParsedFile>],
    next_file: usize,
    num_files: usize,
    /// Consumer queue-wait accounting: time blocked in `recv` lands in
    /// this stage's `queue_wait_ns` (the driver passes its index stage).
    queue_wait: Option<Arc<Stage>>,
    /// Consumer timeline: each blocking `recv` records a `parser_wait`
    /// stall span (disabled by default).
    trace: TraceSink,
}

impl<'a> RoundRobin<'a> {
    /// Iterate the messages of `num_files` files over `buffers`.
    pub fn new(buffers: &'a [Receiver<ParsedFile>], num_files: usize) -> Self {
        Self::starting_at(buffers, num_files, 0)
    }

    /// Iterate files `start_file..num_files` — pairs with
    /// [`ParserPool::spawn_observed_from`] on the resume path.
    pub fn starting_at(
        buffers: &'a [Receiver<ParsedFile>],
        num_files: usize,
        start_file: usize,
    ) -> Self {
        RoundRobin {
            buffers,
            next_file: start_file,
            num_files,
            queue_wait: None,
            trace: TraceSink::disabled(),
        }
    }

    /// Record time blocked waiting on parser buffers into `stage`'s
    /// `queue_wait_ns`.
    pub fn with_queue_wait(mut self, stage: Arc<Stage>) -> Self {
        self.queue_wait = Some(stage);
        self
    }

    /// Record each blocking `recv` as a `parser_wait` stall span on
    /// `sink` (the driver passes its own timeline).
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }
}

impl Iterator for RoundRobin<'_> {
    type Item = Result<ParsedFile, PipelineError>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.next_file >= self.num_files {
            return None;
        }
        let parser = self.next_file % self.buffers.len();
        let t_recv = Instant::now();
        let received = {
            let mut wspan = self.trace.span(TraceKind::ParserWait);
            wspan.set_batch(self.next_file as u32);
            self.buffers[parser].recv()
        };
        let waited = t_recv.elapsed();
        if let Some(stage) = &self.queue_wait {
            stage.queue_wait_ns.add(waited.as_nanos() as u64);
        }
        match received {
            Ok(mut msg) => {
                debug_assert_eq!(msg.file_idx(), self.next_file, "round-robin order violated");
                msg.queue_wait_seconds = waited.as_secs_f64();
                self.next_file += 1;
                Some(Ok(msg))
            }
            Err(_) => {
                let err = PipelineError::ParserDisconnected { parser, file_idx: self.next_file };
                self.next_file = self.num_files; // fuse: the stream is dead
                Some(Err(err))
            }
        }
    }
}

/// [`RoundRobin`] with a watchdog: consumes the parser buffers in strict
/// file order, but survives parser death instead of aborting.
///
/// The consumer owns the receivers. While waiting for a file it polls with
/// `recv_timeout`; a parser whose channel disconnects with files
/// outstanding, or whose heartbeat stays silent past the stall timeout, is
/// declared dead. Its receiver is dropped (unblocking the thread if it was
/// parked on a full buffer, so it exits through its normal send-failure
/// path) and every file the dead parser still owed is re-ingested *inline
/// on the consumer thread* — same read/decompress/parse code, same fault
/// classification, same round-robin slot — so document IDs and the final
/// index stay byte-identical to a healthy build.
pub struct SupervisedRoundRobin {
    /// One slot per parser; `None` once that parser is declared dead.
    buffers: Vec<Option<Receiver<ParsedFile>>>,
    heartbeats: Vec<Option<Arc<Heartbeat>>>,
    next_file: usize,
    num_files: usize,
    queue_wait: Option<Arc<Stage>>,
    trace: TraceSink,
    supervision: SupervisorPolicy,
    // Inline re-ingest context for files a dead parser owed.
    collection: Arc<StoredCollection>,
    policy: FaultPolicy,
    obs: ParserObs,
    options: SpawnOptions,
    disk: Arc<Mutex<()>>,
    scratch: ParseScratch,
    inline_timing: ParserTiming,
    deaths: Vec<WorkerDeath>,
    inline_parsed: u32,
}

impl SupervisedRoundRobin {
    /// Adopt `pool`'s buffers (the pool keeps only its join handles) and
    /// iterate files `start_file..num_files` under watchdog supervision.
    /// `options` must be the same option set the pool was spawned with —
    /// its `heartbeats` pair the watchdog with the parser threads, and its
    /// parse knobs keep inline re-ingest byte-identical. With
    /// `supervision.enabled == false` the watchdog and inline takeover are
    /// off and a dead parser is the fatal
    /// [`PipelineError::ParserDisconnected`] of the unsupervised pipeline.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pool: &mut ParserPool,
        collection: Arc<StoredCollection>,
        num_files: usize,
        start_file: usize,
        policy: FaultPolicy,
        obs: ParserObs,
        options: SpawnOptions,
        supervision: SupervisorPolicy,
    ) -> SupervisedRoundRobin {
        let buffers: Vec<Option<Receiver<ParsedFile>>> =
            std::mem::take(&mut pool.buffers).into_iter().map(Some).collect();
        let heartbeats = (0..buffers.len())
            .map(|p| options.heartbeats.get(p).cloned())
            .collect();
        SupervisedRoundRobin {
            buffers,
            heartbeats,
            next_file: start_file,
            num_files,
            queue_wait: None,
            trace: TraceSink::disabled(),
            supervision,
            collection,
            policy,
            obs,
            options,
            disk: Arc::new(Mutex::new(())),
            scratch: ParseScratch::new(),
            inline_timing: ParserTiming::default(),
            deaths: Vec::new(),
            inline_parsed: 0,
        }
    }

    /// Record time blocked waiting on parser buffers into `stage`'s
    /// `queue_wait_ns`.
    pub fn with_queue_wait(mut self, stage: Arc<Stage>) -> Self {
        self.queue_wait = Some(stage);
        self
    }

    /// Record each blocking wait as a `parser_wait` stall span on `sink`
    /// (the driver passes its own timeline). Inline re-ingest spans land
    /// on the same timeline.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// Parser deaths the watchdog declared, in declaration order.
    pub fn deaths(&self) -> &[WorkerDeath] {
        &self.deaths
    }

    /// Files re-ingested inline on the consumer thread for dead parsers.
    pub fn inline_parsed_files(&self) -> u32 {
        self.inline_parsed
    }

    /// Timing accumulated by inline re-ingest (folded into the parser
    /// timings by the driver).
    pub fn inline_timing(&self) -> ParserTiming {
        self.inline_timing
    }

    /// Whether parser `p` has been declared dead.
    pub fn parser_is_dead(&self, p: usize) -> bool {
        self.buffers.get(p).is_some_and(|b| b.is_none())
    }

    /// Declare parser `p` dead: drop its receiver (a producer parked on a
    /// full buffer errors out of its send and exits) and record the death.
    fn declare_dead(&mut self, p: usize, cause: DeathCause) {
        if let Some(slot) = self.buffers.get_mut(p) {
            if slot.take().is_some() {
                self.deaths.push(WorkerDeath { class: WorkerClass::Parser, index: p, cause });
            }
        }
    }

    /// Re-ingest `file_idx` on this thread with the exact pipeline the
    /// dead parser would have run, including panic containment and fault
    /// classification.
    fn ingest_inline(&mut self, file_idx: usize) -> ParsedFile {
        self.inline_parsed += 1;
        let coll = &self.collection;
        let disk = &self.disk;
        let html = coll.manifest.spec.html;
        let policy = &self.policy;
        let timing = &mut self.inline_timing;
        let obs = &self.obs;
        let scratch = &mut self.scratch;
        let options = &self.options;
        let sink = &self.trace;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            ingest_file(coll, disk, html, file_idx, policy, timing, obs, scratch, options, sink)
        }));
        match outcome {
            Ok((retries, Ok(batch))) => {
                ParsedFile { retries, queue_wait_seconds: 0.0, result: Ok(batch) }
            }
            Ok((retries, Err((class, error)))) => ParsedFile {
                retries: 0,
                queue_wait_seconds: 0.0,
                result: Err(FileFault {
                    file_idx,
                    class,
                    retries,
                    stage: FaultStage::Parsing,
                    error,
                }),
            },
            Err(payload) => ParsedFile {
                retries: 0,
                queue_wait_seconds: 0.0,
                result: Err(FileFault {
                    file_idx,
                    class: FaultClass::Panic,
                    retries: 0,
                    stage: FaultStage::Parsing,
                    error: panic_message(payload.as_ref()),
                }),
            },
        }
    }

    /// Approximate queued-message depth of parser `p`'s buffer (0 once the
    /// parser is dead) — feeds the driver's queue gauges.
    pub fn queue_depth(&self, p: usize) -> usize {
        self.buffers.get(p).and_then(|b| b.as_ref()).map_or(0, |rx| rx.len())
    }

    /// Wait for the next expected file from parser `p`, declare it dead
    /// ([`Recv::Dead`] — the caller re-ingests inline), or, with
    /// supervision off, surface the fatal disconnect ([`Recv::Fatal`]).
    fn receive_or_bury(&mut self, p: usize) -> Recv {
        let stall_timeout = self.supervision.stall_timeout;
        // Poll fast enough to notice a stall promptly without busy-waiting
        // (a quarter of the stall timeout unless the policy pins it).
        let poll = self.supervision.effective_poll_interval();
        let t_start = Instant::now();
        loop {
            let rx = match self.buffers[p].as_ref() {
                Some(rx) => rx,
                None => return Recv::Dead,
            };
            if !self.supervision.enabled {
                return match rx.recv() {
                    Ok(msg) => Recv::Msg(msg),
                    Err(_) => Recv::Fatal,
                };
            }
            match rx.recv_timeout(poll) {
                Ok(msg) => return Recv::Msg(msg),
                Err(RecvTimeoutError::Disconnected) => {
                    // The thread exited with this file undelivered: a panic
                    // outside per-file containment or an injected kill.
                    self.declare_dead(p, DeathCause::Disconnect);
                    return Recv::Dead;
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Stall detection needs a heartbeat: progress beats come
                    // from the parser's trace spans, so "no beat AND we have
                    // been waiting for this file" past the timeout means the
                    // worker is wedged, not merely slow on one step.
                    let stalled = self.heartbeats[p]
                        .as_ref()
                        .is_some_and(|hb| hb.idle() >= stall_timeout)
                        && t_start.elapsed() >= stall_timeout;
                    if stalled {
                        let idle = self.heartbeats[p].as_ref().map(|hb| hb.idle());
                        self.declare_dead(p, DeathCause::Stall(idle.unwrap_or(stall_timeout)));
                        return Recv::Dead;
                    }
                }
            }
        }
    }
}

/// Outcome of one supervised wait on a parser buffer.
enum Recv {
    /// The expected message arrived.
    Msg(ParsedFile),
    /// The parser is dead; its slot must be re-ingested inline.
    Dead,
    /// Supervision is off and the parser disconnected — fatal.
    Fatal,
}

impl Iterator for SupervisedRoundRobin {
    type Item = Result<ParsedFile, PipelineError>;
    fn next(&mut self) -> Option<Self::Item> {
        if self.next_file >= self.num_files {
            return None;
        }
        let parser = self.next_file % self.buffers.len();
        let t_recv = Instant::now();
        let received = if self.parser_is_dead(parser) {
            Recv::Dead
        } else {
            // Clone the sink handle: the wait span must outlive the
            // (mutably borrowing) receive below.
            let trace = self.trace.clone();
            let mut wspan = trace.span(TraceKind::ParserWait);
            wspan.set_batch(self.next_file as u32);
            self.receive_or_bury(parser)
        };
        let mut msg = match received {
            Recv::Msg(msg) => msg,
            // Dead parser: its slot is re-ingested inline, preserving the
            // round-robin order (and with it docID determinism).
            Recv::Dead => self.ingest_inline(self.next_file),
            Recv::Fatal => {
                let err =
                    PipelineError::ParserDisconnected { parser, file_idx: self.next_file };
                self.next_file = self.num_files; // fuse: the stream is dead
                return Some(Err(err));
            }
        };
        let waited = t_recv.elapsed();
        if let Some(stage) = &self.queue_wait {
            stage.queue_wait_ns.add(waited.as_nanos() as u64);
        }
        debug_assert_eq!(msg.file_idx(), self.next_file, "round-robin order violated");
        msg.queue_wait_seconds = waited.as_secs_f64();
        self.next_file += 1;
        Some(Ok(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use ii_corpus::{CollectionSpec, FaultKind, FaultPlan};
    use std::path::{Path, PathBuf};

    fn stored(tag: &str, spec: CollectionSpec) -> (Arc<StoredCollection>, PathBuf) {
        let dir = std::env::temp_dir()
            .join(format!("ii-pipeline-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = StoredCollection::generate(spec, &dir).unwrap();
        (Arc::new(s), dir)
    }

    fn reopen_with(dir: &Path, plan: FaultPlan) -> Arc<StoredCollection> {
        Arc::new(StoredCollection::open(dir).unwrap().with_faults(plan))
    }

    #[test]
    fn batches_arrive_in_file_order() {
        let mut spec = CollectionSpec::tiny(31);
        spec.num_files = 7;
        let (coll, dir) = stored("order", spec);
        for num_parsers in [1usize, 2, 3] {
            let pool =
                ParserPool::spawn(Arc::clone(&coll), num_parsers, 2, FaultPolicy::default());
            let files: Vec<usize> = RoundRobin::new(&pool.buffers, coll.num_files())
                .map(|m| m.unwrap().result.unwrap().file_idx)
                .collect();
            assert_eq!(files, (0..7).collect::<Vec<_>>(), "parsers={num_parsers}");
            let timings = pool.join();
            assert_eq!(timings.iter().map(|t| t.files).sum::<usize>(), 7);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn parsed_output_independent_of_parser_count() {
        let mut spec = CollectionSpec::tiny(32);
        spec.num_files = 5;
        let (coll, dir) = stored("deterministic", spec);
        let mut outputs = Vec::new();
        for num_parsers in [1usize, 4] {
            let pool =
                ParserPool::spawn(Arc::clone(&coll), num_parsers, 2, FaultPolicy::default());
            let tokens: Vec<(usize, u64)> = RoundRobin::new(&pool.buffers, coll.num_files())
                .map(|m| {
                    let b = m.unwrap().result.unwrap();
                    (b.file_idx, b.stats.terms_kept)
                })
                .collect();
            pool.join();
            outputs.push(tokens);
        }
        assert_eq!(outputs[0], outputs[1]);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn timings_are_recorded() {
        let (coll, dir) = stored("timing", CollectionSpec::tiny(33));
        let pool = ParserPool::spawn(Arc::clone(&coll), 2, 2, FaultPolicy::default());
        let n: usize = RoundRobin::new(&pool.buffers, coll.num_files()).count();
        assert_eq!(n, coll.num_files());
        let timings = pool.join();
        let total_parse: f64 = timings.iter().map(|t| t.parse_seconds).sum();
        assert!(total_parse > 0.0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn transient_faults_are_retried_and_recovered() {
        let mut spec = CollectionSpec::tiny(34);
        spec.num_files = 4;
        let (_, dir) = stored("transient", spec);
        let plan = FaultPlan::new(1).with_fault(2, FaultKind::TransientRead { failures: 2 });
        let coll = reopen_with(&dir, plan);
        let pool = ParserPool::spawn(Arc::clone(&coll), 2, 2, FaultPolicy::default());
        let msgs: Vec<ParsedFile> = RoundRobin::new(&pool.buffers, coll.num_files())
            .map(|m| m.unwrap())
            .collect();
        assert!(msgs.iter().all(|m| m.result.is_ok()));
        assert_eq!(msgs[2].retries, 2, "file 2 needed two retries");
        assert_eq!(msgs.iter().map(|m| m.retries).sum::<u32>(), 2);
        pool.join();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn permanent_fault_occupies_its_slot_under_skip_policy() {
        let mut spec = CollectionSpec::tiny(35);
        spec.num_files = 4;
        let (_, dir) = stored("permanent", spec);
        let coll = reopen_with(&dir, FaultPlan::new(2).with_fault(1, FaultKind::Garbage));
        let pool = ParserPool::spawn(Arc::clone(&coll), 2, 2, FaultPolicy::skip_file());
        let msgs: Vec<ParsedFile> = RoundRobin::new(&pool.buffers, coll.num_files())
            .map(|m| m.unwrap())
            .collect();
        assert_eq!(msgs.len(), 4, "every file slot is accounted for");
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(m.file_idx(), i, "round-robin order preserved across the fault");
        }
        let fault = msgs[1].result.as_ref().unwrap_err();
        assert_eq!(fault.class, FaultClass::Permanent);
        assert_eq!(fault.file_idx, 1);
        assert!(msgs[3].result.is_ok(), "the faulty parser kept going");
        pool.join();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn parser_panic_is_contained() {
        let mut spec = CollectionSpec::tiny(36);
        spec.num_files = 3;
        let (_, dir) = stored("panic", spec);
        let coll = reopen_with(&dir, FaultPlan::new(3).with_fault(0, FaultKind::Panic));
        let pool = ParserPool::spawn(Arc::clone(&coll), 1, 2, FaultPolicy::skip_file());
        let msgs: Vec<ParsedFile> = RoundRobin::new(&pool.buffers, coll.num_files())
            .map(|m| m.unwrap())
            .collect();
        let fault = msgs[0].result.as_ref().unwrap_err();
        assert_eq!(fault.class, FaultClass::Panic);
        assert!(fault.error.contains("injected parser panic"), "{}", fault.error);
        assert!(msgs[1].result.is_ok() && msgs[2].result.is_ok());
        pool.join(); // must not re-raise the panic
        std::fs::remove_dir_all(dir).unwrap();
    }

    fn token_stream(
        coll: &Arc<StoredCollection>,
        options: SpawnOptions,
        stall_timeout: Duration,
    ) -> (Vec<(usize, u64)>, Vec<WorkerDeath>, u32) {
        let mut pool = ParserPool::spawn_with(
            Arc::clone(coll),
            options.heartbeats.len().max(2),
            2,
            FaultPolicy::default(),
            ParserObs::from_registry(&Registry::new()),
            options.clone(),
        );
        let mut rr = SupervisedRoundRobin::new(
            &mut pool,
            Arc::clone(coll),
            coll.num_files(),
            0,
            FaultPolicy::default(),
            ParserObs::from_registry(&Registry::new()),
            options,
            SupervisorPolicy::default().with_stall_timeout(stall_timeout),
        );
        let tokens: Vec<(usize, u64)> = (&mut rr)
            .map(|m| {
                let b = m.unwrap().result.unwrap();
                (b.file_idx, b.stats.terms_kept)
            })
            .collect();
        let deaths = rr.deaths().to_vec();
        let inline = rr.inline_parsed_files();
        drop(rr); // release the receivers so blocked parsers can exit
        pool.join();
        (tokens, deaths, inline)
    }

    #[test]
    fn supervised_consumer_survives_an_injected_parser_kill() {
        let mut spec = CollectionSpec::tiny(37);
        spec.num_files = 8;
        let (coll, dir) = stored("worker-kill", spec);
        let heartbeats = vec![Arc::new(ii_obs::Heartbeat::new()), Arc::new(ii_obs::Heartbeat::new())];
        let healthy = token_stream(
            &coll,
            SpawnOptions { heartbeats: heartbeats.clone(), ..SpawnOptions::default() },
            Duration::from_secs(30),
        );
        assert!(healthy.1.is_empty() && healthy.2 == 0, "healthy run declares no deaths");
        // Parser 1 owns files 1,3,5,7 and dies just before file 3.
        let faults = WorkerFaultPlan::none().kill(WorkerClass::Parser, 1, 3);
        let (tokens, deaths, inline) = token_stream(
            &coll,
            SpawnOptions {
                heartbeats: heartbeats.clone(),
                worker_faults: faults,
                ..SpawnOptions::default()
            },
            Duration::from_secs(30),
        );
        assert_eq!(tokens, healthy.0, "inline re-ingest is byte-identical");
        assert_eq!(deaths.len(), 1);
        assert_eq!(deaths[0].index, 1);
        assert!(matches!(deaths[0].cause, DeathCause::Disconnect), "{:?}", deaths[0].cause);
        assert_eq!(inline, 3, "files 3, 5, 7 re-ingested inline");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn supervised_consumer_declares_a_stalled_parser_dead() {
        let mut spec = CollectionSpec::tiny(38);
        spec.num_files = 6;
        let (coll, dir) = stored("worker-stall", spec);
        let heartbeats = vec![Arc::new(ii_obs::Heartbeat::new()), Arc::new(ii_obs::Heartbeat::new())];
        let healthy = token_stream(
            &coll,
            SpawnOptions { heartbeats: heartbeats.clone(), ..SpawnOptions::default() },
            Duration::from_secs(30),
        );
        // Parser 0 goes silent for 2s before its first file; the 50ms
        // watchdog declares it dead long before it wakes.
        let faults = WorkerFaultPlan::none().stall(
            WorkerClass::Parser,
            0,
            0,
            Duration::from_secs(2),
        );
        let fresh = vec![Arc::new(ii_obs::Heartbeat::new()), Arc::new(ii_obs::Heartbeat::new())];
        let (tokens, deaths, inline) = token_stream(
            &coll,
            SpawnOptions {
                heartbeats: fresh,
                worker_faults: faults,
                ..SpawnOptions::default()
            },
            Duration::from_millis(50),
        );
        assert_eq!(tokens, healthy.0, "stall takeover is byte-identical");
        assert_eq!(deaths.len(), 1);
        assert_eq!(deaths[0].index, 0);
        assert!(matches!(deaths[0].cause, DeathCause::Stall(_)), "{:?}", deaths[0].cause);
        assert_eq!(inline, 3, "files 0, 2, 4 re-ingested inline");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn early_disconnect_is_an_error_not_end_of_stream() {
        // A channel that closes with files outstanding must surface as an
        // error — this was the silent-truncation bug.
        let (tx, rx) = bounded::<ParsedFile>(1);
        drop(tx);
        let buffers = [rx];
        let mut rr = RoundRobin::new(&buffers, 3);
        match rr.next() {
            Some(Err(PipelineError::ParserDisconnected { parser: 0, file_idx: 0 })) => {}
            other => panic!("expected ParserDisconnected, got {other:?}"),
        }
        assert!(rr.next().is_none(), "iterator fuses after the error");
    }
}
