//! Parallel parsers with a serialized disk scheduler (paper §III.C, §III.F).
//!
//! "To avoid several parsers from trying to read from the same disk at the
//! same time, a scheduler is used to organize the reads of the different
//! parsers, one at a time." Parser `i` owns files `i, i+M, i+2M, ...`, so
//! consuming the parser buffers in round-robin order replays the global
//! file order and document IDs come out "intrinsically in sorted order".
//!
//! Each parser performs Step 1 (read + decompress + doc-ID table) and
//! Steps 2-5 (tokenize, stem, stop words, regroup) and pushes the parsed
//! batch into its bounded output buffer.

use crossbeam::channel::{bounded, Receiver, Sender};
use ii_corpus::{compress, container, StoredCollection};
use ii_text::{parse_documents, ParsedBatch};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Per-parser timing accumulators (read under the disk lock vs the rest).
#[derive(Clone, Copy, Debug, Default)]
pub struct ParserTiming {
    /// Seconds holding the disk (serialized reads).
    pub read_seconds: f64,
    /// Seconds decompressing in memory.
    pub decompress_seconds: f64,
    /// Seconds tokenizing/stemming/regrouping.
    pub parse_seconds: f64,
    /// Files handled.
    pub files: usize,
}

/// Handle to a running parser pool.
pub struct ParserPool {
    /// One output buffer per parser, in parser order.
    pub buffers: Vec<Receiver<ParsedBatch>>,
    handles: Vec<std::thread::JoinHandle<ParserTiming>>,
}

impl ParserPool {
    /// Spawn `num_parsers` parser threads over the collection's files.
    /// `buffer_depth` bounds each parser's output buffer, providing the
    /// back-pressure that couples the two pipeline stages.
    pub fn spawn(
        collection: Arc<StoredCollection>,
        num_parsers: usize,
        buffer_depth: usize,
    ) -> ParserPool {
        assert!(num_parsers >= 1);
        let disk = Arc::new(Mutex::new(()));
        let html = collection.manifest.spec.html;
        let num_files = collection.num_files();
        let mut buffers = Vec::with_capacity(num_parsers);
        let mut handles = Vec::with_capacity(num_parsers);
        for p in 0..num_parsers {
            let (tx, rx): (Sender<ParsedBatch>, Receiver<ParsedBatch>) =
                bounded(buffer_depth.max(1));
            let disk = Arc::clone(&disk);
            let coll = Arc::clone(&collection);
            let handle = std::thread::spawn(move || {
                let mut timing = ParserTiming::default();
                let mut file_idx = p;
                while file_idx < num_files {
                    // Step 1a: serialized read of the compressed file.
                    let raw = {
                        let _disk_token = disk.lock();
                        let t0 = Instant::now();
                        let raw = coll.read_file_raw(file_idx).expect("collection file");
                        timing.read_seconds += t0.elapsed().as_secs_f64();
                        raw
                    };
                    // Step 1b: in-memory decompression (outside the lock —
                    // the separate-step scheme of §IV.A).
                    let t0 = Instant::now();
                    let bytes = compress::decompress(&raw).expect("valid container");
                    timing.decompress_seconds += t0.elapsed().as_secs_f64();
                    // Steps 1c-5: container parse + tokenize/stem/stop/regroup.
                    let t0 = Instant::now();
                    let docs = container::parse_container(&bytes).expect("container");
                    let batch = parse_documents(&docs, html, file_idx);
                    timing.parse_seconds += t0.elapsed().as_secs_f64();
                    timing.files += 1;
                    if tx.send(batch).is_err() {
                        break; // consumer gone
                    }
                    file_idx += num_parsers;
                }
                timing
            });
            buffers.push(rx);
            handles.push(handle);
        }
        ParserPool { buffers, handles }
    }

    /// Wait for all parsers and collect their timings.
    pub fn join(self) -> Vec<ParserTiming> {
        self.handles.into_iter().map(|h| h.join().expect("parser thread")).collect()
    }
}

/// Consume the parser buffers in strict round-robin order, yielding batches
/// in global file order (the §III.F consumption rule).
pub struct RoundRobin<'a> {
    buffers: &'a [Receiver<ParsedBatch>],
    next_file: usize,
    num_files: usize,
}

impl<'a> RoundRobin<'a> {
    /// Iterate the batches of `num_files` files over `buffers`.
    pub fn new(buffers: &'a [Receiver<ParsedBatch>], num_files: usize) -> Self {
        RoundRobin { buffers, next_file: 0, num_files }
    }
}

impl<'a> Iterator for RoundRobin<'a> {
    type Item = ParsedBatch;
    fn next(&mut self) -> Option<ParsedBatch> {
        if self.next_file >= self.num_files {
            return None;
        }
        let parser = self.next_file % self.buffers.len();
        let batch = self.buffers[parser].recv().ok()?;
        debug_assert_eq!(batch.file_idx, self.next_file, "round-robin order violated");
        self.next_file += 1;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_corpus::CollectionSpec;
    use std::path::PathBuf;

    fn stored(tag: &str, spec: CollectionSpec) -> (Arc<StoredCollection>, PathBuf) {
        let dir = std::env::temp_dir()
            .join(format!("ii-pipeline-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = StoredCollection::generate(spec, &dir).unwrap();
        (Arc::new(s), dir)
    }

    #[test]
    fn batches_arrive_in_file_order() {
        let mut spec = CollectionSpec::tiny(31);
        spec.num_files = 7;
        let (coll, dir) = stored("order", spec);
        for num_parsers in [1usize, 2, 3] {
            let pool = ParserPool::spawn(Arc::clone(&coll), num_parsers, 2);
            let files: Vec<usize> =
                RoundRobin::new(&pool.buffers, coll.num_files()).map(|b| b.file_idx).collect();
            assert_eq!(files, (0..7).collect::<Vec<_>>(), "parsers={num_parsers}");
            let timings = pool.join();
            assert_eq!(timings.iter().map(|t| t.files).sum::<usize>(), 7);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn parsed_output_independent_of_parser_count() {
        let mut spec = CollectionSpec::tiny(32);
        spec.num_files = 5;
        let (coll, dir) = stored("deterministic", spec);
        let mut outputs = Vec::new();
        for num_parsers in [1usize, 4] {
            let pool = ParserPool::spawn(Arc::clone(&coll), num_parsers, 2);
            let tokens: Vec<(usize, u64)> = RoundRobin::new(&pool.buffers, coll.num_files())
                .map(|b| (b.file_idx, b.stats.terms_kept))
                .collect();
            pool.join();
            outputs.push(tokens);
        }
        assert_eq!(outputs[0], outputs[1]);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn timings_are_recorded() {
        let (coll, dir) = stored("timing", CollectionSpec::tiny(33));
        let pool = ParserPool::spawn(Arc::clone(&coll), 2, 2);
        let n: usize = RoundRobin::new(&pool.buffers, coll.num_files()).count();
        assert_eq!(n, coll.num_files());
        let timings = pool.join();
        let total_parse: f64 = timings.iter().map(|t| t.parse_seconds).sum();
        assert!(total_parse > 0.0);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
