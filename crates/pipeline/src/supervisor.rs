//! The pipeline supervisor: per-worker heartbeats, a watchdog, and the
//! degradation ledger.
//!
//! Every pipeline worker — parser threads, CPU indexer executors, GPU
//! indexers — registers a liveness beacon ([`ii_obs::Heartbeat`]) that is
//! bumped by the worker's existing trace spans, so liveness needs no new
//! instrumentation. The watchdog side (the driver thread) declares a
//! worker dead when it panics, disconnects, or stays silent past the
//! configured stall timeout; the dead worker's trie-partition shards are
//! reassigned to survivors ([`ii_indexer::IndexerPool::kill_cpu`] /
//! [`ii_indexer::IndexerPool::kill_gpu`], parser files are re-ingested
//! inline on the driver), and the build continues. Everything that
//! happened is recorded in a [`SupervisionReport`] the operator sees in
//! the build report and `ii build --stats`.

use crate::fault::WorkerClass;
use ii_obs::Heartbeat;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Why the watchdog declared a worker dead.
#[derive(Clone, Debug)]
pub enum DeathCause {
    /// The worker panicked; contained by `catch_unwind`.
    Panic(String),
    /// The worker made no progress for this long (heartbeat silence past
    /// the stall timeout).
    Stall(Duration),
    /// The worker's channel closed before it delivered all of its work.
    Disconnect,
    /// A seeded fault-injection kill (chaos testing).
    Injected,
}

impl std::fmt::Display for DeathCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeathCause::Panic(msg) => write!(f, "panic: {msg}"),
            DeathCause::Stall(d) => write!(f, "stalled for {:.1}s", d.as_secs_f64()),
            DeathCause::Disconnect => write!(f, "disconnected"),
            DeathCause::Injected => write!(f, "injected kill"),
        }
    }
}

/// One worker death, as recorded by the watchdog.
#[derive(Clone, Debug)]
pub struct WorkerDeath {
    /// Which class of worker died.
    pub class: WorkerClass,
    /// Worker index within its class.
    pub index: usize,
    /// Why the watchdog declared it dead.
    pub cause: DeathCause,
}

impl std::fmt::Display for WorkerDeath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} died ({})", self.class, self.index, self.cause)
    }
}

/// The supervisor's knobs.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorPolicy {
    /// Whether worker-death supervision (and its takeover machinery) is
    /// active. Off, a dead parser is the fatal `ParserDisconnected` error
    /// of the earlier pipeline.
    pub enabled: bool,
    /// Heartbeat silence after which a worker is declared dead. Progress
    /// beats come from the worker's trace spans (per file read /
    /// decompress / parse step), so the timeout bounds *per-step* silence,
    /// not per-file latency.
    pub stall_timeout: Duration,
    /// `recv_timeout` poll interval the supervised consumer uses between
    /// stall checks. `None` (the default) derives the historical value —
    /// `stall_timeout / 4` clamped to `[1 ms, 500 ms]` — so a tight
    /// stall timeout still polls promptly; set it explicitly to poll
    /// faster under tight memory budgets without touching the timeout.
    pub poll_interval: Option<Duration>,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            enabled: true,
            stall_timeout: Duration::from_secs(30),
            poll_interval: None,
        }
    }
}

impl SupervisorPolicy {
    /// Supervision disabled (pre-supervisor pipeline semantics).
    pub fn disabled() -> Self {
        SupervisorPolicy { enabled: false, ..SupervisorPolicy::default() }
    }

    /// Same policy with a different stall timeout.
    pub fn with_stall_timeout(mut self, d: Duration) -> Self {
        self.stall_timeout = d;
        self
    }

    /// Same policy with an explicit consumer poll interval.
    pub fn with_poll_interval(mut self, d: Duration) -> Self {
        self.poll_interval = Some(d);
        self
    }

    /// The poll interval the consumer actually uses: the explicit value
    /// when set, else `stall_timeout / 4` clamped to `[1 ms, 500 ms]` —
    /// fast enough to notice a stall promptly without busy-waiting.
    pub fn effective_poll_interval(&self) -> Duration {
        self.poll_interval.unwrap_or_else(|| {
            (self.stall_timeout / 4)
                .clamp(Duration::from_millis(1), Duration::from_millis(500))
        })
    }
}

/// Everything the supervisor did (and survived) during one build: the
/// degradation ledger surfaced in the build report, `--stats`, and
/// `--strict`.
#[derive(Clone, Debug, Default)]
pub struct SupervisionReport {
    /// Workers declared dead, in declaration order.
    pub deaths: Vec<WorkerDeath>,
    /// Shard reassignments performed (a death may move several shards).
    pub reassignments: u32,
    /// Shards salvaged off dead GPUs onto the CPU path.
    pub gpu_takeovers: u32,
    /// Files a dead parser owed that the driver re-ingested inline.
    pub inline_parsed_files: u32,
    /// Wall seconds of shard work hosted on the driver thread because no
    /// CPU executor survived.
    pub fallback_seconds: f64,
    /// Final-commit retries after retriable storage errors (disk full).
    pub commit_retries: u32,
    /// Incidents where exact work could not be preserved (a genuine
    /// mid-batch panic with unknown progress). A build with lossy
    /// incidents completed, but without the byte-identity guarantee.
    pub lossy_incidents: Vec<String>,
}

impl SupervisionReport {
    /// True when no worker died, nothing was reassigned, and no commit
    /// needed retrying.
    pub fn is_clean(&self) -> bool {
        self.deaths.is_empty()
            && self.reassignments == 0
            && self.inline_parsed_files == 0
            && self.commit_retries == 0
            && self.lossy_incidents.is_empty()
    }

    /// Worker deaths of a given class.
    pub fn deaths_of(&self, class: WorkerClass) -> usize {
        self.deaths.iter().filter(|d| d.class == class).count()
    }

    /// One-line operator summary of the degradation state.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            "all workers healthy".to_string()
        } else {
            let mut s = format!(
                "{} worker deaths ({} parser, {} cpu, {} gpu), {} shards reassigned, \
                 {} gpu→cpu takeovers, {} files re-parsed inline, {} commit retries",
                self.deaths.len(),
                self.deaths_of(WorkerClass::Parser),
                self.deaths_of(WorkerClass::CpuIndexer),
                self.deaths_of(WorkerClass::GpuIndexer),
                self.reassignments,
                self.gpu_takeovers,
                self.inline_parsed_files,
                self.commit_retries,
            );
            if !self.lossy_incidents.is_empty() {
                s.push_str(&format!(", {} LOSSY incidents", self.lossy_incidents.len()));
            }
            s
        }
    }
}

/// The watchdog's registry: one heartbeat per supervised worker plus the
/// accumulated [`SupervisionReport`]. Owned by the driver thread; the
/// heartbeats it hands out are bumped concurrently by the workers.
#[derive(Debug, Default)]
pub struct Supervisor {
    beats: HashMap<(WorkerClass, usize), Arc<Heartbeat>>,
    dead: HashMap<(WorkerClass, usize), ()>,
    /// The accumulated degradation ledger.
    pub report: SupervisionReport,
}

impl Supervisor {
    /// Empty supervisor.
    pub fn new() -> Self {
        Supervisor::default()
    }

    /// Register (or fetch) the heartbeat of worker (`class`, `index`).
    /// Hand the returned beacon to the worker's trace sink
    /// ([`ii_obs::TraceSink::with_heartbeat`]).
    pub fn register(&mut self, class: WorkerClass, index: usize) -> Arc<Heartbeat> {
        Arc::clone(self.beats.entry((class, index)).or_insert_with(|| Arc::new(Heartbeat::new())))
    }

    /// The heartbeat of (`class`, `index`), if registered.
    pub fn heartbeat(&self, class: WorkerClass, index: usize) -> Option<&Arc<Heartbeat>> {
        self.beats.get(&(class, index))
    }

    /// How long worker (`class`, `index`) has been silent (zero if never
    /// registered).
    pub fn idle(&self, class: WorkerClass, index: usize) -> Duration {
        self.beats.get(&(class, index)).map(|h| h.idle()).unwrap_or(Duration::ZERO)
    }

    /// Whether the watchdog already declared this worker dead.
    pub fn is_dead(&self, class: WorkerClass, index: usize) -> bool {
        self.dead.contains_key(&(class, index))
    }

    /// Declare a worker dead. Idempotent: the first declaration records a
    /// [`WorkerDeath`] and returns true, later ones are no-ops.
    pub fn declare_dead(&mut self, class: WorkerClass, index: usize, cause: DeathCause) -> bool {
        if self.dead.insert((class, index), ()).is_none() {
            self.report.deaths.push(WorkerDeath { class, index, cause });
            true
        } else {
            false
        }
    }

    /// Record `n` shard reassignments, `gpu` of which were GPU→CPU
    /// takeovers.
    pub fn record_reassignments(&mut self, n: u32, gpu: u32) {
        self.report.reassignments += n;
        self.report.gpu_takeovers += gpu;
    }

    /// Record a lossy incident (work that could not be preserved exactly).
    pub fn record_lossy(&mut self, detail: String) {
        self.report.lossy_incidents.push(detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deaths_are_idempotent_and_reported() {
        let mut s = Supervisor::new();
        assert!(!s.is_dead(WorkerClass::Parser, 0));
        assert!(s.declare_dead(WorkerClass::Parser, 0, DeathCause::Disconnect));
        assert!(!s.declare_dead(WorkerClass::Parser, 0, DeathCause::Injected), "idempotent");
        assert!(s.is_dead(WorkerClass::Parser, 0));
        s.declare_dead(WorkerClass::GpuIndexer, 1, DeathCause::Panic("boom".into()));
        assert_eq!(s.report.deaths.len(), 2);
        assert_eq!(s.report.deaths_of(WorkerClass::Parser), 1);
        assert_eq!(s.report.deaths_of(WorkerClass::GpuIndexer), 1);
        assert!(!s.report.is_clean());
        let sum = s.report.summary();
        assert!(sum.contains("2 worker deaths"), "{sum}");
        assert!(sum.contains("1 parser"), "{sum}");
    }

    #[test]
    fn heartbeats_register_once_and_measure_silence() {
        let mut s = Supervisor::new();
        let hb = s.register(WorkerClass::CpuIndexer, 0);
        let again = s.register(WorkerClass::CpuIndexer, 0);
        assert!(Arc::ptr_eq(&hb, &again), "one beacon per worker");
        hb.beat();
        assert!(s.idle(WorkerClass::CpuIndexer, 0) < Duration::from_secs(1));
        assert_eq!(s.idle(WorkerClass::Parser, 9), Duration::ZERO, "unregistered = never idle");
    }

    #[test]
    fn report_summary_flags_lossy_incidents() {
        let mut r = SupervisionReport::default();
        assert!(r.is_clean());
        assert_eq!(r.summary(), "all workers healthy");
        r.lossy_incidents.push("gpu-1 panicked mid-launch".into());
        assert!(!r.is_clean());
        assert!(r.summary().contains("1 LOSSY"), "{}", r.summary());
        let mut r2 = SupervisionReport { commit_retries: 2, ..Default::default() };
        assert!(!r2.is_clean(), "commit retries are a degradation signal");
        r2.commit_retries = 0;
        r2.inline_parsed_files = 3;
        assert!(!r2.is_clean());
    }

    #[test]
    fn policy_defaults_and_knobs() {
        let p = SupervisorPolicy::default();
        assert!(p.enabled);
        let off = SupervisorPolicy::disabled();
        assert!(!off.enabled);
        let quick = SupervisorPolicy::default().with_stall_timeout(Duration::from_millis(5));
        assert_eq!(quick.stall_timeout, Duration::from_millis(5));
    }

    #[test]
    fn poll_interval_derives_from_stall_timeout_unless_explicit() {
        let p = SupervisorPolicy::default();
        assert_eq!(p.poll_interval, None);
        // 30 s / 4 clamps to the 500 ms ceiling (the historical constant).
        assert_eq!(p.effective_poll_interval(), Duration::from_millis(500));
        let tight = p.with_stall_timeout(Duration::from_millis(80));
        assert_eq!(tight.effective_poll_interval(), Duration::from_millis(20));
        let tiny = tight.with_stall_timeout(Duration::from_micros(100));
        assert_eq!(tiny.effective_poll_interval(), Duration::from_millis(1), "1 ms floor");
        let explicit = SupervisorPolicy::default().with_poll_interval(Duration::from_millis(7));
        assert_eq!(explicit.effective_poll_interval(), Duration::from_millis(7));
    }
}
