//! Fault policy, classification, and reporting for the ingest pipeline.
//!
//! The paper's pipeline assumes every container reads, decompresses, and
//! parses cleanly. This module is the production-hardening layer around
//! that assumption: a [`FaultPolicy`] says how hard to retry transient
//! faults and whether a permanent fault aborts the build
//! ([`FaultAction::FailFast`]) or quarantines the file and continues
//! ([`FaultAction::SkipFile`]); a [`FaultReport`] records everything that
//! went wrong (and was survived) so the operator sees exactly which inputs
//! the index does not cover.

use std::time::Duration;

/// How a fault is classified for retry and reporting purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// An I/O fault; retrying may succeed.
    Transient,
    /// Corrupt data (bad container, decompress failure, invalid UTF-8);
    /// retrying cannot help.
    Permanent,
    /// A parser thread panicked while handling the file; contained by
    /// `catch_unwind` instead of truncating the stream.
    Panic,
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultClass::Transient => write!(f, "transient"),
            FaultClass::Permanent => write!(f, "permanent"),
            FaultClass::Panic => write!(f, "panic"),
        }
    }
}

/// Which pipeline stage observed the fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultStage {
    /// The sampling pre-pass that builds the balance plan.
    Sampling,
    /// The parallel parser stage of the streaming build.
    Parsing,
}

impl std::fmt::Display for FaultStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultStage::Sampling => write!(f, "sampling"),
            FaultStage::Parsing => write!(f, "parsing"),
        }
    }
}

/// One file's unrecovered fault: what failed, where, and after how many
/// retries.
#[derive(Clone, Debug)]
pub struct FileFault {
    /// Index of the container file that failed.
    pub file_idx: usize,
    /// Transient / permanent / panic.
    pub class: FaultClass,
    /// Failed attempts made before giving up (0 for permanent faults,
    /// which are never retried).
    pub retries: u32,
    /// Stage that observed the fault.
    pub stage: FaultStage,
    /// Human-readable cause.
    pub error: String,
}

impl std::fmt::Display for FileFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "file {} ({} fault during {}): {}",
            self.file_idx, self.class, self.stage, self.error
        )
    }
}

/// What to do when a file fails permanently (or exhausts its retries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Abort the build with a typed error naming the file.
    FailFast,
    /// Quarantine the file (drop its documents, record it in the
    /// [`FaultReport`]) and keep indexing the rest of the collection.
    SkipFile,
}

/// The pipeline's fault-handling knobs.
#[derive(Clone, Copy, Debug)]
pub struct FaultPolicy {
    /// Retry budget per file for transient faults.
    pub max_retries: u32,
    /// Base backoff between retries; doubles per attempt (capped).
    pub retry_backoff: Duration,
    /// Disposition of files that fail permanently.
    pub action: FaultAction,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            action: FaultAction::FailFast,
        }
    }
}

impl FaultPolicy {
    /// Strict policy (the default): retry transients, abort on anything
    /// unrecoverable.
    pub fn fail_fast() -> Self {
        FaultPolicy::default()
    }

    /// Lenient policy: retry transients, quarantine unrecoverable files and
    /// index everything else.
    pub fn skip_file() -> Self {
        FaultPolicy { action: FaultAction::SkipFile, ..FaultPolicy::default() }
    }

    /// Same policy with a different retry budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Exponential backoff before retry number `attempt` (1-based).
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.retry_backoff * 2u32.saturating_pow(attempt.saturating_sub(1).min(6))
    }
}

/// Everything the pipeline survived (or didn't) during one build.
#[derive(Clone, Debug, Default)]
pub struct FaultReport {
    /// Transient read attempts that failed but were later recovered.
    pub retries: u32,
    /// Files that needed at least one retry and ultimately parsed.
    pub recovered_files: u32,
    /// Files dropped from the index under [`FaultAction::SkipFile`].
    pub quarantined: Vec<FileFault>,
    /// Parser panics contained by `catch_unwind`.
    pub parser_panics: u32,
}

impl FaultReport {
    /// True when the build saw no faults at all.
    pub fn is_clean(&self) -> bool {
        self.retries == 0
            && self.recovered_files == 0
            && self.quarantined.is_empty()
            && self.parser_panics == 0
    }

    /// Indices of quarantined files, ascending.
    pub fn quarantined_files(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.quarantined.iter().map(|q| q.file_idx).collect();
        v.sort_unstable();
        v
    }

    /// One-line operator summary.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            "no faults".to_string()
        } else {
            format!(
                "{} retries, {} files recovered, {} quarantined, {} parser panics",
                self.retries,
                self.recovered_files,
                self.quarantined.len(),
                self.parser_panics
            )
        }
    }
}

/// A build-aborting pipeline error.
#[derive(Debug)]
pub enum PipelineError {
    /// A file failed unrecoverably under [`FaultAction::FailFast`].
    File(FileFault),
    /// A parser's output channel closed before it delivered all of its
    /// files — the crash-truncation case that previously looked like a
    /// clean end-of-stream.
    ParserDisconnected {
        /// Which parser's buffer closed early.
        parser: usize,
        /// The file the consumer was waiting for.
        file_idx: usize,
    },
    /// Writing a build artifact failed.
    Io(std::io::Error),
    /// The crash-safe store rejected an operation (typed: torn manifest,
    /// checksum mismatch, version skew, ...).
    Store(ii_store::StoreError),
    /// A `--resume` request cannot be honoured against the directory's
    /// checkpoint (config mismatch, different collection, or no resumable
    /// state).
    Resume(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::File(fault) => write!(f, "indexing aborted: {fault}"),
            PipelineError::ParserDisconnected { parser, file_idx } => write!(
                f,
                "parser {parser} disconnected before delivering file {file_idx} \
                 (crashed or exited early)"
            ),
            PipelineError::Io(e) => write!(f, "index artifact write failed: {e}"),
            PipelineError::Store(e) => write!(f, "index store: {e}"),
            PipelineError::Resume(why) => write!(f, "cannot resume: {why}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Io(e) => Some(e),
            PipelineError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}

impl From<ii_store::StoreError> for PipelineError {
    fn from(e: ii_store::StoreError) -> Self {
        PipelineError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = FaultPolicy::default();
        assert!(p.backoff_for(1) < p.backoff_for(3));
        // Capped: absurd attempt numbers don't overflow.
        assert_eq!(p.backoff_for(50), p.backoff_for(7));
    }

    #[test]
    fn report_summary_and_cleanliness() {
        let mut r = FaultReport::default();
        assert!(r.is_clean());
        assert_eq!(r.summary(), "no faults");
        r.retries = 2;
        r.recovered_files = 1;
        r.quarantined.push(FileFault {
            file_idx: 4,
            class: FaultClass::Permanent,
            retries: 0,
            stage: FaultStage::Parsing,
            error: "container checksum mismatch".into(),
        });
        assert!(!r.is_clean());
        assert_eq!(r.quarantined_files(), vec![4]);
        assert!(r.summary().contains("1 quarantined"));
    }

    #[test]
    fn errors_display_context() {
        let e = PipelineError::File(FileFault {
            file_idx: 7,
            class: FaultClass::Transient,
            retries: 3,
            stage: FaultStage::Parsing,
            error: "read failed: injected".into(),
        });
        let s = e.to_string();
        assert!(s.contains("file 7") && s.contains("transient"), "{s}");
        let d = PipelineError::ParserDisconnected { parser: 1, file_idx: 9 }.to_string();
        assert!(d.contains("parser 1") && d.contains("file 9"), "{d}");
    }
}
