//! Fault policy, classification, and reporting for the ingest pipeline.
//!
//! The paper's pipeline assumes every container reads, decompresses, and
//! parses cleanly. This module is the production-hardening layer around
//! that assumption: a [`FaultPolicy`] says how hard to retry transient
//! faults and whether a permanent fault aborts the build
//! ([`FaultAction::FailFast`]) or quarantines the file and continues
//! ([`FaultAction::SkipFile`]); a [`FaultReport`] records everything that
//! went wrong (and was survived) so the operator sees exactly which inputs
//! the index does not cover.

use std::time::Duration;

/// How a fault is classified for retry and reporting purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// An I/O fault; retrying may succeed.
    Transient,
    /// Corrupt data (bad container, decompress failure, invalid UTF-8);
    /// retrying cannot help.
    Permanent,
    /// A parser thread panicked while handling the file; contained by
    /// `catch_unwind` instead of truncating the stream.
    Panic,
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultClass::Transient => write!(f, "transient"),
            FaultClass::Permanent => write!(f, "permanent"),
            FaultClass::Panic => write!(f, "panic"),
        }
    }
}

/// Which pipeline stage observed the fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultStage {
    /// The sampling pre-pass that builds the balance plan.
    Sampling,
    /// The parallel parser stage of the streaming build.
    Parsing,
}

impl std::fmt::Display for FaultStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultStage::Sampling => write!(f, "sampling"),
            FaultStage::Parsing => write!(f, "parsing"),
        }
    }
}

/// One file's unrecovered fault: what failed, where, and after how many
/// retries.
#[derive(Clone, Debug)]
pub struct FileFault {
    /// Index of the container file that failed.
    pub file_idx: usize,
    /// Transient / permanent / panic.
    pub class: FaultClass,
    /// Failed attempts made before giving up (0 for permanent faults,
    /// which are never retried).
    pub retries: u32,
    /// Stage that observed the fault.
    pub stage: FaultStage,
    /// Human-readable cause.
    pub error: String,
}

impl std::fmt::Display for FileFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "file {} ({} fault during {}): {}",
            self.file_idx, self.class, self.stage, self.error
        )
    }
}

/// What to do when a file fails permanently (or exhausts its retries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Abort the build with a typed error naming the file.
    FailFast,
    /// Quarantine the file (drop its documents, record it in the
    /// [`FaultReport`]) and keep indexing the rest of the collection.
    SkipFile,
}

/// The pipeline's fault-handling knobs.
#[derive(Clone, Copy, Debug)]
pub struct FaultPolicy {
    /// Retry budget per file for transient faults.
    pub max_retries: u32,
    /// Base backoff between retries; doubles per attempt (capped).
    pub retry_backoff: Duration,
    /// Disposition of files that fail permanently.
    pub action: FaultAction,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            action: FaultAction::FailFast,
        }
    }
}

impl FaultPolicy {
    /// Strict policy (the default): retry transients, abort on anything
    /// unrecoverable.
    pub fn fail_fast() -> Self {
        FaultPolicy::default()
    }

    /// Lenient policy: retry transients, quarantine unrecoverable files and
    /// index everything else.
    pub fn skip_file() -> Self {
        FaultPolicy { action: FaultAction::SkipFile, ..FaultPolicy::default() }
    }

    /// Same policy with a different retry budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Exponential backoff before retry number `attempt` (1-based).
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.retry_backoff * 2u32.saturating_pow(attempt.saturating_sub(1).min(6))
    }

    /// Jittered backoff before retry number `attempt` (1-based): "equal
    /// jitter" over the exponential base, uniformly in
    /// `[base/2, base]`, so workers that hit the same fault at the same
    /// moment (a shared disk glitch, a full volume) don't re-stampede the
    /// resource in lockstep. Deterministic: the same `salt` (callers use
    /// the file index or commit attempt) and `attempt` always yield the
    /// same delay, keeping fault-injection replays exact.
    pub fn jittered_backoff(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.backoff_for(attempt);
        let ns = base.as_nanos() as u64;
        if ns == 0 {
            return base;
        }
        let half = ns / 2;
        let jitter = splitmix64(salt ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            % (ns - half + 1);
        Duration::from_nanos(half + jitter)
    }
}

/// SplitMix64 — the same deterministic mixer the corpus and store fault
/// harnesses seed their injections with.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which worker class a seeded worker fault targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkerClass {
    /// A parser thread.
    Parser,
    /// A CPU indexer executor.
    CpuIndexer,
    /// A GPU indexer.
    GpuIndexer,
}

impl std::fmt::Display for WorkerClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerClass::Parser => write!(f, "parser"),
            WorkerClass::CpuIndexer => write!(f, "cpu-indexer"),
            WorkerClass::GpuIndexer => write!(f, "gpu-indexer"),
        }
    }
}

/// What an injected worker fault does at its trigger point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFaultKind {
    /// The worker dies on the spot (thread exits / executor marked dead).
    Kill,
    /// The worker goes silent for the given duration without making
    /// progress — long enough and the watchdog declares it dead.
    Stall(Duration),
}

/// One scheduled worker fault: `class`/`index` pick the worker, `at` the
/// progress point where it fires — the *file index* a parser is about to
/// ingest, or the *batch ordinal* (0-based count of batches consumed) an
/// indexer is about to process. Faults fire at these clean boundaries so
/// a kill never tears a half-indexed batch, mirroring how the supervisor
/// reassigns work at batch granularity.
#[derive(Clone, Copy, Debug)]
pub struct WorkerFault {
    /// Targeted worker class.
    pub class: WorkerClass,
    /// Worker index within its class.
    pub index: usize,
    /// File index (parsers) or batch ordinal (indexers) at which to fire.
    pub at: usize,
    /// Kill or stall.
    pub kind: WorkerFaultKind,
}

/// One scheduled allocation-pressure squeeze: at batch ordinal `at` the
/// memory governor's *effective* budget shrinks to `budget_bytes`,
/// simulating a host that loses memory mid-build (a neighbour process, a
/// cgroup clamp). Squeezes fire at batch boundaries like worker faults,
/// so the degradation they provoke (early flushes, GPU sheds) lands at
/// deterministic points and replays exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetSqueeze {
    /// Batch ordinal (0-based count of batches consumed) at which the
    /// squeeze takes effect.
    pub at: usize,
    /// New effective budget in bytes (never raises the configured budget).
    pub budget_bytes: u64,
}

/// A seeded schedule of worker kills and stalls (the chaos harness for
/// the failure-domain supervisor), plus allocation-pressure squeezes for
/// the memory governor. Deliberately *excluded* from the checkpoint
/// config fingerprint, like the rest of the fault policy: the schedule
/// changes how the build executes, never what it produces.
#[derive(Clone, Debug, Default)]
pub struct WorkerFaultPlan {
    /// Scheduled faults, in no particular order.
    pub faults: Vec<WorkerFault>,
    /// Scheduled budget squeezes, in no particular order.
    pub squeezes: Vec<BudgetSqueeze>,
}

impl WorkerFaultPlan {
    /// An empty schedule (no injected worker faults).
    pub fn none() -> Self {
        WorkerFaultPlan::default()
    }

    /// True when the schedule holds no faults and no squeezes.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.squeezes.is_empty()
    }

    /// Add a kill of `class` worker `index` at progress point `at`.
    pub fn kill(mut self, class: WorkerClass, index: usize, at: usize) -> Self {
        self.faults.push(WorkerFault { class, index, at, kind: WorkerFaultKind::Kill });
        self
    }

    /// Add a stall of `class` worker `index` at progress point `at`.
    pub fn stall(mut self, class: WorkerClass, index: usize, at: usize, d: Duration) -> Self {
        self.faults.push(WorkerFault { class, index, at, kind: WorkerFaultKind::Stall(d) });
        self
    }

    /// The fault scheduled for (`class`, `index`, `at`), if any.
    pub fn fault_at(&self, class: WorkerClass, index: usize, at: usize) -> Option<WorkerFaultKind> {
        self.faults
            .iter()
            .find(|f| f.class == class && f.index == index && f.at == at)
            .map(|f| f.kind)
    }

    /// Add a budget squeeze at batch ordinal `at`.
    pub fn squeeze(mut self, at: usize, budget_bytes: u64) -> Self {
        self.squeezes.push(BudgetSqueeze { at, budget_bytes });
        self
    }

    /// The budget squeeze firing at batch ordinal `at`, if any (the
    /// tightest one wins when several are scheduled at the same ordinal).
    pub fn squeeze_at(&self, at: usize) -> Option<u64> {
        self.squeezes.iter().filter(|s| s.at == at).map(|s| s.budget_bytes).min()
    }

    /// Deterministic seeded squeeze schedule: up to `max_squeezes` budget
    /// shrinks over batch ordinals in `0..num_batches`, each landing
    /// between 25% and 100% of `base_budget`. The same seed always yields
    /// the same schedule.
    pub fn seeded_squeezes(
        mut self,
        seed: u64,
        num_batches: usize,
        base_budget: u64,
        max_squeezes: usize,
    ) -> Self {
        if num_batches == 0 || base_budget == 0 {
            return self;
        }
        let n = (splitmix64(seed ^ 0x5153_555A_455A_4551) as usize) % (max_squeezes + 1);
        for k in 0..n {
            let r = splitmix64(seed ^ (k as u64 + 1).wrapping_mul(0xE703_7ED1_A0B4_28DB));
            let at = (r as usize) % num_batches;
            // Uniform in [base/4, base]: pressure, never infeasibility.
            let frac = 25 + (r >> 16) % 76;
            let budget_bytes = (base_budget / 100).saturating_mul(frac).max(1);
            self.squeezes.push(BudgetSqueeze { at, budget_bytes });
        }
        self
    }

    /// Deterministic seeded schedule over a worker topology: up to
    /// `max_faults` kills/stalls spread over parsers (file boundaries in
    /// `0..num_files`) and indexers (batch ordinals in `0..num_files`).
    /// The same seed always yields the same schedule.
    pub fn seeded(
        seed: u64,
        num_parsers: usize,
        n_cpu: usize,
        n_gpu: usize,
        num_files: usize,
        max_faults: usize,
    ) -> Self {
        let mut plan = WorkerFaultPlan::default();
        if num_files == 0 {
            return plan;
        }
        let n_faults = (splitmix64(seed) as usize) % (max_faults + 1);
        for k in 0..n_faults {
            let r = splitmix64(seed ^ (k as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
            let classes: Vec<WorkerClass> = [
                (num_parsers > 0).then_some(WorkerClass::Parser),
                (n_cpu > 0).then_some(WorkerClass::CpuIndexer),
                (n_gpu > 0).then_some(WorkerClass::GpuIndexer),
            ]
            .into_iter()
            .flatten()
            .collect();
            if classes.is_empty() {
                break;
            }
            let class = classes[(r as usize) % classes.len()];
            let index = match class {
                WorkerClass::Parser => (r >> 8) as usize % num_parsers,
                WorkerClass::CpuIndexer => (r >> 8) as usize % n_cpu,
                WorkerClass::GpuIndexer => (r >> 8) as usize % n_gpu,
            };
            let at = (r >> 24) as usize % num_files;
            let kind = if r & 1 == 0 {
                WorkerFaultKind::Kill
            } else {
                WorkerFaultKind::Stall(Duration::from_millis(1 + (r >> 48) % 20))
            };
            plan.faults.push(WorkerFault { class, index, at, kind });
        }
        plan
    }
}

/// Everything the pipeline survived (or didn't) during one build.
#[derive(Clone, Debug, Default)]
pub struct FaultReport {
    /// Transient read attempts that failed but were later recovered.
    pub retries: u32,
    /// Files that needed at least one retry and ultimately parsed.
    pub recovered_files: u32,
    /// Files dropped from the index under [`FaultAction::SkipFile`].
    pub quarantined: Vec<FileFault>,
    /// Parser panics contained by `catch_unwind`.
    pub parser_panics: u32,
}

impl FaultReport {
    /// True when the build saw no faults at all.
    pub fn is_clean(&self) -> bool {
        self.retries == 0
            && self.recovered_files == 0
            && self.quarantined.is_empty()
            && self.parser_panics == 0
    }

    /// Indices of quarantined files, ascending.
    pub fn quarantined_files(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.quarantined.iter().map(|q| q.file_idx).collect();
        v.sort_unstable();
        v
    }

    /// One-line operator summary.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            "no faults".to_string()
        } else {
            format!(
                "{} retries, {} files recovered, {} quarantined, {} parser panics",
                self.retries,
                self.recovered_files,
                self.quarantined.len(),
                self.parser_panics
            )
        }
    }
}

/// A build-aborting pipeline error.
#[derive(Debug)]
pub enum PipelineError {
    /// A file failed unrecoverably under [`FaultAction::FailFast`].
    File(FileFault),
    /// A parser's output channel closed before it delivered all of its
    /// files — the crash-truncation case that previously looked like a
    /// clean end-of-stream.
    ParserDisconnected {
        /// Which parser's buffer closed early.
        parser: usize,
        /// The file the consumer was waiting for.
        file_idx: usize,
    },
    /// Writing a build artifact failed.
    Io(std::io::Error),
    /// The crash-safe store rejected an operation (typed: torn manifest,
    /// checksum mismatch, version skew, ...).
    Store(ii_store::StoreError),
    /// A `--resume` request cannot be honoured against the directory's
    /// checkpoint (config mismatch, different collection, or no resumable
    /// state).
    Resume(String),
    /// The memory governor exhausted its degradation ladder — runs were
    /// flushed early and every GPU shard was shed — and the resident state
    /// (dictionary arenas and minimum working set) still does not fit the
    /// budget. Raised only when no feasible configuration remains; a
    /// larger `--mem-budget` (or 0 = unlimited) is the fix.
    MemoryBudgetExceeded {
        /// The effective budget at the moment of the abort, bytes.
        budget: u64,
        /// Resident bytes the minimal configuration still needs.
        needed: u64,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::File(fault) => write!(f, "indexing aborted: {fault}"),
            PipelineError::ParserDisconnected { parser, file_idx } => write!(
                f,
                "parser {parser} disconnected before delivering file {file_idx} \
                 (crashed or exited early)"
            ),
            PipelineError::Io(e) => write!(f, "index artifact write failed: {e}"),
            PipelineError::Store(e) => write!(f, "index store: {e}"),
            PipelineError::Resume(why) => write!(f, "cannot resume: {why}"),
            PipelineError::MemoryBudgetExceeded { budget, needed } => write!(
                f,
                "memory budget exceeded: {needed} resident bytes needed after early \
                 flushes and GPU sheds, budget is {budget} (raise --mem-budget or \
                 pass 0 for unlimited)"
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Io(e) => Some(e),
            PipelineError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}

impl From<ii_store::StoreError> for PipelineError {
    fn from(e: ii_store::StoreError) -> Self {
        PipelineError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = FaultPolicy::default();
        assert!(p.backoff_for(1) < p.backoff_for(3));
        // Capped: absurd attempt numbers don't overflow.
        assert_eq!(p.backoff_for(50), p.backoff_for(7));
    }

    #[test]
    fn jittered_backoff_stays_within_equal_jitter_bounds() {
        let p = FaultPolicy::default().with_max_retries(8);
        for attempt in 1..=8u32 {
            let base = p.backoff_for(attempt);
            for salt in 0..200u64 {
                let j = p.jittered_backoff(attempt, salt);
                assert!(j >= base / 2, "attempt {attempt} salt {salt}: {j:?} < {:?}", base / 2);
                assert!(j <= base, "attempt {attempt} salt {salt}: {j:?} > {base:?}");
            }
        }
        // Deterministic: same (attempt, salt) -> same delay.
        assert_eq!(p.jittered_backoff(3, 42), p.jittered_backoff(3, 42));
        // Actually jittered: different salts must not all collapse to one
        // value (that would be synchronized retries again).
        let distinct: std::collections::HashSet<Duration> =
            (0..50).map(|s| p.jittered_backoff(4, s)).collect();
        assert!(distinct.len() > 10, "only {} distinct delays", distinct.len());
        // Zero-base policies degrade gracefully.
        let zero = FaultPolicy { retry_backoff: Duration::ZERO, ..FaultPolicy::default() };
        assert_eq!(zero.jittered_backoff(1, 7), Duration::ZERO);
    }

    #[test]
    fn worker_fault_plans_are_seeded_and_queryable() {
        let plan = WorkerFaultPlan::none()
            .kill(WorkerClass::GpuIndexer, 0, 3)
            .stall(WorkerClass::Parser, 1, 5, Duration::from_millis(50));
        assert!(!plan.is_empty());
        assert_eq!(
            plan.fault_at(WorkerClass::GpuIndexer, 0, 3),
            Some(WorkerFaultKind::Kill)
        );
        assert_eq!(
            plan.fault_at(WorkerClass::Parser, 1, 5),
            Some(WorkerFaultKind::Stall(Duration::from_millis(50)))
        );
        assert_eq!(plan.fault_at(WorkerClass::Parser, 0, 5), None);
        // Seeded generation is deterministic and respects the topology.
        let a = WorkerFaultPlan::seeded(99, 2, 1, 1, 10, 3);
        let b = WorkerFaultPlan::seeded(99, 2, 1, 1, 10, 3);
        assert_eq!(a.faults.len(), b.faults.len());
        for (x, y) in a.faults.iter().zip(&b.faults) {
            assert_eq!((x.class, x.index, x.at, x.kind), (y.class, y.index, y.at, y.kind));
        }
        let no_gpus = WorkerFaultPlan::seeded(7, 2, 2, 0, 10, 8);
        assert!(no_gpus.faults.iter().all(|f| f.class != WorkerClass::GpuIndexer));
        assert!(WorkerFaultPlan::seeded(1, 2, 1, 1, 0, 3).is_empty(), "no files, no faults");
    }

    #[test]
    fn budget_squeezes_are_seeded_bounded_and_queryable() {
        let plan = WorkerFaultPlan::none().squeeze(3, 1 << 20).squeeze(3, 1 << 18);
        assert!(!plan.is_empty(), "a squeeze-only plan is not empty");
        assert_eq!(plan.squeeze_at(3), Some(1 << 18), "tightest squeeze wins");
        assert_eq!(plan.squeeze_at(4), None);
        let base = 64 << 20;
        let a = WorkerFaultPlan::none().seeded_squeezes(11, 20, base, 4);
        let b = WorkerFaultPlan::none().seeded_squeezes(11, 20, base, 4);
        assert_eq!(a.squeezes, b.squeezes, "same seed, same schedule");
        for s in &a.squeezes {
            assert!(s.at < 20);
            assert!(s.budget_bytes >= base / 4 && s.budget_bytes <= base, "{s:?}");
        }
        assert!(
            WorkerFaultPlan::none().seeded_squeezes(5, 0, base, 4).is_empty(),
            "no batches, no squeezes"
        );
    }

    #[test]
    fn report_summary_and_cleanliness() {
        let mut r = FaultReport::default();
        assert!(r.is_clean());
        assert_eq!(r.summary(), "no faults");
        r.retries = 2;
        r.recovered_files = 1;
        r.quarantined.push(FileFault {
            file_idx: 4,
            class: FaultClass::Permanent,
            retries: 0,
            stage: FaultStage::Parsing,
            error: "container checksum mismatch".into(),
        });
        assert!(!r.is_clean());
        assert_eq!(r.quarantined_files(), vec![4]);
        assert!(r.summary().contains("1 quarantined"));
    }

    #[test]
    fn errors_display_context() {
        let e = PipelineError::File(FileFault {
            file_idx: 7,
            class: FaultClass::Transient,
            retries: 3,
            stage: FaultStage::Parsing,
            error: "read failed: injected".into(),
        });
        let s = e.to_string();
        assert!(s.contains("file 7") && s.contains("transient"), "{s}");
        let d = PipelineError::ParserDisconnected { parser: 1, file_idx: 9 }.to_string();
        assert!(d.contains("parser 1") && d.contains("file 9"), "{d}");
    }
}
