//! Auxiliary document-ID → source-file map (paper §III.F).
//!
//! "This is possible since we include an auxiliary file containing the
//! mapping of document IDs to output file names" — the structure that lets
//! a range-narrowed retrieval know which container files (and thus which
//! runs) a document window touches. One record per container file: the
//! first global doc ID it holds and its document count, plus the source
//! URL table for doc-level provenance.

use ii_corpus::DocId;
use std::io::{self, Read, Write};

/// One container file's document range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DocMapEntry {
    /// Source container file index.
    pub file_idx: u32,
    /// First global document ID in the file.
    pub first_doc: u32,
    /// Number of documents in the file.
    pub n_docs: u32,
}

/// The docID → file mapping for a whole collection.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DocMap {
    entries: Vec<DocMapEntry>,
    /// First doc ID of the next file — tracked explicitly so quarantined
    /// files can reserve an ID gap that `entries` alone cannot express.
    next_first: u32,
}

const DOCMAP_MAGIC: &[u8; 4] = b"IIDM";

impl DocMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the next file's range; files must arrive in order and
    /// ranges must be contiguous from 0 (modulo quarantine gaps).
    pub fn push_file(&mut self, file_idx: u32, n_docs: u32) {
        self.entries.push(DocMapEntry { file_idx, first_doc: self.next_first, n_docs });
        self.next_first += n_docs;
    }

    /// Record a quarantined file: an empty entry that still reserves
    /// `reserved` doc IDs, so every later file keeps the IDs a clean build
    /// would assign and [`Self::file_of`] answers `None` inside the gap.
    pub fn push_quarantined(&mut self, file_idx: u32, reserved: u32) {
        self.entries.push(DocMapEntry { file_idx, first_doc: self.next_first, n_docs: 0 });
        self.next_first += reserved;
    }

    /// End of the doc-ID space (quarantine gaps included).
    pub fn total_docs(&self) -> u32 {
        self.next_first
    }

    /// Records, in doc order.
    pub fn entries(&self) -> &[DocMapEntry] {
        &self.entries
    }

    /// Source file of a global document ID.
    pub fn file_of(&self, doc: DocId) -> Option<u32> {
        let i = self.entries.partition_point(|e| e.first_doc + e.n_docs <= doc.0);
        let e = self.entries.get(i)?;
        (doc.0 >= e.first_doc).then_some(e.file_idx)
    }

    /// Files whose doc range overlaps `[lo, hi]` — the pre-filter for
    /// range-narrowed retrieval.
    pub fn files_overlapping(&self, lo: DocId, hi: DocId) -> Vec<u32> {
        self.entries
            .iter()
            .filter(|e| e.first_doc <= hi.0 && e.first_doc + e.n_docs > lo.0)
            .map(|e| e.file_idx)
            .collect()
    }

    /// Serialize. The record block is followed by a `next_first` trailer so
    /// a quarantine gap after the last file survives the round-trip; old
    /// readers consumed exactly `n` records and ignore trailing bytes, so
    /// the extension is compatible in both directions.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(DOCMAP_MAGIC)?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for e in &self.entries {
            w.write_all(&e.file_idx.to_le_bytes())?;
            w.write_all(&e.first_doc.to_le_bytes())?;
            w.write_all(&e.n_docs.to_le_bytes())?;
        }
        w.write_all(&self.next_first.to_le_bytes())?;
        Ok(())
    }

    /// Deserialize. Files without the `next_first` trailer (the legacy
    /// layout) derive it from the last entry, losing only a quarantine gap
    /// after the final file — which lookups cannot distinguish anyway.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<DocMap> {
        let mut head = [0u8; 8];
        r.read_exact(&mut head)?;
        if &head[..4] != DOCMAP_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad docmap magic"));
        }
        let n = u32::from_le_bytes(head[4..].try_into().unwrap()) as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let mut rec = [0u8; 12];
            r.read_exact(&mut rec)?;
            entries.push(DocMapEntry {
                file_idx: u32::from_le_bytes(rec[0..4].try_into().unwrap()),
                first_doc: u32::from_le_bytes(rec[4..8].try_into().unwrap()),
                n_docs: u32::from_le_bytes(rec[8..12].try_into().unwrap()),
            });
        }
        let mut trailer = [0u8; 4];
        let next_first = match r.read_exact(&mut trailer) {
            Ok(()) => u32::from_le_bytes(trailer),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                entries.last().map_or(0, |e: &DocMapEntry| e.first_doc + e.n_docs)
            }
            Err(e) => return Err(e),
        };
        Ok(DocMap { entries, next_first })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(counts: &[u32]) -> DocMap {
        let mut m = DocMap::new();
        for (i, &n) in counts.iter().enumerate() {
            m.push_file(i as u32, n);
        }
        m
    }

    #[test]
    fn contiguous_ranges() {
        let m = map(&[3, 5, 2]);
        assert_eq!(m.total_docs(), 10);
        assert_eq!(m.file_of(DocId(0)), Some(0));
        assert_eq!(m.file_of(DocId(2)), Some(0));
        assert_eq!(m.file_of(DocId(3)), Some(1));
        assert_eq!(m.file_of(DocId(7)), Some(1));
        assert_eq!(m.file_of(DocId(8)), Some(2));
        assert_eq!(m.file_of(DocId(9)), Some(2));
        assert_eq!(m.file_of(DocId(10)), None);
    }

    #[test]
    fn empty_file_handled() {
        let m = map(&[2, 0, 3]);
        assert_eq!(m.file_of(DocId(2)), Some(2));
        assert_eq!(m.total_docs(), 5);
    }

    #[test]
    fn overlap_query() {
        let m = map(&[4, 4, 4]);
        assert_eq!(m.files_overlapping(DocId(0), DocId(3)), vec![0]);
        assert_eq!(m.files_overlapping(DocId(3), DocId(4)), vec![0, 1]);
        assert_eq!(m.files_overlapping(DocId(5), DocId(20)), vec![1, 2]);
        assert!(m.files_overlapping(DocId(50), DocId(60)).is_empty());
    }

    #[test]
    fn serialization_roundtrip() {
        let m = map(&[7, 1, 9, 0, 2]);
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        assert_eq!(DocMap::read_from(&mut buf.as_slice()).unwrap(), m);
        buf[0] = b'X';
        assert!(DocMap::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn trailing_quarantine_gap_survives_roundtrip() {
        let mut m = map(&[3, 2]);
        m.push_quarantined(2, 4);
        assert_eq!(m.total_docs(), 9);
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        let back = DocMap::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_docs(), 9, "gap after the last file preserved");
        // Legacy layout (no trailer): the gap degrades to the last entry's
        // end, everything else intact.
        buf.truncate(buf.len() - 4);
        let legacy = DocMap::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(legacy.entries(), m.entries());
        assert_eq!(legacy.total_docs(), 5);
    }

    #[test]
    fn empty_map() {
        let m = DocMap::new();
        assert_eq!(m.total_docs(), 0);
        assert_eq!(m.file_of(DocId(0)), None);
    }
}
