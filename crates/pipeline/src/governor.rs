//! The memory-budget governor: end-to-end byte accounting and adaptive
//! backpressure (the paper's flush-when-full discipline, §III.F).
//!
//! The source system builds inverted files under a *fixed memory budget*:
//! partial runs are flushed when memory fills and merged hierarchically.
//! This module makes that budget explicit. A [`MemoryGovernor`] tracks
//! live bytes across every stage of the pipeline — in-flight parsed
//! batches (parser scratch, recycler pool, and bounded queues), per-shard
//! dictionary arenas, pending postings, and simulated-GPU device state —
//! against a hard budget (`--mem-budget`; 0 = unlimited), and degrades
//! gracefully and *deterministically* under pressure:
//!
//! 1. **Backpressure** — parsers must acquire byte credits from a bounded
//!    gate before a batch enters the in-flight queues; blocked time is
//!    attributed to [`TraceKind::MemoryWait`], distinct from queue-wait.
//! 2. **Adaptive run sizing** — the driver flushes runs early when
//!    resident postings cross the budget's flush watermark. Run
//!    boundaries land in the checkpoint/manifest and merges are
//!    associative, so the output stays byte-identical (dictionary) and
//!    logically identical (postings) to any other budget.
//! 3. **Shed** — under sustained pressure the pool parks GPU shards onto
//!    the CPU salvage path and continues CPU-only.
//! 4. **Typed abort** — [`PipelineError::MemoryBudgetExceeded`] fires
//!    only when even the minimal configuration cannot fit.
//!
//! The budget splits statically: the credit gate admits at most ¼ of the
//! effective budget of in-flight batch bytes, leaving ¾ for resident
//! state. The gate is accounted per parser and always admits a parser
//! with nothing outstanding — the one the in-order consumer is waiting
//! on — so backpressure can never deadlock the pipeline; each parser may
//! overshoot the gate by at most one batch. Every pressure decision keys on
//! *deterministic* quantities (arena sizes and pending-posting counts at
//! batch boundaries — never wall-clock or queue timing), so a given
//! `(budget, squeeze schedule)` replays exactly.
//!
//! [`PipelineError::MemoryBudgetExceeded`]: crate::fault::PipelineError::MemoryBudgetExceeded

use ii_obs::{TraceKind, TraceSink};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sentinel for "no budget" in the effective-budget atomic.
const UNLIMITED: u64 = u64::MAX;

/// The governor's knobs, carried on the pipeline configuration. All of
/// them change *run boundaries* (not logical output), so they are part of
/// the checkpoint config fingerprint: resuming under different governor
/// knobs is refused rather than risking a byte-divergent resume.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GovernorPolicy {
    /// Hard memory budget in bytes; 0 disables the governor's limits
    /// (accounting still runs, so high-water marks are always measured).
    pub budget_bytes: u64,
    /// Fraction of the resident share at which runs are flushed early
    /// (the flush-when-full watermark).
    pub flush_watermark: f64,
    /// Fraction of the resident share at which, when an early flush was
    /// not enough, GPU shards are shed onto the CPU salvage path.
    pub shed_watermark: f64,
}

impl Default for GovernorPolicy {
    fn default() -> Self {
        GovernorPolicy {
            budget_bytes: 512 << 20,
            flush_watermark: 0.5,
            shed_watermark: 0.85,
        }
    }
}

impl GovernorPolicy {
    /// No budget: accounting only.
    pub fn unlimited() -> Self {
        GovernorPolicy { budget_bytes: 0, ..GovernorPolicy::default() }
    }

    /// A policy with the given hard budget (0 = unlimited).
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.budget_bytes = bytes;
        self
    }
}

/// Live byte accounting per pool, as last probed by the driver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolBytes {
    /// Dictionary arenas (slotted nodes + string remainders + trie roots)
    /// across CPU shards and adopted continuations.
    pub dict: u64,
    /// Pending (un-flushed) postings across CPU shards and adopted
    /// continuations.
    pub postings: u64,
    /// Simulated-GPU device memory in use across live GPUs.
    pub device: u64,
}

impl PoolBytes {
    /// Total resident bytes.
    pub fn total(&self) -> u64 {
        self.dict + self.postings + self.device
    }
}

/// Per-parser credit ledger behind the gate mutex. The split matters for
/// liveness: the driver consumes batches in *file order*, so the parser it
/// is waiting on is always the one whose oldest file has not been sent —
/// a parser with **zero outstanding credit**. Admitting such a parser
/// unconditionally (even over a full gate) means the consumer's next
/// batch always arrives, the gate drains, and the pipeline cannot wedge
/// with credit parked on queued batches the driver will not take yet.
/// Each parser can overshoot the gate by at most one batch, so the
/// in-flight bound is `capacity + num_parsers × max_batch` — still O(1)
/// per worker, and the accounting (not the cap) feeds the high-water mark.
#[derive(Default)]
struct GateState {
    /// Total bytes out on credit across all parsers.
    total: u64,
    /// Outstanding bytes per parser index (grown on demand).
    per: Vec<u64>,
}

impl GateState {
    fn held(&self, parser: usize) -> u64 {
        self.per.get(parser).copied().unwrap_or(0)
    }
}

struct GovernorShared {
    policy: GovernorPolicy,
    /// Effective budget: starts at `policy.budget_bytes` (or
    /// [`UNLIMITED`]) and only ever shrinks (squeezes).
    effective: AtomicU64,
    /// Bytes currently out on credit (in-flight parsed batches), guarded
    /// by the gate mutex so waiters can sleep on the condvar.
    gate: Mutex<GateState>,
    cv: Condvar,
    closed: AtomicBool,
    // Accounting (gauges + counters surfaced via `governor.*`).
    dict_bytes: AtomicU64,
    postings_bytes: AtomicU64,
    device_bytes: AtomicU64,
    inflight_bytes: AtomicU64,
    high_water: AtomicU64,
    credit_waits: AtomicU64,
    credit_wait_ns: AtomicU64,
    early_flushes: AtomicU64,
    gpu_sheds: AtomicU64,
    squeezes: AtomicU64,
}

/// The pipeline's memory accountant. Clone-able; clones share state, so
/// the driver, every parser thread, and the stats renderer all see one
/// ledger. All methods are thread-safe.
#[derive(Clone)]
pub struct MemoryGovernor {
    inner: Arc<GovernorShared>,
}

impl std::fmt::Debug for MemoryGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryGovernor")
            .field("policy", &self.inner.policy)
            .field("effective", &self.effective_budget())
            .field("resident", &self.resident().total())
            .field("inflight", &self.inflight_bytes())
            .field("high_water", &self.high_water())
            .finish()
    }
}

impl Default for MemoryGovernor {
    fn default() -> Self {
        MemoryGovernor::new(GovernorPolicy::unlimited())
    }
}

impl MemoryGovernor {
    /// A governor enforcing `policy`.
    pub fn new(policy: GovernorPolicy) -> Self {
        let effective =
            if policy.budget_bytes == 0 { UNLIMITED } else { policy.budget_bytes };
        MemoryGovernor {
            inner: Arc::new(GovernorShared {
                policy,
                effective: AtomicU64::new(effective),
                gate: Mutex::new(GateState::default()),
                cv: Condvar::new(),
                closed: AtomicBool::new(false),
                dict_bytes: AtomicU64::new(0),
                postings_bytes: AtomicU64::new(0),
                device_bytes: AtomicU64::new(0),
                inflight_bytes: AtomicU64::new(0),
                high_water: AtomicU64::new(0),
                credit_waits: AtomicU64::new(0),
                credit_wait_ns: AtomicU64::new(0),
                early_flushes: AtomicU64::new(0),
                gpu_sheds: AtomicU64::new(0),
                squeezes: AtomicU64::new(0),
            }),
        }
    }

    /// A governor with no budget (accounting only).
    pub fn unlimited() -> Self {
        MemoryGovernor::new(GovernorPolicy::unlimited())
    }

    /// The policy this governor was built with.
    pub fn policy(&self) -> &GovernorPolicy {
        &self.inner.policy
    }

    /// Whether a hard budget is currently in force.
    pub fn is_limited(&self) -> bool {
        self.inner.effective.load(Relaxed) != UNLIMITED
    }

    /// The effective budget in bytes (0 when unlimited). Starts at the
    /// configured budget, shrinks under injected squeezes.
    pub fn effective_budget(&self) -> u64 {
        match self.inner.effective.load(Relaxed) {
            UNLIMITED => 0,
            b => b,
        }
    }

    /// In-flight credit-gate capacity: ¼ of the effective budget.
    fn gate_capacity(&self) -> u64 {
        match self.inner.effective.load(Relaxed) {
            UNLIMITED => UNLIMITED,
            b => (b / 4).max(1),
        }
    }

    /// The share of the budget resident state (dictionaries, pending
    /// postings, device memory) may use: budget minus the credit gate.
    pub fn resident_budget(&self) -> u64 {
        match self.inner.effective.load(Relaxed) {
            UNLIMITED => UNLIMITED,
            b => b - (b / 4).max(1).min(b),
        }
    }

    /// Shrink the effective budget to `bytes` (a seeded allocation-
    /// pressure squeeze). Never raises the budget; `bytes == 0` is
    /// ignored (a squeeze cannot *remove* the budget).
    pub fn squeeze_to(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut cur = self.inner.effective.load(Relaxed);
        while bytes < cur {
            match self.inner.effective.compare_exchange(cur, bytes, Relaxed, Relaxed) {
                Ok(_) => {
                    self.inner.squeezes.fetch_add(1, Relaxed);
                    // Capacity shrank: wake waiters so they re-evaluate
                    // (they will simply keep waiting under the new limit).
                    self.inner.cv.notify_all();
                    return;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Blocking byte-credit acquire (`parser`'s thread, before sending a
    /// batch downstream). Returns once the gate admits `bytes` of
    /// in-flight payload. A parser with **no outstanding credit** is
    /// admitted unconditionally: the driver consumes batches in file
    /// order, so the parser it is waiting on has, by construction, nothing
    /// in flight — blocking it while other parsers' queued batches hold
    /// the gate's credit would deadlock the pipeline until the watchdog
    /// shot an innocent thread. (This also admits a batch larger than the
    /// whole gate, degrading to serial operation.) Blocked time is
    /// recorded as a [`TraceKind::MemoryWait`] span on `sink` and in the
    /// `governor.credit_waits` / `credit_wait_ns` counters; the wait loop
    /// keeps beating `sink`'s heartbeat so backpressure is never mistaken
    /// for a stalled worker.
    pub fn acquire(&self, parser: usize, bytes: u64, sink: &TraceSink) {
        if bytes == 0 {
            // Fault messages carry no payload; they must never block
            // (the gate can legitimately sit over capacity after an
            // unconditional admission).
            return;
        }
        let inner = &*self.inner;
        let mut gate = inner.gate.lock().unwrap();
        if gate.held(parser) > 0 && gate.total.saturating_add(bytes) > self.gate_capacity() {
            inner.credit_waits.fetch_add(1, Relaxed);
            let span = sink.span(TraceKind::MemoryWait);
            let t0 = Instant::now();
            while !inner.closed.load(Relaxed)
                && gate.held(parser) > 0
                && gate.total.saturating_add(bytes) > self.gate_capacity()
            {
                // Timed wait: a driver that tears down without draining
                // (error paths) closes the gate, and the timeout bounds
                // the window in which a waiter could miss that signal.
                let (g, _) = inner.cv.wait_timeout(gate, Duration::from_millis(20)).unwrap();
                gate = g;
                sink.beat();
            }
            inner.credit_wait_ns.fetch_add(t0.elapsed().as_nanos() as u64, Relaxed);
            drop(span);
        }
        if gate.per.len() <= parser {
            gate.per.resize(parser + 1, 0);
        }
        gate.per[parser] = gate.per[parser].saturating_add(bytes);
        gate.total = gate.total.saturating_add(bytes);
        let now_out = gate.total;
        drop(gate);
        inner.inflight_bytes.store(now_out, Relaxed);
        self.bump_high_water(now_out);
    }

    /// Return `parser`'s credit for `bytes` (driver side, when a batch's
    /// memory is recycled). Clamped to what that parser actually holds: a
    /// batch the driver re-ingested inline (its parser died) never
    /// acquired credit, and over-returning must not corrupt the ledger.
    pub fn release(&self, parser: usize, bytes: u64) {
        let mut gate = self.inner.gate.lock().unwrap();
        let returned = gate.held(parser).min(bytes);
        if let Some(held) = gate.per.get_mut(parser) {
            *held -= returned;
        }
        gate.total = gate.total.saturating_sub(returned);
        self.inner.inflight_bytes.store(gate.total, Relaxed);
        drop(gate);
        self.inner.cv.notify_all();
    }

    /// Close the gate: wake every waiter and admit everything. Called on
    /// build teardown (success or error) so parser threads never stay
    /// parked on the credit gate after the consumer is gone.
    pub fn close(&self) {
        self.inner.closed.store(true, Relaxed);
        self.inner.cv.notify_all();
    }

    /// Record a driver-side probe of the resident pools (taken at batch
    /// boundaries, where the figures are deterministic).
    pub fn note_resident(&self, pools: PoolBytes) {
        self.inner.dict_bytes.store(pools.dict, Relaxed);
        self.inner.postings_bytes.store(pools.postings, Relaxed);
        self.inner.device_bytes.store(pools.device, Relaxed);
        let total = pools.total() + self.inner.inflight_bytes.load(Relaxed);
        self.bump_high_water(total);
    }

    fn bump_high_water(&self, candidate: u64) {
        let resident = self.resident().total();
        let inflight = self.inner.inflight_bytes.load(Relaxed);
        let v = candidate.max(resident + inflight);
        self.inner.high_water.fetch_max(v, Relaxed);
    }

    /// The last probed per-pool resident bytes.
    pub fn resident(&self) -> PoolBytes {
        PoolBytes {
            dict: self.inner.dict_bytes.load(Relaxed),
            postings: self.inner.postings_bytes.load(Relaxed),
            device: self.inner.device_bytes.load(Relaxed),
        }
    }

    /// Bytes currently out on in-flight batch credit.
    pub fn inflight_bytes(&self) -> u64 {
        self.inner.inflight_bytes.load(Relaxed)
    }

    /// Most bytes ever simultaneously live (resident + in-flight).
    pub fn high_water(&self) -> u64 {
        self.inner.high_water.load(Relaxed)
    }

    /// Rung 2 of the ladder: should the driver flush the current run
    /// early? True when resident state crossed the flush watermark and
    /// there are pending postings to flush.
    pub fn should_flush_early(&self) -> bool {
        if !self.is_limited() {
            return false;
        }
        let r = self.resident();
        r.postings > 0
            && r.total() as f64
                > self.inner.policy.flush_watermark * self.resident_budget() as f64
    }

    /// Rung 3: should the pool shed a GPU shard? True when, *after*
    /// flushing, resident state still sits above the shed watermark.
    pub fn should_shed(&self) -> bool {
        self.is_limited()
            && self.resident().total() as f64
                > self.inner.policy.shed_watermark * self.resident_budget() as f64
    }

    /// Rung 4: the ladder is exhausted — resident state alone no longer
    /// fits the resident share of the budget. Returns `(budget, needed)`
    /// for the typed abort.
    pub fn budget_exceeded(&self) -> Option<(u64, u64)> {
        if !self.is_limited() {
            return None;
        }
        let needed = self.resident().total();
        (needed > self.resident_budget()).then(|| (self.effective_budget(), needed))
    }

    /// Count one early (watermark-triggered) run flush.
    pub fn record_early_flush(&self) {
        self.inner.early_flushes.fetch_add(1, Relaxed);
    }

    /// Count one GPU shard shed onto the CPU salvage path.
    pub fn record_shed(&self) {
        self.inner.gpu_sheds.fetch_add(1, Relaxed);
    }

    /// Times a parser blocked on the credit gate.
    pub fn credit_waits(&self) -> u64 {
        self.inner.credit_waits.load(Relaxed)
    }

    /// Total nanoseconds parsers spent blocked on the credit gate.
    pub fn credit_wait_ns(&self) -> u64 {
        self.inner.credit_wait_ns.load(Relaxed)
    }

    /// Early flushes triggered by the watermark.
    pub fn early_flushes(&self) -> u64 {
        self.inner.early_flushes.load(Relaxed)
    }

    /// GPU shards shed under memory pressure.
    pub fn gpu_sheds(&self) -> u64 {
        self.inner.gpu_sheds.load(Relaxed)
    }

    /// Budget squeezes applied.
    pub fn squeezes(&self) -> u64 {
        self.inner.squeezes.load(Relaxed)
    }

    /// Export the ledger into a metrics registry as `governor.*` gauges
    /// and counters (the `--stats` / `--stats-json` surface).
    pub fn export(&self, registry: &ii_obs::Registry) {
        let r = self.resident();
        registry.gauge("governor.budget_bytes").set(self.inner.policy.budget_bytes as i64);
        registry.gauge("governor.effective_budget_bytes").set(self.effective_budget() as i64);
        registry.gauge("governor.dict_bytes").set(r.dict as i64);
        registry.gauge("governor.postings_bytes").set(r.postings as i64);
        registry.gauge("governor.device_bytes").set(r.device as i64);
        registry.gauge("governor.inflight_bytes").set(self.inflight_bytes() as i64);
        registry.gauge("governor.high_water_bytes").set(self.high_water() as i64);
        registry.counter("governor.credit_waits").add(self.credit_waits());
        registry.counter("governor.credit_wait_ns").add(self.credit_wait_ns());
        registry.counter("governor.early_flushes").add(self.early_flushes());
        registry.counter("governor.gpu_sheds").add(self.gpu_sheds());
        registry.counter("governor.squeezes").add(self.squeezes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn unlimited_governor_accounts_but_never_blocks() {
        let g = MemoryGovernor::unlimited();
        assert!(!g.is_limited());
        assert_eq!(g.effective_budget(), 0);
        let sink = TraceSink::disabled();
        g.acquire(0, 10 << 20, &sink);
        g.acquire(1, 10 << 20, &sink);
        assert_eq!(g.inflight_bytes(), 20 << 20);
        g.note_resident(PoolBytes { dict: 1 << 20, postings: 2 << 20, device: 3 << 20 });
        assert_eq!(g.resident().total(), 6 << 20);
        assert_eq!(g.high_water(), 26 << 20);
        assert!(!g.should_flush_early());
        assert!(!g.should_shed());
        assert!(g.budget_exceeded().is_none());
        assert_eq!(g.credit_waits(), 0);
        g.release(0, 10 << 20);
        g.release(1, 10 << 20);
        assert_eq!(g.inflight_bytes(), 0);
        assert_eq!(g.high_water(), 26 << 20, "high water is sticky");
    }

    #[test]
    fn credit_gate_blocks_until_release_and_counts_waits() {
        let g = MemoryGovernor::new(GovernorPolicy::default().with_budget(400));
        // Gate capacity = 100 bytes. Parser 0's first 60 passes; its
        // second 60 must wait (it already has a batch in flight).
        let sink = TraceSink::disabled();
        g.acquire(0, 60, &sink);
        let g2 = g.clone();
        let (tx, rx) = mpsc::channel();
        let t = thread::spawn(move || {
            g2.acquire(0, 60, &TraceSink::disabled());
            tx.send(()).unwrap();
        });
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "second acquire must block while the gate is over capacity"
        );
        g.release(0, 60);
        rx.recv_timeout(Duration::from_secs(5)).expect("release unblocks the waiter");
        t.join().unwrap();
        assert_eq!(g.credit_waits(), 1);
        assert!(g.credit_wait_ns() > 0);
        assert_eq!(g.inflight_bytes(), 60);
    }

    #[test]
    fn parser_with_no_outstanding_credit_is_always_admitted() {
        // Regression: the driver consumes in file order. Parser 1's queued
        // batch holds the whole gate while the driver waits on parser 0 —
        // blocking parser 0 here deadlocked the pipeline until the
        // watchdog declared it stalled (a ~30s wall per build).
        let g = MemoryGovernor::new(GovernorPolicy::default().with_budget(400));
        let sink = TraceSink::disabled();
        g.acquire(1, 95, &sink); // parser 1 fills the 100-byte gate
        g.acquire(0, 80, &sink); // parser 0 holds nothing: must not block
        assert_eq!(g.inflight_bytes(), 175);
        assert_eq!(g.credit_waits(), 0, "the laggard parser never waits");
        // Releasing an inline-parsed batch (its parser never acquired)
        // must not corrupt another parser's ledger.
        g.release(2, 1000);
        assert_eq!(g.inflight_bytes(), 175);
        g.release(0, 80);
        g.release(1, 95);
        assert_eq!(g.inflight_bytes(), 0);
    }

    #[test]
    fn blocked_acquire_keeps_beating_the_heartbeat() {
        let g = MemoryGovernor::new(GovernorPolicy::default().with_budget(400));
        g.acquire(0, 90, &TraceSink::disabled());
        let hb = Arc::new(ii_obs::Heartbeat::new());
        let sink = TraceSink::disabled().with_heartbeat(Arc::clone(&hb));
        let before = hb.beats();
        let g2 = g.clone();
        let t = thread::spawn(move || g2.acquire(0, 90, &sink));
        thread::sleep(Duration::from_millis(120));
        assert!(
            hb.beats() > before,
            "a parser parked on the credit gate must keep proving liveness"
        );
        g.release(0, 90);
        t.join().unwrap();
    }

    #[test]
    fn oversize_batch_is_admitted_alone() {
        let g = MemoryGovernor::new(GovernorPolicy::default().with_budget(400));
        let sink = TraceSink::disabled();
        // 250 > the 100-byte gate, but this parser holds nothing: admit it
        // rather than deadlock.
        g.acquire(0, 250, &sink);
        assert_eq!(g.inflight_bytes(), 250);
        g.release(0, 250);
        assert_eq!(g.inflight_bytes(), 0);
    }

    #[test]
    fn close_unblocks_waiters() {
        let g = MemoryGovernor::new(GovernorPolicy::default().with_budget(400));
        g.acquire(0, 90, &TraceSink::disabled());
        let g2 = g.clone();
        let t = thread::spawn(move || g2.acquire(0, 90, &TraceSink::disabled()));
        thread::sleep(Duration::from_millis(20));
        g.close();
        t.join().expect("closed gate admits everyone");
    }

    #[test]
    fn ladder_rungs_trigger_in_order() {
        let g = MemoryGovernor::new(GovernorPolicy {
            budget_bytes: 1000,
            flush_watermark: 0.5,
            shed_watermark: 0.85,
        });
        // Resident share = 1000 - 250 = 750.
        assert_eq!(g.resident_budget(), 750);
        g.note_resident(PoolBytes { dict: 100, postings: 100, device: 0 });
        assert!(!g.should_flush_early());
        g.note_resident(PoolBytes { dict: 200, postings: 300, device: 0 });
        assert!(g.should_flush_early(), "500 > 0.5 * 750 is false; 500 > 375");
        assert!(!g.should_shed());
        g.note_resident(PoolBytes { dict: 200, postings: 0, device: 480 });
        assert!(!g.should_flush_early(), "nothing pending to flush");
        assert!(g.should_shed(), "680 > 0.85 * 750 = 637.5");
        assert!(g.budget_exceeded().is_none());
        g.note_resident(PoolBytes { dict: 800, postings: 0, device: 0 });
        assert_eq!(g.budget_exceeded(), Some((1000, 800)));
    }

    #[test]
    fn squeeze_only_shrinks_and_is_counted() {
        let g = MemoryGovernor::new(GovernorPolicy::default().with_budget(1000));
        g.squeeze_to(2000);
        assert_eq!(g.effective_budget(), 1000, "squeeze never raises");
        assert_eq!(g.squeezes(), 0);
        g.squeeze_to(600);
        assert_eq!(g.effective_budget(), 600);
        g.squeeze_to(600);
        assert_eq!(g.squeezes(), 1, "equal squeeze is a no-op");
        g.squeeze_to(0);
        assert_eq!(g.effective_budget(), 600, "zero squeeze ignored");
        // An unlimited governor can be squeezed into a limited one.
        let u = MemoryGovernor::unlimited();
        u.squeeze_to(512);
        assert!(u.is_limited());
        assert_eq!(u.effective_budget(), 512);
    }

    #[test]
    fn export_writes_governor_metrics() {
        let g = MemoryGovernor::new(GovernorPolicy::default().with_budget(4096));
        g.acquire(0, 100, &TraceSink::disabled());
        g.note_resident(PoolBytes { dict: 10, postings: 20, device: 30 });
        g.record_early_flush();
        g.record_shed();
        let r = ii_obs::Registry::new();
        g.export(&r);
        let snap = r.snapshot();
        assert_eq!(snap.gauges.get("governor.budget_bytes"), Some(&4096));
        assert_eq!(snap.gauges.get("governor.high_water_bytes"), Some(&160));
        assert_eq!(snap.counters.get("governor.early_flushes"), Some(&1));
        assert_eq!(snap.counters.get("governor.gpu_sheds"), Some(&1));
        let json = snap.to_json();
        assert!(json.contains("governor.credit_waits"), "{json}");
    }
}
