//! # ii-pipeline — the pipelined parallel indexing system (paper Fig 9)
//!
//! Parallel parsers with a serialized disk scheduler feed bounded buffers
//! that CPU and GPU indexers drain in strict round-robin order, preserving
//! global document order; `build_index` drives the whole system and emits
//! Table VI-style timing plus per-file Fig 11 detail.

#![warn(missing_docs)]

pub mod docmap;
pub mod driver;
pub mod parsers;

pub use docmap::{DocMap, DocMapEntry};
pub use driver::{build_index, sample_plan, FileTiming, IndexOutput, PipelineConfig, PipelineReport};
pub use parsers::{ParserPool, ParserTiming, RoundRobin};
