//! # ii-pipeline — the pipelined parallel indexing system (paper Fig 9)
//!
//! Parallel parsers with a serialized disk scheduler feed bounded buffers
//! that CPU and GPU indexers drain in strict round-robin order, preserving
//! global document order; `build_index` drives the whole system and emits
//! Table VI-style timing plus per-file Fig 11 detail.
//!
//! The pipeline is fault-tolerant: a [`FaultPolicy`] governs transient-read
//! retries and whether corrupt files abort the build or are quarantined,
//! and every build's [`PipelineReport`] carries a [`FaultReport`] of what
//! was retried, recovered, quarantined, or contained.
//!
//! It is also crash-safe: [`build_index_durable`] commits sealed runs, the
//! doc map, and per-indexer dictionary shards through the ii-store
//! atomic-commit protocol at run-boundary checkpoints, and
//! `DurableOptions::resume` continues an interrupted build byte-identically
//! from its last committed checkpoint.
//!
//! And it survives its own workers: a [`Supervisor`] watches per-worker
//! heartbeats fed from trace spans, declares panicked/stalled/disconnected
//! workers dead, reassigns their trie-partition shards to survivors (GPU
//! shards degrade gracefully to the CPU path, byte-identically), and the
//! [`SupervisionReport`] in every build report says exactly what degraded.
//!
//! Finally, it runs to a hard memory budget: a [`MemoryGovernor`] accounts
//! live bytes across every stage against `--mem-budget` and degrades
//! deterministically — parser backpressure, early run flushes, GPU
//! shedding — before the typed
//! [`PipelineError::MemoryBudgetExceeded`] abort.

#![warn(missing_docs)]

pub mod breakdown;
pub mod checkpoint;
pub mod docmap;
pub mod driver;
pub mod fault;
pub mod governor;
pub mod parsers;
pub mod supervisor;
pub mod telemetry;

pub use breakdown::StageBreakdown;
pub use checkpoint::{
    collection_fingerprint, config_fingerprint, shard_artifact_name, BuildCheckpoint,
    QuarantinedFile, CHECKPOINT_ARTIFACT, DICTIONARY_ARTIFACT, DOCMAP_ARTIFACT,
};
pub use docmap::{DocMap, DocMapEntry};
pub use driver::{
    build_index, build_index_durable, run_postings_meta, sample_plan, DurableOptions, FileTiming,
    IndexOutput, PipelineConfig, PipelineReport, SamplePlan,
};
pub use fault::{
    BudgetSqueeze, FaultAction, FaultClass, FaultPolicy, FaultReport, FaultStage, FileFault,
    PipelineError, WorkerClass, WorkerFault, WorkerFaultKind, WorkerFaultPlan,
};
pub use governor::{GovernorPolicy, MemoryGovernor, PoolBytes};
pub use parsers::{
    BatchRecycler, ParsedFile, ParserObs, ParserPool, ParserTiming, RoundRobin, SpawnOptions,
    SupervisedRoundRobin,
};
pub use supervisor::{
    DeathCause, SupervisionReport, Supervisor, SupervisorPolicy, WorkerDeath,
};
pub use telemetry::{
    list_bundles, render_bundle_report, PostmortemContext, PostmortemWriter, TelemetryConfig,
    BUNDLE_SCHEMA_VERSION, POSTMORTEM_DIR,
};
