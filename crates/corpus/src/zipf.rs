//! Zipfian rank-frequency distribution.
//!
//! The paper's load-balancing argument (§III.E) rests on Zipf's law [12]:
//! a few head terms dominate token counts while the tail is long and flat.
//! We implement an exact bounded Zipf sampler via an inverse-CDF table so
//! synthetic corpora reproduce that skew deterministically.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Rank `k` (0-based) has probability proportional to `1 / (k + 1)^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k]` = P(rank <= k). Last entry is 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution. `n` must be at least 1; `s` must be finite
    /// and non-negative (s = 0 degenerates to uniform, handy in tests).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf requires at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        // Guard against floating-point shortfall at the very end.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The smallest set of head ranks covering at least `fraction` of the
    /// probability mass. This mirrors the paper's "popular" classification:
    /// trie collections holding the Zipf head absorb most tokens.
    pub fn head_covering(&self, fraction: f64) -> usize {
        assert!((0.0..=1.0).contains(&fraction));
        self.cdf.partition_point(|&c| c < fraction) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 1.0);
        let total: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
    }

    #[test]
    fn rank_zero_most_probable() {
        let z = Zipf::new(100, 1.2);
        for k in 1..100 {
            assert!(z.pmf(0) >= z.pmf(k));
        }
    }

    #[test]
    fn monotone_decreasing_pmf() {
        let z = Zipf::new(500, 0.9);
        for k in 1..500 {
            assert!(z.pmf(k - 1) >= z.pmf(k) - 1e-12);
        }
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let expected = z.pmf(k) * n as f64;
            let got = count as f64;
            // 5-sigma-ish tolerance for a binomial count.
            let tol = 5.0 * expected.sqrt() + 5.0;
            assert!(
                (got - expected).abs() < tol,
                "rank {k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn head_covering_is_small_for_skewed() {
        let z = Zipf::new(100_000, 1.1);
        let head = z.head_covering(0.5);
        assert!(head < 1000, "Zipf head should be small, got {head}");
        let all = z.head_covering(1.0);
        assert!(all <= 100_000);
    }

    #[test]
    fn sampling_is_deterministic_for_seed() {
        let z = Zipf::new(1000, 1.0);
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
