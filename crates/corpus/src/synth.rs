//! Synthetic document-collection generation.
//!
//! The paper evaluates on ClueWeb09 (HTML web pages), Wikipedia 01-07 (pure
//! text) and the Library of Congress crawl (HTML). We cannot redistribute
//! those, so each preset here reproduces the *shape* that matters to the
//! algorithm: tokens per document, vocabulary size relative to token count,
//! Zipf skew, HTML vs plain text, and (for Fig 11) a distribution shift part
//! way through the file sequence, mirroring the Wikipedia-origin files at
//! the tail of ClueWeb09's first English segment.

use crate::doc::RawDocument;
use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A change in document characteristics after a given fraction of the file
/// sequence (used to reproduce the Fig 11 throughput drop at file ~1200 of
/// 1492, i.e. ~80%).
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct DistributionShift {
    /// Files with index >= `at_file_fraction * num_files` use the shifted
    /// distribution.
    pub at_file_fraction: f64,
    /// Token ranks are rotated by this amount modulo the vocabulary size,
    /// so the shifted region suddenly introduces previously-rare terms.
    pub vocab_rotate: usize,
    /// Multiplier on mean document length in the shifted region.
    pub doc_len_scale: f64,
}

/// Full description of a synthetic collection. Serializable so a generated
/// collection's manifest records exactly how to regenerate it.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct CollectionSpec {
    /// Human-readable collection name.
    pub name: String,
    /// Number of container files.
    pub num_files: usize,
    /// Documents per container file.
    pub docs_per_file: usize,
    /// Mean tokens per document (actual counts vary uniformly ±50%).
    pub mean_doc_tokens: usize,
    /// Vocabulary size (distinct surface tokens available).
    pub vocab_size: usize,
    /// Zipf exponent for term frequencies.
    pub zipf_s: f64,
    /// Wrap documents in HTML boilerplate (web-crawl collections).
    pub html: bool,
    /// Master seed; generation is fully deterministic given the spec.
    pub seed: u64,
    /// Optional late-corpus distribution shift.
    pub shift: Option<DistributionShift>,
}

impl CollectionSpec {
    /// ClueWeb09-first-English-segment-like: HTML pages, big vocabulary,
    /// heavy skew, Wikipedia-flavoured shift over the last ~20% of files.
    /// `scale` multiplies the file count (scale 1.0 ≈ a few MB — a
    /// laptop-friendly stand-in for the paper's 1.4 TB).
    pub fn clueweb_like(scale: f64) -> Self {
        CollectionSpec {
            name: "clueweb09-like".into(),
            num_files: scaled(12, scale),
            docs_per_file: 400,
            mean_doc_tokens: 650,
            vocab_size: 150_000,
            zipf_s: 1.0,
            html: true,
            seed: 0x0C1u64,
            shift: Some(DistributionShift {
                at_file_fraction: 0.8,
                vocab_rotate: 97_001,
                doc_len_scale: 0.6,
            }),
        }
    }

    /// Wikipedia 01-07-like: pure text (tags removed upstream), smaller
    /// vocabulary, many short-ish documents.
    pub fn wikipedia_like(scale: f64) -> Self {
        CollectionSpec {
            name: "wikipedia01-07-like".into(),
            num_files: scaled(6, scale),
            docs_per_file: 600,
            mean_doc_tokens: 560,
            vocab_size: 60_000,
            zipf_s: 0.95,
            html: false,
            seed: 0x311Au64,
            shift: None,
        }
    }

    /// Library-of-Congress-crawl-like: HTML, modest vocabulary, weekly
    /// snapshots mean lots of near-duplicate boilerplate (higher skew).
    pub fn congress_like(scale: f64) -> Self {
        CollectionSpec {
            name: "congress-like".into(),
            num_files: scaled(9, scale),
            docs_per_file: 500,
            mean_doc_tokens: 580,
            vocab_size: 50_000,
            zipf_s: 1.05,
            html: true,
            seed: 0x10Cu64,
            shift: None,
        }
    }

    /// A tiny spec for unit tests.
    pub fn tiny(seed: u64) -> Self {
        CollectionSpec {
            name: "tiny".into(),
            num_files: 2,
            docs_per_file: 8,
            mean_doc_tokens: 40,
            vocab_size: 500,
            zipf_s: 1.0,
            html: false,
            seed,
            shift: None,
        }
    }

    /// Total documents in the collection.
    pub fn total_docs(&self) -> usize {
        self.num_files * self.docs_per_file
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(2)
}

/// Aggregate statistics gathered while generating a collection — the fields
/// of the paper's Table III.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct CollectionStats {
    /// Document count.
    pub documents: u64,
    /// Total token occurrences (pre-stopword-removal surface tokens).
    pub tokens: u64,
    /// Distinct surface terms that actually occurred.
    pub distinct_terms: u64,
    /// Bytes of uncompressed container data.
    pub uncompressed_bytes: u64,
    /// Bytes after LZSS compression (0 until stored to disk).
    pub compressed_bytes: u64,
}

/// Deterministic generator for one [`CollectionSpec`].
pub struct CollectionGenerator {
    spec: CollectionSpec,
    vocab: Vocabulary,
    zipf: Zipf,
}

impl CollectionGenerator {
    /// Build the vocabulary and frequency model for a spec.
    pub fn new(spec: CollectionSpec) -> Self {
        let vocab = Vocabulary::generate(spec.vocab_size, spec.seed);
        let zipf = Zipf::new(spec.vocab_size, spec.zipf_s);
        CollectionGenerator { spec, vocab, zipf }
    }

    /// The spec this generator realizes.
    pub fn spec(&self) -> &CollectionSpec {
        &self.spec
    }

    /// The ranked vocabulary in use.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Whether `file_idx` falls in the shifted region.
    pub fn file_is_shifted(&self, file_idx: usize) -> bool {
        match self.spec.shift {
            Some(s) => (file_idx as f64) >= s.at_file_fraction * self.spec.num_files as f64,
            None => false,
        }
    }

    /// Generate the documents of one container file. Each file depends only
    /// on (seed, file_idx), so files can be generated in any order.
    pub fn generate_file(&self, file_idx: usize) -> Vec<RawDocument> {
        assert!(file_idx < self.spec.num_files, "file index out of range");
        let mut rng =
            StdRng::seed_from_u64(self.spec.seed ^ (file_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let shifted = self.file_is_shifted(file_idx);
        let (rotate, len_scale) = match (shifted, self.spec.shift) {
            (true, Some(s)) => (s.vocab_rotate % self.spec.vocab_size.max(1), s.doc_len_scale),
            _ => (0, 1.0),
        };
        let mean = ((self.spec.mean_doc_tokens as f64 * len_scale) as usize).max(4);
        let mut docs = Vec::with_capacity(self.spec.docs_per_file);
        for d in 0..self.spec.docs_per_file {
            let ntok = rng.gen_range(mean / 2..=mean + mean / 2);
            let mut text = String::with_capacity(ntok * 8);
            for t in 0..ntok {
                let rank = (self.zipf.sample(&mut rng) + rotate) % self.spec.vocab_size;
                if t > 0 {
                    // Occasional punctuation / newlines: the tokenizer must cope.
                    match rng.gen_range(0..24) {
                        0 => text.push_str(". "),
                        1 => text.push_str(",\n"),
                        _ => text.push(' '),
                    }
                }
                text.push_str(self.vocab.term(rank));
            }
            let url = format!("http://synth.example/{}/f{file_idx:05}/d{d:05}", self.spec.name);
            let body = if self.spec.html { wrap_html(&url, &text, &mut rng) } else { text };
            docs.push(RawDocument { url, body });
        }
        docs
    }
}

/// Wrap plain text in web-page boilerplate so HTML-mode collections exercise
/// the tag-stripping path of the parser.
fn wrap_html(url: &str, text: &str, rng: &mut StdRng) -> String {
    let mut out = String::with_capacity(text.len() + 256);
    out.push_str("<html><head><title>");
    // Title: first few words of the body.
    out.push_str(text.split(' ').take(5).collect::<Vec<_>>().join(" ").as_str());
    out.push_str("</title><meta charset=\"utf-8\"></head>\n<body>\n");
    // Break body into paragraphs with occasional links.
    for (i, chunk) in text.as_bytes().chunks(400).enumerate() {
        let chunk = String::from_utf8_lossy(chunk);
        if i % 3 == 2 && rng.gen_bool(0.7) {
            out.push_str(&format!("<p><a href=\"{url}?p={i}\">{chunk}</a></p>\n"));
        } else {
            out.push_str(&format!("<p>{chunk}</p>\n"));
        }
    }
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g1 = CollectionGenerator::new(CollectionSpec::tiny(7));
        let g2 = CollectionGenerator::new(CollectionSpec::tiny(7));
        assert_eq!(g1.generate_file(0), g2.generate_file(0));
        assert_eq!(g1.generate_file(1), g2.generate_file(1));
    }

    #[test]
    fn different_files_differ() {
        let g = CollectionGenerator::new(CollectionSpec::tiny(7));
        assert_ne!(g.generate_file(0), g.generate_file(1));
    }

    #[test]
    fn doc_counts_match_spec() {
        let spec = CollectionSpec::tiny(3);
        let g = CollectionGenerator::new(spec.clone());
        for f in 0..spec.num_files {
            assert_eq!(g.generate_file(f).len(), spec.docs_per_file);
        }
    }

    #[test]
    fn html_mode_emits_tags_text_mode_does_not() {
        let mut spec = CollectionSpec::tiny(1);
        spec.html = true;
        let g = CollectionGenerator::new(spec);
        let docs = g.generate_file(0);
        assert!(docs[0].body.contains("<html>"));

        let g = CollectionGenerator::new(CollectionSpec::tiny(1));
        let docs = g.generate_file(0);
        assert!(!docs[0].body.contains('<'));
    }

    #[test]
    fn shift_region_detected() {
        let mut spec = CollectionSpec::tiny(2);
        spec.num_files = 10;
        spec.shift = Some(DistributionShift {
            at_file_fraction: 0.8,
            vocab_rotate: 100,
            doc_len_scale: 1.0,
        });
        let g = CollectionGenerator::new(spec);
        assert!(!g.file_is_shifted(0));
        assert!(!g.file_is_shifted(7));
        assert!(g.file_is_shifted(8));
        assert!(g.file_is_shifted(9));
    }

    #[test]
    fn shifted_files_use_different_terms() {
        let mut spec = CollectionSpec::tiny(5);
        spec.num_files = 4;
        spec.vocab_size = 2000;
        spec.shift = Some(DistributionShift {
            at_file_fraction: 0.5,
            vocab_rotate: 1000,
            doc_len_scale: 1.0,
        });
        let g = CollectionGenerator::new(spec);
        let head: String = g.generate_file(0).iter().map(|d| d.body.clone()).collect();
        let tail: String = g.generate_file(3).iter().map(|d| d.body.clone()).collect();
        // The most frequent word in the unshifted region ("the") should be
        // far rarer after the rotation.
        let count = |s: &str, w: &str| s.split_whitespace().filter(|t| *t == w).count();
        assert!(count(&head, "the") > 5 * count(&tail, "the").max(1) / 2);
    }

    #[test]
    fn presets_have_sane_shapes() {
        for spec in [
            CollectionSpec::clueweb_like(1.0),
            CollectionSpec::wikipedia_like(1.0),
            CollectionSpec::congress_like(1.0),
        ] {
            assert!(spec.num_files >= 2);
            assert!(spec.vocab_size > 1000);
            assert!(spec.mean_doc_tokens > 100);
        }
        assert!(CollectionSpec::clueweb_like(1.0).html);
        assert!(!CollectionSpec::wikipedia_like(1.0).html);
        // Scale grows the file count.
        assert!(
            CollectionSpec::clueweb_like(2.0).num_files
                > CollectionSpec::clueweb_like(1.0).num_files
        );
    }
}
