//! Fault injection and the ingest error taxonomy.
//!
//! Production collections are not pristine: disks hiccup, containers arrive
//! truncated or bit-flipped, compressed payloads are garbage. This module
//! gives the rest of the system two things:
//!
//! 1. [`IngestError`] — a typed union of everything that can go wrong on the
//!    read → decompress → parse path, classified *transient* (worth
//!    retrying) vs *permanent* (corrupt data; retrying cannot help).
//! 2. [`FaultPlan`] — a deterministic, seeded fault-injection harness wired
//!    into [`StoredCollection`](crate::StoredCollection)'s read path, so the
//!    pipeline's recovery machinery can be exercised reproducibly in tests
//!    and chaos runs.

use crate::compress::DecompressError;
use crate::container::ContainerError;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::Mutex;

/// Everything that can go wrong turning a container file into documents.
#[derive(Debug)]
pub enum IngestError {
    /// Reading the file failed. I/O faults are classified transient: a
    /// retry against real hardware may succeed.
    Io(io::Error),
    /// The compressed payload did not decompress. Permanent: the bytes on
    /// disk are corrupt and will not improve on retry.
    Decompress(DecompressError),
    /// The decompressed container did not parse (bad magic, truncated
    /// record table, invalid UTF-8, checksum mismatch). Permanent.
    Container(ContainerError),
}

impl IngestError {
    /// Whether retrying the operation could plausibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, IngestError::Io(_))
    }
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "read failed: {e}"),
            IngestError::Decompress(e) => write!(f, "decompress failed: {e}"),
            IngestError::Container(e) => write!(f, "container parse failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Decompress(e) => Some(e),
            IngestError::Container(e) => Some(e),
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<DecompressError> for IngestError {
    fn from(e: DecompressError) -> Self {
        IngestError::Decompress(e)
    }
}

impl From<ContainerError> for IngestError {
    fn from(e: ContainerError) -> Self {
        IngestError::Container(e)
    }
}

/// A fault to inject when a specific container file is read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The first `failures` read attempts fail with a transient
    /// `io::ErrorKind::Interrupted`; subsequent attempts succeed. Models a
    /// flaky disk that recovers under retry.
    TransientRead {
        /// How many attempts fail before reads start succeeding.
        failures: u32,
    },
    /// The compressed payload is cut to half its length — guaranteed to
    /// surface as a permanent [`DecompressError::Truncated`].
    Truncate,
    /// One deterministically-chosen bit of the compressed payload is
    /// flipped. Surfaces as a decompress error or (via the container
    /// checksum) a `ContainerError::ChecksumMismatch`; in rare cases the
    /// flip is harmless (e.g. it lands in the checksum trailer itself).
    BitFlip,
    /// The whole payload is replaced by deterministic garbage of the same
    /// length — a permanently corrupt file.
    Garbage,
    /// Reading the file panics, modeling a poisoned parser thread. The
    /// pipeline must contain the crash rather than hang or truncate.
    Panic,
}

/// Deterministic, seeded fault-injection plan keyed by file index.
///
/// Attach one to a collection with
/// [`StoredCollection::with_faults`](crate::StoredCollection::with_faults);
/// every `read_file_raw` call then consults the plan. All corruption is
/// derived from the seed and the file index, so a given plan replays
/// identically across runs and parser counts.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: BTreeMap<usize, FaultKind>,
    /// Remaining transient failures per file; interior mutability because
    /// reads take `&self` from many parser threads.
    remaining: Mutex<HashMap<usize, u32>>,
}

impl FaultPlan {
    /// An empty plan; corruption positions derive from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, faults: BTreeMap::new(), remaining: Mutex::new(HashMap::new()) }
    }

    /// Inject `kind` when file `file_idx` is read.
    pub fn with_fault(mut self, file_idx: usize, kind: FaultKind) -> FaultPlan {
        if let FaultKind::TransientRead { failures } = kind {
            self.remaining
                .get_mut()
                .unwrap_or_else(|e| e.into_inner())
                .insert(file_idx, failures);
        }
        self.faults.insert(file_idx, kind);
        self
    }

    /// Inject `kind` into a deterministic pseudo-random `fraction` of
    /// `num_files` files (at least one). Useful for "faults at 10% of
    /// files" chaos runs.
    pub fn sprinkle(seed: u64, num_files: usize, fraction: f64, kind: FaultKind) -> FaultPlan {
        let k = ((num_files as f64 * fraction).round() as usize).clamp(1, num_files);
        // Seeded Fisher-Yates over the file indices, take the first k.
        let mut order: Vec<usize> = (0..num_files).collect();
        let mut state = seed;
        for i in (1..order.len()).rev() {
            state = splitmix64(state);
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut plan = FaultPlan::new(seed);
        for &f in order.iter().take(k) {
            plan = plan.with_fault(f, kind);
        }
        plan
    }

    /// The fault registered for a file, if any.
    pub fn fault_for(&self, file_idx: usize) -> Option<FaultKind> {
        self.faults.get(&file_idx).copied()
    }

    /// Files with a registered fault, ascending.
    pub fn faulty_files(&self) -> Vec<usize> {
        self.faults.keys().copied().collect()
    }

    /// The read-path hook: given the bytes actually read for `file_idx`,
    /// return what the (possibly faulty) disk would have produced.
    pub fn apply_read(&self, file_idx: usize, mut bytes: Vec<u8>) -> io::Result<Vec<u8>> {
        match self.fault_for(file_idx) {
            None => Ok(bytes),
            Some(FaultKind::TransientRead { failures }) => {
                let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
                let left = remaining.entry(file_idx).or_insert(failures);
                if *left > 0 {
                    *left -= 1;
                    Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!("injected transient read fault (file {file_idx})"),
                    ))
                } else {
                    Ok(bytes)
                }
            }
            Some(FaultKind::Truncate) => {
                bytes.truncate(bytes.len() / 2);
                Ok(bytes)
            }
            Some(FaultKind::BitFlip) => {
                if !bytes.is_empty() {
                    let bit = splitmix64(self.seed ^ file_idx as u64) % (bytes.len() as u64 * 8);
                    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                Ok(bytes)
            }
            Some(FaultKind::Garbage) => {
                let mut state = splitmix64(self.seed ^ (file_idx as u64).wrapping_mul(0x9E37));
                for b in bytes.iter_mut() {
                    state = splitmix64(state);
                    *b = state as u8;
                }
                Ok(bytes)
            }
            Some(FaultKind::Panic) => {
                panic!("injected parser panic (file {file_idx})")
            }
        }
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_read_recovers_after_budget() {
        let plan = FaultPlan::new(7).with_fault(2, FaultKind::TransientRead { failures: 2 });
        let payload = vec![1u8, 2, 3];
        assert!(plan.apply_read(2, payload.clone()).is_err());
        assert!(plan.apply_read(2, payload.clone()).is_err());
        assert_eq!(plan.apply_read(2, payload.clone()).unwrap(), payload);
        // Unfaulted files are untouched.
        assert_eq!(plan.apply_read(0, payload.clone()).unwrap(), payload);
    }

    #[test]
    fn corruption_is_deterministic() {
        let payload: Vec<u8> = (0..64).collect();
        for kind in [FaultKind::Truncate, FaultKind::BitFlip, FaultKind::Garbage] {
            let a = FaultPlan::new(9).with_fault(1, kind).apply_read(1, payload.clone()).unwrap();
            let b = FaultPlan::new(9).with_fault(1, kind).apply_read(1, payload.clone()).unwrap();
            assert_eq!(a, b, "{kind:?} not deterministic");
            assert_ne!(a, payload, "{kind:?} left payload intact");
        }
    }

    #[test]
    fn sprinkle_hits_requested_fraction() {
        let plan = FaultPlan::sprinkle(11, 20, 0.1, FaultKind::Garbage);
        assert_eq!(plan.faulty_files().len(), 2);
        let again = FaultPlan::sprinkle(11, 20, 0.1, FaultKind::Garbage);
        assert_eq!(plan.faulty_files(), again.faulty_files(), "sprinkle must be seeded");
        // At least one fault even for tiny fractions.
        assert_eq!(FaultPlan::sprinkle(3, 4, 0.01, FaultKind::Truncate).faulty_files().len(), 1);
    }

    #[test]
    #[should_panic(expected = "injected parser panic")]
    fn panic_fault_panics() {
        let plan = FaultPlan::new(1).with_fault(0, FaultKind::Panic);
        let _ = plan.apply_read(0, vec![0]);
    }

    #[test]
    fn transient_errors_classified_transient() {
        let io: IngestError = io::Error::new(io::ErrorKind::Interrupted, "x").into();
        assert!(io.is_transient());
        let perm: IngestError = DecompressError::Truncated.into();
        assert!(!perm.is_transient());
        let perm: IngestError = ContainerError::BadMagic.into();
        assert!(!perm.is_transient());
    }
}
