//! Synthetic vocabulary generation.
//!
//! Ranked term lists whose shape matches what the paper's datasets exhibit:
//! a head of very common English words (including stop words, so the
//! stop-word-removal path does real work), a long tail of plausible
//! alphabetic words with mean length close to the 6.6 characters the paper
//! reports for stemmed ClueWeb09 tokens, plus numeric tokens and tokens with
//! special characters so every trie category of Table I is populated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// The most common English words, used as the head of every synthetic
/// vocabulary (rank order roughly by corpus frequency). The first entries
/// are classic stop words.
pub const COMMON_WORDS: &[&str] = &[
    "the", "of", "and", "to", "a", "in", "for", "is", "on", "that", "by", "this", "with", "i",
    "you", "it", "not", "or", "be", "are", "from", "at", "as", "your", "all", "have", "new",
    "more", "an", "was", "we", "will", "home", "can", "us", "about", "if", "page", "my", "has",
    "search", "free", "but", "our", "one", "other", "do", "no", "information", "time", "they",
    "site", "he", "up", "may", "what", "which", "their", "news", "out", "use", "any", "there",
    "see", "only", "so", "his", "when", "contact", "here", "business", "who", "web", "also",
    "now", "help", "get", "view", "online", "first", "been", "would", "how", "were", "me",
    "services", "some", "these", "click", "its", "like", "service", "than", "find", "price",
    "date", "back", "top", "people", "had", "list", "name", "just", "over", "state", "year",
    "day", "into", "email", "two", "health", "world", "next", "used", "go", "work", "last",
    "most", "products", "music", "buy", "data", "make", "them", "should", "product", "system",
    "post", "her", "city", "add", "policy", "number", "such", "please", "available", "copyright",
    "support", "message", "after", "best", "software", "then", "good", "video", "well", "where",
    "info", "rights", "public", "books", "high", "school", "through", "each", "links", "she",
    "review", "years", "order", "very", "privacy", "book", "items", "company", "read", "group",
    "sex", "need", "many", "user", "said", "de", "does", "set", "under", "general", "research",
    "university", "january", "mail", "full", "map", "reviews", "program", "life", "know",
    "games", "way", "days", "management", "part", "could", "great", "united", "hotel", "real",
    "item", "international", "center", "ebay", "must", "store", "travel", "comments", "made",
    "development", "report", "off", "member", "details", "line", "terms", "before", "hotels",
    "did", "send", "right", "type", "because", "local", "those", "using", "results", "office",
    "education", "national", "car", "design", "take", "posted", "internet", "address",
    "community", "within", "states", "area", "want", "phone", "shipping", "reserved", "subject",
    "between", "forum", "family", "long", "based", "code", "show", "even", "black", "check",
    "special", "prices", "website", "index", "being", "women", "much", "sign", "file", "link",
    "open", "today", "technology", "south", "case", "project", "same", "pages", "version",
    "section", "own", "found", "sports", "house", "related", "security", "both", "county",
    "american", "photo", "game", "members", "power", "while", "care", "network", "down",
    "computer", "systems", "three", "total", "place", "end", "following", "download", "him",
    "without", "per", "access", "think", "north", "resources", "current", "posts", "big",
    "media", "law", "control", "water", "history", "pictures", "size", "art", "personal",
    "since", "including", "guide", "shop", "directory", "board", "location", "change", "white",
    "text", "small", "rating", "rate", "government", "children", "during", "return", "students",
    "shopping", "account", "times", "sites", "level", "digital", "profile", "previous", "form",
    "events", "love", "old", "john", "main", "call", "hours", "image", "department", "title",
    "description", "non", "insurance", "another", "why", "shall", "property", "class", "cd",
    "still", "money", "quality", "every", "listing", "content", "country", "private", "little",
    "visit", "save", "tools", "low", "reply", "customer", "december", "compare", "movies",
    "include", "college", "value", "article", "york", "man", "card", "jobs", "provide", "food",
    "source", "author", "different", "press", "learn", "sale", "around", "print", "course",
    "job", "canada", "process", "teen", "room", "stock", "training", "too", "credit", "point",
    "join", "science", "men", "categories", "advanced", "west", "sales", "look", "english",
    "left", "team", "estate", "box", "conditions", "select", "windows", "photos", "gay",
    "thread", "week", "category", "note", "live", "large", "gallery", "table", "register",
    "however", "june", "october", "november", "market", "library", "really", "action", "start",
    "series", "model", "features", "air", "industry", "plan", "human", "provided", "yes",
    "required", "second", "hot", "accessories", "cost", "movie", "forums", "march", "la",
    "september", "better", "say", "questions", "july", "yahoo", "going", "medical", "test",
    "friend", "come", "dec", "server", "pc", "study", "application", "cart", "staff",
    "articles", "san", "feedback", "again", "play", "looking", "issues", "april", "never",
    "users", "complete", "street", "topic", "comment", "financial", "things", "working",
    "against", "standard", "tax", "person", "below", "mobile", "less", "got", "blog", "party",
    "payment", "equipment", "login", "student", "let", "programs", "offers", "legal", "above",
    "recent", "park", "stores", "side", "act", "problem", "red", "give", "memory",
    "performance", "social", "august", "quote", "language", "story", "sell", "options",
    "experience", "rates", "create", "key", "body", "young", "america", "important", "field",
    "few", "east", "paper", "single", "age", "activities", "club", "example", "girls",
    "additional", "password", "latest", "something", "road", "gift", "question", "changes",
    "night", "hard", "texas", "oct", "pay", "four", "poker", "status", "browse", "issue",
    "range", "building", "seller", "court", "february", "always", "result", "audio", "light",
    "write", "war", "nov", "offer", "blue", "groups", "al", "easy", "given", "files", "event",
    "release", "analysis", "request", "fax", "china", "making", "picture", "needs", "possible",
    "might", "professional", "yet", "month", "major", "star", "areas", "future", "space",
    "committee", "hand", "sun", "cards", "problems", "london", "washington", "meeting",
    "become", "interest", "id", "child", "keep", "enter", "california", "porn", "share",
    "similar", "garden", "schools", "million", "added", "reference", "companies", "listed",
    "baby", "learning", "energy", "run", "delivery", "net", "popular", "term", "film", "stories",
    "put", "computers", "journal", "reports", "co", "try", "welcome", "central", "images",
    "president", "notice", "god", "original", "head", "radio", "until", "cell", "color", "self",
    "council", "away", "includes", "track", "australia", "discussion", "archive", "once",
    "others", "entertainment", "agreement", "format", "least", "society", "months", "log",
    "safety", "friends", "sure", "faq", "trade", "edition", "cars", "messages", "marketing",
    "tell", "further", "updated", "association", "able", "having", "provides", "david", "fun",
    "already", "green", "studies", "close", "common", "drive", "specific", "several", "gold",
    "feb", "living", "sep", "collection", "called", "short", "arts", "lot", "ask", "display",
    "limited", "powered", "solutions", "means", "director", "daily", "beach", "past", "natural",
    "whether", "due", "et", "electronics", "five", "upon", "period", "planning", "database",
    "says", "official", "weather", "mar", "land", "average", "done", "technical", "window",
    "france", "pro", "region", "island", "record", "direct", "microsoft", "conference",
    "environment", "records", "st", "district", "calendar", "costs", "style", "url", "front",
    "statement", "update", "parts", "aug", "ever", "downloads", "early", "miles", "sound",
    "resource", "present", "applications", "either", "ago", "document", "word", "works",
    "material", "bill", "apr", "written", "talk", "federal", "hosting", "rules", "final",
    "adult", "tickets", "thing", "centre", "requirements", "via", "cheap", "kids", "finance",
    "true", "minutes", "else", "mark", "third", "rock", "gifts", "europe", "reading", "topics",
    "bad", "individual", "tips", "plus", "auto", "cover", "usually", "edit", "together",
    "videos", "percent", "fast", "function", "fact", "unit", "getting", "global", "tech",
    "meet", "far", "economic", "en", "player", "projects", "lyrics", "often", "subscribe",
    "submit", "germany", "amount", "watch", "included", "feel", "though", "bank", "risk",
    "thanks", "everything", "deals", "various", "words", "linux", "jul", "production",
    "commercial", "james", "weight", "town", "heart", "advertising", "received", "choose",
    "treatment", "newsletter", "archives", "points", "knowledge", "magazine", "error", "camera",
    "jun", "girl", "currently", "construction", "toys", "registered", "clear", "golf",
    "receive", "domain", "methods", "chapter", "makes", "protection", "policies", "loan",
    "wide", "beauty", "manager", "india", "position", "taken", "sort", "listings", "models",
    "michael", "known", "half", "cases", "step", "engineering", "florida", "simple", "quick",
    "none", "wireless", "license", "paul", "friday", "lake", "whole", "annual", "published",
    "later", "basic", "sony", "shows", "corporate", "google", "church", "method", "purchase",
    "customers", "active", "response", "practice", "hardware", "figure", "materials", "fire",
    "holiday", "chat", "enough", "designed", "along", "among", "death", "writing", "speed",
];

/// Character classes for synthesized tail terms.
const VOWELS: &[u8] = b"aeiou";
const CONSONANTS: &[u8] = b"tnsrhldcmfpgwybvkxjqz"; // ordered by English frequency
/// A few non-ASCII letters to populate the "special" trie categories.
const SPECIAL_SUFFIXES: &[&str] = &["\u{e9}", "\u{e8}", "\u{fc}", "\u{f1}", "\u{10d}"];

/// A ranked vocabulary: index 0 is the most frequent term.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    terms: Vec<String>,
}

/// Mix proportions used when synthesizing the vocabulary tail.
#[derive(Clone, Copy, Debug)]
pub struct VocabMix {
    /// Fraction of tail terms that are digit strings ("954", "0195", ...).
    pub numeric: f64,
    /// Fraction of tail terms containing a special (non a-z) character.
    pub special: f64,
}

impl Default for VocabMix {
    fn default() -> Self {
        VocabMix { numeric: 0.06, special: 0.02 }
    }
}

impl Vocabulary {
    /// Generate `n` distinct terms deterministically from `seed`.
    pub fn generate(n: usize, seed: u64) -> Self {
        Self::generate_with_mix(n, seed, VocabMix::default())
    }

    /// Generate with explicit numeric/special proportions.
    pub fn generate_with_mix(n: usize, seed: u64, mix: VocabMix) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x76f0_c57a_11e2_90d3);
        let mut seen: HashSet<String> = HashSet::with_capacity(n * 2);
        let mut terms = Vec::with_capacity(n);
        for &w in COMMON_WORDS.iter().take(n) {
            if seen.insert(w.to_string()) {
                terms.push(w.to_string());
            }
        }
        while terms.len() < n {
            let u: f64 = rng.gen();
            let t = if u < mix.numeric {
                synth_number(&mut rng)
            } else if u < mix.numeric + mix.special {
                synth_special(&mut rng)
            } else {
                synth_word(&mut rng)
            };
            if seen.insert(t.clone()) {
                terms.push(t);
            }
        }
        Vocabulary { terms }
    }

    /// Term string for a rank.
    pub fn term(&self, rank: usize) -> &str {
        &self.terms[rank]
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Mean term length in bytes (the paper quotes 6.6 for stemmed
    /// ClueWeb09 tokens).
    pub fn average_len(&self) -> f64 {
        if self.terms.is_empty() {
            return 0.0;
        }
        let total: usize = self.terms.iter().map(|t| t.len()).sum();
        total as f64 / self.terms.len() as f64
    }

    /// All terms in rank order.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }
}

/// Synthesize a pronounceable lowercase word, length roughly 3..14,
/// mean close to 7 (pre-stemming; stemming trims it toward 6.6).
fn synth_word(rng: &mut StdRng) -> String {
    // Number of consonant-vowel pairs; weighted toward 2-4 syllables.
    let syllables = match rng.gen_range(0..100) {
        0..=9 => 1,
        10..=44 => 2,
        45..=79 => 3,
        80..=94 => 4,
        _ => 5,
    };
    let mut w = String::new();
    for _ in 0..syllables {
        // Frequency-weighted consonant choice: earlier entries more likely.
        let ci = weighted_index(rng, CONSONANTS.len());
        w.push(CONSONANTS[ci] as char);
        let vi = rng.gen_range(0..VOWELS.len());
        w.push(VOWELS[vi] as char);
        // Occasionally a closing consonant.
        if rng.gen_bool(0.3) {
            let ci = weighted_index(rng, CONSONANTS.len());
            w.push(CONSONANTS[ci] as char);
        }
    }
    // Occasionally add a common English suffix so the Porter stemmer has
    // something to chew on.
    if rng.gen_bool(0.25) {
        const SUFFIXES: &[&str] =
            &["ing", "ed", "s", "es", "er", "ation", "ness", "ly", "ment", "ize", "ful"];
        w.push_str(SUFFIXES[rng.gen_range(0..SUFFIXES.len())]);
    }
    w
}

/// Pick an index in `0..n` with linearly decaying weight (index 0 heaviest).
fn weighted_index(rng: &mut StdRng, n: usize) -> usize {
    // Triangular distribution: min of two uniforms biases toward 0.
    let a = rng.gen_range(0..n);
    let b = rng.gen_range(0..n);
    a.min(b)
}

fn synth_number(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..=8);
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        // Leading zeros allowed (trie categories 1..=10 key off the digit).
        let d: u8 = rng.gen_range(0..10);
        s.push((b'0' + d) as char);
    }
    s
}

fn synth_special(rng: &mut StdRng) -> String {
    let mut base = synth_word(rng);
    match rng.gen_range(0..3) {
        0 => {
            // Non-ASCII letter appended ("zoé"-like).
            base.push_str(SPECIAL_SUFFIXES[rng.gen_range(0..SPECIAL_SUFFIXES.len())]);
        }
        1 => {
            // Mixed alphanumeric ("3d"-like).
            base = format!("{}{}", rng.gen_range(0..10), &base[..base.len().min(2)]);
        }
        _ => {
            // Hyphenated / signed ("-80"-like).
            base = format!("-{}", rng.gen_range(1..1000));
        }
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_distinct() {
        let v = Vocabulary::generate(5000, 11);
        assert_eq!(v.len(), 5000);
        let set: HashSet<&str> = v.terms().iter().map(|s| s.as_str()).collect();
        assert_eq!(set.len(), 5000, "terms must be distinct");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Vocabulary::generate(2000, 99);
        let b = Vocabulary::generate(2000, 99);
        assert_eq!(a.terms(), b.terms());
        let c = Vocabulary::generate(2000, 100);
        assert_ne!(a.terms(), c.terms());
    }

    #[test]
    fn head_is_common_english() {
        let v = Vocabulary::generate(1000, 5);
        assert_eq!(v.term(0), "the");
        assert_eq!(v.term(1), "of");
        assert_eq!(v.term(2), "and");
    }

    #[test]
    fn average_length_plausible() {
        let v = Vocabulary::generate(50_000, 3);
        let avg = v.average_len();
        assert!(
            (4.0..=9.5).contains(&avg),
            "average term length {avg} outside plausible band"
        );
    }

    #[test]
    fn contains_numeric_and_special_terms() {
        let v = Vocabulary::generate(50_000, 17);
        let numeric = v
            .terms()
            .iter()
            .filter(|t| t.bytes().all(|b| b.is_ascii_digit()))
            .count();
        let special = v
            .terms()
            .iter()
            .filter(|t| !t.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()))
            .count();
        assert!(numeric > 500, "expected numeric tail terms, got {numeric}");
        assert!(special > 100, "expected special tail terms, got {special}");
    }

    #[test]
    fn small_vocab_works() {
        let v = Vocabulary::generate(3, 0);
        assert_eq!(v.len(), 3);
    }
}
