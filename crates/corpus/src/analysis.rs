//! Corpus statistics: Heaps-law vocabulary growth and Zipf-fit estimation.
//!
//! The platform model (`ii-platsim`) drives its B-tree-depth curve from a
//! Heaps-law exponent, and the load balancer's popular/unpopular split
//! rests on Zipf skew. These tools measure both properties of a generated
//! collection so the models can be validated against the corpora actually
//! used — and would measure real corpora the same way.

use crate::synth::CollectionGenerator;
use std::collections::HashSet;

/// A vocabulary-growth sample: after `tokens` tokens, `distinct` distinct
/// terms had been seen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GrowthPoint {
    /// Tokens consumed so far.
    pub tokens: u64,
    /// Distinct terms seen so far.
    pub distinct: u64,
}

/// Measure vocabulary growth over the first `num_files` files of a
/// collection, sampling once per file. Tokens are whitespace-split surface
/// tokens (cheap and deterministic; the trend, not the absolute count,
/// feeds the models).
pub fn vocabulary_growth(gen: &CollectionGenerator, num_files: usize) -> Vec<GrowthPoint> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut tokens = 0u64;
    let mut out = Vec::with_capacity(num_files);
    for f in 0..num_files.min(gen.spec().num_files) {
        for d in gen.generate_file(f) {
            for tok in d.body.split_whitespace() {
                tokens += 1;
                if !seen.contains(tok) {
                    seen.insert(tok.to_string());
                }
            }
        }
        out.push(GrowthPoint { tokens, distinct: seen.len() as u64 });
    }
    out
}

/// Least-squares fit of Heaps' law `V = K · n^β` over growth points
/// (log-log linear regression). Returns `(K, β)`.
pub fn fit_heaps(points: &[GrowthPoint]) -> (f64, f64) {
    let data: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.tokens > 0 && p.distinct > 0)
        .map(|p| ((p.tokens as f64).ln(), (p.distinct as f64).ln()))
        .collect();
    let (k_ln, beta) = linear_fit(&data);
    (k_ln.exp(), beta)
}

/// Estimate the Zipf exponent `s` from term frequency counts (descending
/// or not): fits `ln f_r = c − s·ln r` over the top `top_n` ranks.
pub fn fit_zipf(counts: &mut [u64], top_n: usize) -> f64 {
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let data: Vec<(f64, f64)> = counts
        .iter()
        .take(top_n)
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(r, &c)| ((r as f64 + 1.0).ln(), (c as f64).ln()))
        .collect();
    let (_, slope) = linear_fit(&data);
    -slope
}

/// Ordinary least squares over `(x, y)`: returns `(intercept, slope)`.
fn linear_fit(data: &[(f64, f64)]) -> (f64, f64) {
    let n = data.len() as f64;
    if data.len() < 2 {
        return (0.0, 0.0);
    }
    let sx: f64 = data.iter().map(|(x, _)| x).sum();
    let sy: f64 = data.iter().map(|(_, y)| y).sum();
    let sxx: f64 = data.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = data.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (sy / n, 0.0);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (intercept, slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::CollectionSpec;
    use std::collections::HashMap;

    #[test]
    fn growth_is_monotone_and_concave() {
        let mut spec = CollectionSpec::wikipedia_like(0.3);
        spec.docs_per_file = 100;
        spec.num_files = 4;
        let gen = CollectionGenerator::new(spec);
        let g = vocabulary_growth(&gen, 4);
        assert_eq!(g.len(), 4);
        for w in g.windows(2) {
            assert!(w[1].tokens > w[0].tokens);
            assert!(w[1].distinct >= w[0].distinct);
        }
        // Concavity: later files add fewer new terms than the first.
        let first_new = g[0].distinct;
        let last_new = g[3].distinct - g[2].distinct;
        assert!(last_new < first_new, "{last_new} vs {first_new}");
    }

    #[test]
    fn heaps_fit_recovers_power_law() {
        // Synthetic exact power law: V = 3 n^0.6.
        let pts: Vec<GrowthPoint> = (1..=20)
            .map(|i| {
                let n = (i * 10_000) as f64;
                GrowthPoint { tokens: n as u64, distinct: (3.0 * n.powf(0.6)) as u64 }
            })
            .collect();
        let (k, beta) = fit_heaps(&pts);
        assert!((beta - 0.6).abs() < 0.02, "beta {beta}");
        assert!((k - 3.0).abs() < 0.5, "k {k}");
    }

    #[test]
    fn generated_collection_obeys_heaps() {
        let mut spec = CollectionSpec::clueweb_like(0.3);
        spec.docs_per_file = 120;
        spec.html = false; // measure the text stream directly
        let gen = CollectionGenerator::new(spec);
        let g = vocabulary_growth(&gen, 3);
        let (_, beta) = fit_heaps(&g);
        assert!(
            (0.3..0.95).contains(&beta),
            "generated vocabulary growth beta {beta} not Heaps-like"
        );
    }

    #[test]
    fn zipf_fit_recovers_exponent() {
        // Exact Zipf with s = 1.0 over 2000 ranks.
        let mut counts: Vec<u64> =
            (1..=2000u64).map(|r| (1e7 / (r as f64)).round() as u64).collect();
        let s = fit_zipf(&mut counts, 500);
        assert!((s - 1.0).abs() < 0.05, "fitted s {s}");
    }

    #[test]
    fn generated_collection_is_zipfian() {
        let mut spec = CollectionSpec::wikipedia_like(0.3);
        spec.docs_per_file = 150;
        let gen = CollectionGenerator::new(spec.clone());
        let mut freq: HashMap<String, u64> = HashMap::new();
        for f in 0..2 {
            for d in gen.generate_file(f) {
                for tok in d.body.split_whitespace() {
                    *freq.entry(tok.to_string()).or_insert(0) += 1;
                }
            }
        }
        let mut counts: Vec<u64> = freq.into_values().collect();
        let s = fit_zipf(&mut counts, 200);
        assert!(
            (spec.zipf_s - 0.35..spec.zipf_s + 0.35).contains(&s),
            "fitted s {s} vs spec {}",
            spec.zipf_s
        );
    }

    #[test]
    fn degenerate_fits_do_not_panic() {
        assert_eq!(fit_heaps(&[]), (1.0, 0.0));
        let one = [GrowthPoint { tokens: 10, distinct: 5 }];
        let (_, b) = fit_heaps(&one);
        assert_eq!(b, 0.0);
        assert_eq!(fit_zipf(&mut [], 10), 0.0);
    }
}
