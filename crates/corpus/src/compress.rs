//! LZSS block compression.
//!
//! The paper's ingest path reads *compressed* collection files from disk and
//! decompresses them in memory before parsing (§IV.A: 1.6 s to read a 160 MB
//! compressed file, 3.2 s to decompress it to ~1 GB). ClueWeb09 ships as
//! gzip'd WARC files; we substitute a self-contained LZSS codec so the same
//! read-then-decompress pipeline stage exists and has a real, measurable
//! cost, without pulling in a compression dependency.
//!
//! Format: `u32` little-endian uncompressed length, then a token stream of
//! flag bytes (LSB first). Flag bit 0 = literal byte, 1 = match encoded in
//! two bytes: 12-bit backward distance (1-based) and 4-bit length-3
//! (matches of 3..=18 bytes within a 4 KiB window).

const WINDOW: usize = 1 << 12;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = MIN_MATCH + 15;
/// Hash-chain search depth; bounds worst-case compression time.
const MAX_CHAIN: usize = 64;

/// Errors returned by [`decompress`].
#[derive(Debug, PartialEq, Eq)]
pub enum DecompressError {
    /// Input shorter than its header or truncated mid-token.
    Truncated,
    /// A match referenced bytes before the start of the output.
    BadDistance,
    /// Output length disagrees with the header.
    LengthMismatch,
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream truncated"),
            DecompressError::BadDistance => write!(f, "match distance out of range"),
            DecompressError::LengthMismatch => write!(f, "decompressed length mismatch"),
        }
    }
}

impl std::error::Error for DecompressError {}

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(506_832_829)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(2_654_435_761))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(40_503));
    (h >> 17) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 14;

/// Compress `input` into a fresh buffer.
#[allow(clippy::needless_range_loop)] // j indexes two parallel chain arrays
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    if input.is_empty() {
        return out;
    }
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; input.len()];

    let mut i = 0usize;
    // Token accumulation: one flag byte governs the next 8 tokens.
    let mut flag_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u8;

    let emit_flag = |out: &mut Vec<u8>, flag_pos: &mut usize, flag_bit: &mut u8, set: bool| {
        if *flag_bit == 8 {
            *flag_pos = out.len();
            out.push(0);
            *flag_bit = 0;
        }
        if set {
            out[*flag_pos] |= 1 << *flag_bit;
        }
        *flag_bit += 1;
    };

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash3(input, i);
            let mut cand = head[h];
            let mut chain = 0;
            let window_start = i.saturating_sub(WINDOW);
            while cand != usize::MAX && cand >= window_start && chain < MAX_CHAIN {
                // Compare forward from cand.
                let max_len = MAX_MATCH.min(input.len() - i);
                let mut l = 0usize;
                while l < max_len && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == max_len {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            emit_flag(&mut out, &mut flag_pos, &mut flag_bit, true);
            debug_assert!((1..=WINDOW).contains(&best_dist));
            let dist = (best_dist - 1) as u16; // 12 bits
            let len = (best_len - MIN_MATCH) as u16; // 4 bits
            let token = (dist << 4) | len;
            out.extend_from_slice(&token.to_le_bytes());
            // Insert all covered positions into the hash chains.
            let end = (i + best_len).min(input.len().saturating_sub(MIN_MATCH - 1));
            for j in i..end {
                let h = hash3(input, j);
                prev[j] = head[h];
                head[h] = j;
            }
            i += best_len;
        } else {
            emit_flag(&mut out, &mut flag_pos, &mut flag_bit, false);
            out.push(input[i]);
            if i + MIN_MATCH <= input.len() {
                let h = hash3(input, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if input.len() < 4 {
        return Err(DecompressError::Truncated);
    }
    let expect = u32::from_le_bytes([input[0], input[1], input[2], input[3]]) as usize;
    // A valid stream expands at most MAX_MATCH bytes per token pair, so a
    // header claiming more than input.len() * MAX_MATCH is corrupt. Reject
    // it before the allocation below: a bit-flipped length header must
    // surface as a typed error, not a multi-gigabyte allocation.
    if expect > input.len().saturating_mul(MAX_MATCH) {
        return Err(DecompressError::LengthMismatch);
    }
    let mut out = Vec::with_capacity(expect);
    let mut i = 4usize;
    let mut flags = 0u8;
    let mut bits_left = 0u8;
    while out.len() < expect {
        if bits_left == 0 {
            if i >= input.len() {
                return Err(DecompressError::Truncated);
            }
            flags = input[i];
            i += 1;
            bits_left = 8;
        }
        let is_match = flags & 1 == 1;
        flags >>= 1;
        bits_left -= 1;
        if is_match {
            if i + 2 > input.len() {
                return Err(DecompressError::Truncated);
            }
            let token = u16::from_le_bytes([input[i], input[i + 1]]);
            i += 2;
            let dist = (token >> 4) as usize + 1;
            let len = (token & 0xF) as usize + MIN_MATCH;
            if dist > out.len() {
                return Err(DecompressError::BadDistance);
            }
            let start = out.len() - dist;
            // Byte-by-byte to support overlapping matches (RLE-style).
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            if i >= input.len() {
                return Err(DecompressError::Truncated);
            }
            out.push(input[i]);
            i += 1;
        }
    }
    if out.len() != expect {
        return Err(DecompressError::LengthMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_empty() {
        assert_eq!(decompress(&compress(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_short() {
        for s in [&b"a"[..], b"ab", b"abc", b"hello world"] {
            assert_eq!(decompress(&compress(s)).unwrap(), s);
        }
    }

    #[test]
    fn roundtrip_repetitive_compresses() {
        let data = b"the quick brown fox ".repeat(500);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(
            c.len() < data.len() / 3,
            "repetitive text should compress well: {} vs {}",
            c.len(),
            data.len()
        );
    }

    #[test]
    fn roundtrip_overlapping_match() {
        // "aaaa..." exercises overlapping copies.
        let data = vec![b'a'; 10_000];
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < 2000);
    }

    #[test]
    fn roundtrip_random_bytes() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u8> = (0..64 * 1024).map(|_| rng.gen()).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_stream_is_error() {
        let data = b"some compressible data some compressible data".to_vec();
        let c = compress(&data);
        for cut in [0, 1, 3, c.len() / 2, c.len() - 1] {
            let r = decompress(&c[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn absurd_length_header_rejected() {
        // A bit-flipped header claiming ~4 GB of output must fail fast with
        // a typed error instead of attempting the allocation.
        let buf = [0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00];
        assert_eq!(decompress(&buf), Err(DecompressError::LengthMismatch));
    }

    #[test]
    fn bad_distance_detected() {
        // Header says 4 bytes, first token claims a match at distance > 0 output.
        let mut buf = vec![4, 0, 0, 0];
        buf.push(0b0000_0001); // first token is a match
        buf.extend_from_slice(&0u16.to_le_bytes()); // dist=1 with empty output
        assert_eq!(decompress(&buf), Err(DecompressError::BadDistance));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn prop_roundtrip_texty(words in proptest::collection::vec("[a-e ]{1,12}", 0..200)) {
            let data = words.concat().into_bytes();
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }
    }
}
