//! On-disk collection store.
//!
//! A generated collection lives in a directory: one LZSS-compressed
//! container file per "crawl file" plus a JSON manifest recording the spec
//! and Table III-style statistics. The pipeline's read scheduler hands whole
//! files to parsers, exactly as the paper's scheduler serializes reads of
//! ClueWeb09 WARC files.

use crate::compress;
use crate::container;
use crate::doc::RawDocument;
use crate::fault::{FaultPlan, IngestError};
use crate::synth::{CollectionGenerator, CollectionSpec, CollectionStats};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Manifest written beside the container files.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Manifest {
    /// The spec the collection was generated from.
    pub spec: CollectionSpec,
    /// Statistics gathered during generation.
    pub stats: CollectionStats,
    /// Per-file compressed sizes in bytes (read-cost modeling input).
    pub file_compressed_bytes: Vec<u64>,
    /// Per-file uncompressed sizes in bytes.
    pub file_uncompressed_bytes: Vec<u64>,
}

/// A collection materialized on disk.
pub struct StoredCollection {
    dir: PathBuf,
    /// Parsed manifest.
    pub manifest: Manifest,
    /// Optional fault-injection plan consulted on every raw read.
    faults: Option<FaultPlan>,
}

impl StoredCollection {
    /// Generate a collection from `spec` into `dir` (created if needed).
    /// Returns the stored collection with its gathered statistics.
    pub fn generate(spec: CollectionSpec, dir: &Path) -> io::Result<StoredCollection> {
        fs::create_dir_all(dir)?;
        let gen = CollectionGenerator::new(spec.clone());
        let mut stats = CollectionStats::default();
        let mut file_c = Vec::with_capacity(spec.num_files);
        let mut file_u = Vec::with_capacity(spec.num_files);
        // Distinct-term tracking via a bitset over vocabulary ranks would
        // miss punctuation-split artifacts; instead count distinct surface
        // tokens exactly with a hash set of the generator vocabulary terms
        // actually emitted. We track ranks while generating text, which is
        // what the generator samples.
        let mut seen = vec![false; spec.vocab_size];
        for f in 0..spec.num_files {
            let docs = gen.generate_file(f);
            for d in &docs {
                stats.documents += 1;
                for tok in d.body.split_whitespace() {
                    // Surface token statistics; HTML wrapper tokens excluded
                    // by only counting for text collections. HTML stats are
                    // approximated from the embedded text either way.
                    let _ = tok;
                }
            }
            // Token/term statistics come from the raw token stream the
            // generator sampled; re-derive it deterministically.
            let (tokens, ranks) = regenerate_token_stats(&gen, f);
            stats.tokens += tokens;
            for r in ranks {
                seen[r] = true;
            }
            let raw = container::write_container(&docs);
            let packed = compress::compress(&raw);
            stats.uncompressed_bytes += raw.len() as u64;
            stats.compressed_bytes += packed.len() as u64;
            file_u.push(raw.len() as u64);
            file_c.push(packed.len() as u64);
            fs::write(dir.join(file_name(f)), &packed)?;
        }
        stats.distinct_terms = seen.iter().filter(|&&b| b).count() as u64;
        let manifest = Manifest {
            spec,
            stats,
            file_compressed_bytes: file_c,
            file_uncompressed_bytes: file_u,
        };
        fs::write(dir.join("manifest.json"), serde_json::to_vec_pretty(&manifest)?)?;
        Ok(StoredCollection { dir: dir.to_path_buf(), manifest, faults: None })
    }

    /// Open an existing collection directory.
    pub fn open(dir: &Path) -> io::Result<StoredCollection> {
        let manifest: Manifest =
            serde_json::from_slice(&fs::read(dir.join("manifest.json"))?)?;
        Ok(StoredCollection { dir: dir.to_path_buf(), manifest, faults: None })
    }

    /// Attach a fault-injection plan: every subsequent raw read consults it.
    /// Used by the chaos tests to exercise the pipeline's recovery paths.
    pub fn with_faults(mut self, plan: FaultPlan) -> StoredCollection {
        self.faults = Some(plan);
        self
    }

    /// The attached fault-injection plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Number of container files.
    pub fn num_files(&self) -> usize {
        self.manifest.spec.num_files
    }

    /// Path of container file `idx`.
    pub fn file_path(&self, idx: usize) -> PathBuf {
        self.dir.join(file_name(idx))
    }

    /// Read the raw (compressed) bytes of file `idx` — the unit the read
    /// scheduler transfers. If a fault plan is attached, the bytes (or the
    /// error) are whatever the injected fault dictates.
    pub fn read_file_raw(&self, idx: usize) -> io::Result<Vec<u8>> {
        let bytes = fs::read(self.file_path(idx))?;
        match &self.faults {
            Some(plan) => plan.apply_read(idx, bytes),
            None => Ok(bytes),
        }
    }

    /// Read and fully decode file `idx` into documents (read + decompress +
    /// container parse), with each stage's failure typed so callers can
    /// distinguish transient I/O faults from permanent corruption.
    pub fn read_file(&self, idx: usize) -> Result<Vec<RawDocument>, IngestError> {
        let packed = self.read_file_raw(idx)?;
        let raw = compress::decompress(&packed)?;
        Ok(container::parse_container(&raw)?)
    }

    /// Read and fully decode file `idx` into documents. Convenience wrapper
    /// over [`Self::read_file`] that flattens the error into `io::Error`.
    pub fn read_file_docs(&self, idx: usize) -> io::Result<Vec<RawDocument>> {
        self.read_file(idx).map_err(|e| match e {
            IngestError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })
    }
}

fn file_name(idx: usize) -> String {
    format!("file_{idx:05}.iic")
}

/// Re-sample the token rank stream for a file to gather statistics without
/// holding all document text. Mirrors `CollectionGenerator::generate_file`'s
/// sampling exactly (same seed derivation, same draw order).
fn regenerate_token_stats(gen: &CollectionGenerator, file_idx: usize) -> (u64, Vec<usize>) {
    // Cheap approach: re-generate the file and split the text. Since the
    // generator is deterministic this is exact for text collections and for
    // the embedded text of HTML collections.
    let docs = gen.generate_file(file_idx);
    let mut tokens = 0u64;
    let mut ranks = Vec::new();
    let vocab = gen.vocabulary();
    // Build a lookup from term -> rank once per call (file granularity keeps
    // this out of inner loops).
    let map: std::collections::HashMap<&str, usize> =
        vocab.terms().iter().enumerate().map(|(i, t)| (t.as_str(), i)).collect();
    for d in &docs {
        for tok in d
            .body
            .split(|c: char| c.is_whitespace() || c == '<' || c == '>')
            .filter(|t| !t.is_empty())
        {
            let t = tok.trim_matches(|c: char| c == '.' || c == ',');
            if let Some(&r) = map.get(t) {
                tokens += 1;
                ranks.push(r);
            }
        }
    }
    ranks.sort_unstable();
    ranks.dedup();
    (tokens, ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = env::temp_dir().join(format!("ii-corpus-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn generate_open_roundtrip() {
        let dir = tmpdir("roundtrip");
        let spec = CollectionSpec::tiny(21);
        let stored = StoredCollection::generate(spec.clone(), &dir).unwrap();
        assert_eq!(stored.num_files(), spec.num_files);
        let reopened = StoredCollection::open(&dir).unwrap();
        assert_eq!(reopened.manifest.spec, spec);
        assert_eq!(reopened.manifest.stats, stored.manifest.stats);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn files_decode_to_expected_docs() {
        let dir = tmpdir("decode");
        let spec = CollectionSpec::tiny(22);
        let stored = StoredCollection::generate(spec.clone(), &dir).unwrap();
        let gen = CollectionGenerator::new(spec.clone());
        for f in 0..spec.num_files {
            assert_eq!(stored.read_file_docs(f).unwrap(), gen.generate_file(f));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_plan_hooks_into_reads() {
        use crate::fault::{FaultKind, FaultPlan};
        let dir = tmpdir("faulty");
        let spec = CollectionSpec::tiny(24);
        StoredCollection::generate(spec, &dir).unwrap();
        let stored = StoredCollection::open(&dir)
            .unwrap()
            .with_faults(
                FaultPlan::new(5)
                    .with_fault(0, FaultKind::TransientRead { failures: 1 })
                    .with_fault(1, FaultKind::Garbage),
            );
        // File 0: first read fails transiently, second succeeds.
        let first = stored.read_file(0);
        assert!(matches!(&first, Err(e) if e.is_transient()), "{first:?}");
        assert!(stored.read_file(0).is_ok());
        // File 1: permanently corrupt.
        let bad = stored.read_file(1);
        assert!(matches!(&bad, Err(e) if !e.is_transient()), "{bad:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_are_plausible() {
        let dir = tmpdir("stats");
        let spec = CollectionSpec::tiny(23);
        let stored = StoredCollection::generate(spec.clone(), &dir).unwrap();
        let s = &stored.manifest.stats;
        assert_eq!(s.documents as usize, spec.total_docs());
        assert!(s.tokens > 0);
        assert!(s.distinct_terms > 0 && s.distinct_terms <= spec.vocab_size as u64);
        assert!(s.uncompressed_bytes > 0);
        assert!(s.compressed_bytes > 0);
        assert!(
            s.compressed_bytes < s.uncompressed_bytes,
            "text should compress: {} vs {}",
            s.compressed_bytes,
            s.uncompressed_bytes
        );
        assert_eq!(stored.manifest.file_compressed_bytes.len(), spec.num_files);
        fs::remove_dir_all(&dir).unwrap();
    }
}
