//! # ii-corpus — document-collection substrate
//!
//! Synthetic stand-ins for the paper's ClueWeb09 / Wikipedia / Library of
//! Congress collections: Zipf-distributed vocabularies, deterministic
//! document generation (HTML or plain text), an LZSS codec for the
//! compressed-on-disk ingest path, a container file format, and an on-disk
//! store with Table III-style statistics.
//!
//! See DESIGN.md §2 for why each substitution preserves the behaviour the
//! indexing algorithm depends on.

#![warn(missing_docs)]

pub mod analysis;
pub mod compress;
pub mod container;
pub mod doc;
pub mod fault;
pub mod store;
pub mod synth;
pub mod vocab;
pub mod zipf;

pub use analysis::{fit_heaps, fit_zipf, vocabulary_growth, GrowthPoint};
pub use doc::{DocId, RawDocument};
pub use fault::{FaultKind, FaultPlan, IngestError};
pub use store::{Manifest, StoredCollection};
pub use synth::{CollectionGenerator, CollectionSpec, CollectionStats, DistributionShift};
pub use vocab::Vocabulary;
pub use zipf::Zipf;
