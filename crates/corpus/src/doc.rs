//! Document and identifier types shared across the workspace.

/// Global document identifier. The paper assigns *local* IDs inside each
/// parser and adds a global offset in the indexer (§III.C); both layers use
/// this type, with the context determining whether it is local or global.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DocId(pub u32);

impl DocId {
    /// Apply the global offset computed by the indexer for a parser batch.
    pub fn with_offset(self, offset: u32) -> DocId {
        DocId(self.0 + offset)
    }
}

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A raw document as read from a collection container file, before parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawDocument {
    /// Source URL (or synthetic identifier).
    pub url: String,
    /// Uninterpreted body text (HTML or plain text).
    pub body: String,
}

impl RawDocument {
    /// Total stored size in bytes (url + body), the unit used for the
    /// paper's "uncompressed size" statistics.
    pub fn stored_len(&self) -> usize {
        self.url.len() + self.body.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn docid_offset() {
        assert_eq!(DocId(5).with_offset(100), DocId(105));
        assert_eq!(DocId(0).with_offset(0), DocId(0));
    }

    #[test]
    fn docid_display_and_order() {
        assert_eq!(DocId(7).to_string(), "7");
        assert!(DocId(3) < DocId(10));
    }

    #[test]
    fn stored_len_counts_url_and_body() {
        let d = RawDocument { url: "http://x".into(), body: "hello".into() };
        assert_eq!(d.stored_len(), 8 + 5);
    }
}
