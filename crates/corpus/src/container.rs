//! Container file format for document collections.
//!
//! ClueWeb09 packs ~1 GB of web pages into each WARC file; the paper's read
//! scheduler hands whole files to parsers. We use an analogous self-contained
//! format: a magic header, a document count, then length-prefixed
//! (url, body) records. Containers are stored LZSS-compressed on disk.

use crate::doc::RawDocument;

/// Four-byte magic at the start of every (uncompressed) container.
pub const MAGIC: &[u8; 4] = b"IIC1";

/// Errors from [`parse_container`].
#[derive(Debug, PartialEq, Eq)]
pub enum ContainerError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Buffer ended before the advertised records were read.
    Truncated,
    /// A record's text was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "bad container magic"),
            ContainerError::Truncated => write!(f, "container truncated"),
            ContainerError::BadUtf8 => write!(f, "container record not UTF-8"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// Serialize documents into an uncompressed container buffer.
pub fn write_container(docs: &[RawDocument]) -> Vec<u8> {
    let payload: usize = docs.iter().map(|d| 8 + d.url.len() + d.body.len()).sum();
    let mut out = Vec::with_capacity(8 + payload);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(docs.len() as u32).to_le_bytes());
    for d in docs {
        out.extend_from_slice(&(d.url.len() as u32).to_le_bytes());
        out.extend_from_slice(&(d.body.len() as u32).to_le_bytes());
        out.extend_from_slice(d.url.as_bytes());
        out.extend_from_slice(d.body.as_bytes());
    }
    out
}

/// Parse an uncompressed container buffer back into documents.
pub fn parse_container(buf: &[u8]) -> Result<Vec<RawDocument>, ContainerError> {
    if buf.len() < 8 || &buf[..4] != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let n = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    let mut docs = Vec::with_capacity(n);
    let mut i = 8usize;
    for _ in 0..n {
        if i + 8 > buf.len() {
            return Err(ContainerError::Truncated);
        }
        let ulen = u32::from_le_bytes([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]]) as usize;
        let blen =
            u32::from_le_bytes([buf[i + 4], buf[i + 5], buf[i + 6], buf[i + 7]]) as usize;
        i += 8;
        if i + ulen + blen > buf.len() {
            return Err(ContainerError::Truncated);
        }
        let url = std::str::from_utf8(&buf[i..i + ulen])
            .map_err(|_| ContainerError::BadUtf8)?
            .to_string();
        i += ulen;
        let body = std::str::from_utf8(&buf[i..i + blen])
            .map_err(|_| ContainerError::BadUtf8)?
            .to_string();
        i += blen;
        docs.push(RawDocument { url, body });
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn doc(url: &str, body: &str) -> RawDocument {
        RawDocument { url: url.into(), body: body.into() }
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(parse_container(&write_container(&[])).unwrap(), vec![]);
    }

    #[test]
    fn roundtrip_docs() {
        let docs = vec![doc("http://a", "body one"), doc("http://b", ""), doc("", "x")];
        assert_eq!(parse_container(&write_container(&docs)).unwrap(), docs);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(parse_container(b"NOPE\0\0\0\0"), Err(ContainerError::BadMagic));
        assert_eq!(parse_container(b"II"), Err(ContainerError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let buf = write_container(&[doc("http://a", "hello world")]);
        for cut in 8..buf.len() {
            assert_eq!(parse_container(&buf[..cut]), Err(ContainerError::Truncated));
        }
    }

    #[test]
    fn utf8_enforced() {
        let mut buf = write_container(&[doc("u", "abcd")]);
        let body_start = buf.len() - 4;
        buf[body_start] = 0xFF;
        assert_eq!(parse_container(&buf), Err(ContainerError::BadUtf8));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(docs in proptest::collection::vec(
            ("[a-z:/._]{0,40}", "(?s).{0,200}").prop_map(|(u, b)| RawDocument { url: u, body: b }),
            0..20,
        )) {
            let buf = write_container(&docs);
            prop_assert_eq!(parse_container(&buf).unwrap(), docs);
        }
    }
}
