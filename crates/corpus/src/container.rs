//! Container file format for document collections.
//!
//! ClueWeb09 packs ~1 GB of web pages into each WARC file; the paper's read
//! scheduler hands whole files to parsers. We use an analogous self-contained
//! format: a magic header, a document count, then length-prefixed
//! (url, body) records, ending in a CRC32 checksum footer. Containers are
//! stored LZSS-compressed on disk.
//!
//! The footer (`IICC` tag + CRC32 of everything before it) detects silent
//! corruption — bit flips that survive decompression without tripping a
//! structural error. Containers written before the footer existed parse
//! unchanged: a buffer that does not end in the tag is treated as a legacy
//! checksum-less container.

use crate::doc::RawDocument;

/// Four-byte magic at the start of every (uncompressed) container.
pub const MAGIC: &[u8; 4] = b"IIC1";

/// Four-byte tag introducing the CRC32 checksum footer.
pub const FOOTER_MAGIC: &[u8; 4] = b"IICC";

/// Errors from [`parse_container`].
#[derive(Debug, PartialEq, Eq)]
pub enum ContainerError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Buffer ended before the advertised records were read.
    Truncated,
    /// A record's text was not valid UTF-8.
    BadUtf8,
    /// The footer CRC32 does not match the container contents.
    ChecksumMismatch,
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "bad container magic"),
            ContainerError::Truncated => write!(f, "container truncated"),
            ContainerError::BadUtf8 => write!(f, "container record not UTF-8"),
            ContainerError::ChecksumMismatch => write!(f, "container checksum mismatch"),
        }
    }
}

impl std::error::Error for ContainerError {}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// CRC32 (IEEE 802.3 polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Serialize documents into an uncompressed container buffer.
pub fn write_container(docs: &[RawDocument]) -> Vec<u8> {
    let payload: usize = docs.iter().map(|d| 8 + d.url.len() + d.body.len()).sum();
    let mut out = Vec::with_capacity(8 + payload);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(docs.len() as u32).to_le_bytes());
    for d in docs {
        out.extend_from_slice(&(d.url.len() as u32).to_le_bytes());
        out.extend_from_slice(&(d.body.len() as u32).to_le_bytes());
        out.extend_from_slice(d.url.as_bytes());
        out.extend_from_slice(d.body.as_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(FOOTER_MAGIC);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parse an uncompressed container buffer back into documents.
///
/// If the buffer ends in a checksum footer, the CRC is verified *before*
/// record parsing so silent corruption surfaces as
/// [`ContainerError::ChecksumMismatch`]. Buffers without the footer are
/// accepted as legacy checksum-less containers.
pub fn parse_container(buf: &[u8]) -> Result<Vec<RawDocument>, ContainerError> {
    let buf = if buf.len() >= 16 && &buf[buf.len() - 8..buf.len() - 4] == FOOTER_MAGIC {
        let body = &buf[..buf.len() - 8];
        let stored = u32::from_le_bytes([
            buf[buf.len() - 4],
            buf[buf.len() - 3],
            buf[buf.len() - 2],
            buf[buf.len() - 1],
        ]);
        if crc32(body) != stored {
            return Err(ContainerError::ChecksumMismatch);
        }
        body
    } else {
        buf // legacy checksum-less container
    };
    if buf.len() < 8 || &buf[..4] != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let n = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    let mut docs = Vec::with_capacity(n);
    let mut i = 8usize;
    for _ in 0..n {
        if i + 8 > buf.len() {
            return Err(ContainerError::Truncated);
        }
        let ulen = u32::from_le_bytes([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]]) as usize;
        let blen =
            u32::from_le_bytes([buf[i + 4], buf[i + 5], buf[i + 6], buf[i + 7]]) as usize;
        i += 8;
        if i + ulen + blen > buf.len() {
            return Err(ContainerError::Truncated);
        }
        let url = std::str::from_utf8(&buf[i..i + ulen])
            .map_err(|_| ContainerError::BadUtf8)?
            .to_string();
        i += ulen;
        let body = std::str::from_utf8(&buf[i..i + blen])
            .map_err(|_| ContainerError::BadUtf8)?
            .to_string();
        i += blen;
        docs.push(RawDocument { url, body });
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn doc(url: &str, body: &str) -> RawDocument {
        RawDocument { url: url.into(), body: body.into() }
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(parse_container(&write_container(&[])).unwrap(), vec![]);
    }

    #[test]
    fn roundtrip_docs() {
        let docs = vec![doc("http://a", "body one"), doc("http://b", ""), doc("", "x")];
        assert_eq!(parse_container(&write_container(&docs)).unwrap(), docs);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(parse_container(b"NOPE\0\0\0\0"), Err(ContainerError::BadMagic));
        assert_eq!(parse_container(b"II"), Err(ContainerError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let buf = write_container(&[doc("http://a", "hello world")]);
        let records_end = buf.len() - 8; // checksum footer follows the records
        for cut in 8..records_end {
            assert_eq!(parse_container(&buf[..cut]), Err(ContainerError::Truncated));
        }
        // Cutting inside the footer leaves intact records with trailing
        // garbage, which the legacy-tolerant path accepts.
        for cut in records_end..buf.len() {
            assert!(parse_container(&buf[..cut]).is_ok());
        }
    }

    #[test]
    fn utf8_enforced() {
        // Use the legacy (footer-less) form so the corruption reaches the
        // UTF-8 check instead of tripping the checksum first.
        let mut buf = write_container(&[doc("u", "abcd")]);
        buf.truncate(buf.len() - 8);
        let body_start = buf.len() - 4;
        buf[body_start] = 0xFF;
        assert_eq!(parse_container(&buf), Err(ContainerError::BadUtf8));
    }

    #[test]
    fn checksum_detects_any_payload_corruption() {
        let buf = write_container(&[doc("http://a", "some body text")]);
        // Every byte before the footer tag is covered by the CRC.
        for i in 0..buf.len() - 8 {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                parse_container(&bad),
                Err(ContainerError::ChecksumMismatch),
                "corruption at byte {i} undetected"
            );
        }
        // Corrupting the stored CRC itself is also a mismatch.
        let mut bad = buf.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x01;
        assert_eq!(parse_container(&bad), Err(ContainerError::ChecksumMismatch));
    }

    #[test]
    fn legacy_footerless_containers_still_parse() {
        let docs = vec![doc("http://a", "legacy body"), doc("http://b", "x")];
        let mut buf = write_container(&docs);
        buf.truncate(buf.len() - 8); // what the pre-checksum writer produced
        assert_eq!(parse_container(&buf).unwrap(), docs);
    }

    #[test]
    fn crc32_known_vector() {
        // The IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(docs in proptest::collection::vec(
            ("[a-z:/._]{0,40}", "(?s).{0,200}").prop_map(|(u, b)| RawDocument { url: u, body: b }),
            0..20,
        )) {
            let buf = write_container(&docs);
            prop_assert_eq!(parse_container(&buf).unwrap(), docs);
        }
    }
}
