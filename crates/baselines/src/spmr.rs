//! Single-Pass MapReduce indexing (McCreadie et al. [8]).
//!
//! Map workers build *partial postings lists* per input split and emit
//! `<term, partial list>` once per term per split — far fewer emits than
//! one per posting, and duplicate term strings cross the shuffle less
//! often. Reducers merge each term's partial lists (sorted by the split's
//! document range) into the final list.

use crate::ivory::{doc_terms, BaselineIndex};
use crate::mapreduce::{run_job, MapReduceConfig, MapReduceStats};
use ii_corpus::{DocId, RawDocument};
use ii_postings::{Posting, PostingsList};
use std::collections::HashMap;

/// Index `splits` with the single-pass (partial postings list) algorithm.
pub fn spmr_index(
    splits: &[Vec<RawDocument>],
    html: bool,
    cfg: MapReduceConfig,
) -> (BaselineIndex, MapReduceStats) {
    let mut bases = Vec::with_capacity(splits.len());
    let mut next = 0u32;
    for s in splits {
        bases.push(next);
        next += s.len() as u32;
    }
    let (outputs, stats) = run_job(
        cfg,
        splits,
        |split_idx, docs: &Vec<RawDocument>, emit| {
            // Build this split's partial lists in memory (single pass).
            let mut partial: HashMap<String, Vec<Posting>> = HashMap::new();
            for (local, d) in docs.iter().enumerate() {
                let doc_id = bases[split_idx] + local as u32;
                let mut tf: HashMap<String, u32> = HashMap::new();
                for t in doc_terms(d, html) {
                    *tf.entry(t).or_insert(0) += 1;
                }
                for (term, f) in tf {
                    partial
                        .entry(term)
                        .or_default()
                        .push(Posting { doc: DocId(doc_id), tf: f });
                }
            }
            // One emit per term per split: (term, (split order key, list)).
            for (term, mut posts) in partial {
                posts.sort_by_key(|p| p.doc);
                emit(term, (split_idx, posts));
            }
        },
        |_term, mut vals: Vec<(usize, Vec<Posting>)>| {
            // Merge partial lists in split order (split doc ranges are
            // disjoint and increasing).
            vals.sort_by_key(|(split, _)| *split);
            let mut list = PostingsList::new();
            for (_, posts) in vals {
                for p in posts {
                    list.push(p);
                }
            }
            list
        },
    );
    let mut index = BaselineIndex::default();
    for part in outputs {
        for (term, list) in part {
            index.postings.insert(term, list);
        }
    }
    (index, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivory::ivory_index;

    fn doc(body: &str) -> RawDocument {
        RawDocument { url: String::new(), body: body.into() }
    }

    #[test]
    fn spmr_matches_ivory() {
        let splits = vec![
            vec![doc("alpha beta alpha"), doc("gamma")],
            vec![doc("beta beta delta alpha")],
            vec![doc("gamma alpha")],
        ];
        let (a, _) = spmr_index(&splits, false, MapReduceConfig::default());
        let (b, _) = ivory_index(&splits, false, MapReduceConfig::default());
        assert_eq!(a.len(), b.len());
        for (term, list) in &a.postings {
            assert_eq!(Some(list), b.get(term), "term {term}");
        }
    }

    #[test]
    fn fewer_emits_than_ivory() {
        // The algorithm's selling point: one emit per (term, split) rather
        // than per (term, doc).
        let splits = vec![vec![
            doc("zebra quilt zebra"),
            doc("zebra quilt"),
            doc("zebra"),
        ]];
        let (_, sp) = spmr_index(&splits, false, MapReduceConfig::default());
        let (_, iv) = ivory_index(&splits, false, MapReduceConfig::default());
        assert!(sp.pairs_emitted < iv.pairs_emitted, "{} vs {}", sp.pairs_emitted, iv.pairs_emitted);
        assert_eq!(sp.pairs_emitted, 2); // zebra + quilt, once each
    }
}
