//! Ivory MapReduce indexing (Lin et al. [9]).
//!
//! The scalable trick: instead of `<term, posting>` pairs, emit
//! `<(term, docID), tf>` — at most one value per key, and because the
//! framework delivers keys to each reducer in sorted order, postings
//! arrive at the reducer already ordered by (term, docID) and "can be
//! immediately appended to the postings list without any post processing".

use crate::mapreduce::{run_job, MapReduceConfig, MapReduceStats};
use ii_corpus::{DocId, RawDocument};
use ii_postings::{Posting, PostingsList};
use std::collections::HashMap;

/// The output of a baseline indexing job: term → full postings list.
#[derive(Debug, Default)]
pub struct BaselineIndex {
    /// Postings per term.
    pub postings: HashMap<String, PostingsList>,
}

impl BaselineIndex {
    /// Distinct terms.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Postings list for a (stemmed) term.
    pub fn get(&self, term: &str) -> Option<&PostingsList> {
        self.postings.get(term)
    }
}

/// Tokenize + stem + stop-word-remove one document into surface terms (the
/// same text processing the main system's parsers run; baselines share it
/// so the comparison isolates the indexing strategy).
pub fn doc_terms(doc: &RawDocument, html: bool) -> Vec<String> {
    let text: std::borrow::Cow<'_, str> =
        if html { ii_text::html::strip_tags(&doc.body).into() } else { (&doc.body).into() };
    let mut out = Vec::new();
    let mut it = ii_text::tokenize::tokens(&text);
    while let Some(tok) = it.next_token() {
        let stemmed = ii_text::stem(tok);
        if !ii_text::is_stop_word(&stemmed) {
            out.push(stemmed.into_owned());
        }
    }
    out
}

/// Index `docs` (one input split per `Vec<RawDocument>`) with the Ivory
/// algorithm. Document IDs are global positions in split order.
pub fn ivory_index(
    splits: &[Vec<RawDocument>],
    html: bool,
    cfg: MapReduceConfig,
) -> (BaselineIndex, MapReduceStats) {
    // Global doc-ID base per split.
    let mut bases = Vec::with_capacity(splits.len());
    let mut next = 0u32;
    for s in splits {
        bases.push(next);
        next += s.len() as u32;
    }
    let (outputs, stats) = run_job(
        cfg,
        splits,
        |split_idx, docs: &Vec<RawDocument>, emit| {
            for (local, d) in docs.iter().enumerate() {
                let doc_id = bases[split_idx] + local as u32;
                // Per-document tf aggregation before emitting.
                let mut tf: HashMap<String, u32> = HashMap::new();
                for t in doc_terms(d, html) {
                    *tf.entry(t).or_insert(0) += 1;
                }
                for (term, f) in tf {
                    emit((term, doc_id), f);
                }
            }
        },
        |_key, vals: Vec<u32>| {
            debug_assert_eq!(vals.len(), 1, "at most one value per (term, doc) key");
            vals[0]
        },
    );
    // Keys reach each reducer sorted by (term, doc): postings append
    // directly. Partitions are disjoint by key hash of the *pair*, so a
    // term's postings may span partitions — gather by term, then merge the
    // (already sorted) runs.
    let mut index = BaselineIndex::default();
    let mut per_term: HashMap<String, Vec<Posting>> = HashMap::new();
    for part in outputs {
        for ((term, doc), tf) in part {
            per_term.entry(term).or_default().push(Posting { doc: DocId(doc), tf });
        }
    }
    for (term, mut posts) in per_term {
        posts.sort_by_key(|p| p.doc);
        index.postings.insert(term, posts.into_iter().collect());
    }
    (index, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(body: &str) -> RawDocument {
        RawDocument { url: String::new(), body: body.into() }
    }

    #[test]
    fn ivory_builds_correct_postings() {
        let splits = vec![
            vec![doc("zebra zebra quilt"), doc("zebra")],
            vec![doc("quilt the quilt")],
        ];
        let (idx, stats) = ivory_index(&splits, false, MapReduceConfig::default());
        assert_eq!(idx.len(), 2);
        let z = idx.get("zebra").unwrap();
        let zd: Vec<(u32, u32)> = z.postings().iter().map(|p| (p.doc.0, p.tf)).collect();
        assert_eq!(zd, vec![(0, 2), (1, 1)]);
        let q = idx.get("quilt").unwrap();
        let qd: Vec<(u32, u32)> = q.postings().iter().map(|p| (p.doc.0, p.tf)).collect();
        assert_eq!(qd, vec![(0, 1), (2, 2)]);
        assert!(idx.get("the").is_none(), "stop words removed");
        assert!(stats.pairs_emitted >= 4);
    }

    #[test]
    fn one_pair_per_term_doc() {
        // The algorithmic point: emits are (term, doc)-unique.
        let splits = vec![vec![doc("aaa aaa aaa aaa")]];
        let (_, stats) = ivory_index(&splits, false, MapReduceConfig::default());
        assert_eq!(stats.pairs_emitted, 1);
    }
}
