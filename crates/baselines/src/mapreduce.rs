//! A minimal in-process MapReduce runtime (Dean & Ghemawat [7]).
//!
//! The Fig 12 comparison needs the two fastest published indexers — Ivory
//! MapReduce [9] and Single-Pass MapReduce [8] — which are MapReduce
//! programs. This runtime supplies the framework semantics they rely on:
//! map workers over input splits, hash partitioning of emitted pairs,
//! per-partition sort by key (values grouped, keys arriving at each
//! reducer in order), and reduce workers per partition. Map and reduce
//! phases run on real threads; stage times are measured so the Fig 12
//! harness can derive per-core throughput.

use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Worker counts for a job.
#[derive(Clone, Copy, Debug)]
pub struct MapReduceConfig {
    /// Parallel map workers.
    pub map_workers: usize,
    /// Reduce partitions (each handled by one worker).
    pub reduce_workers: usize,
}

impl Default for MapReduceConfig {
    fn default() -> Self {
        MapReduceConfig { map_workers: 2, reduce_workers: 2 }
    }
}

/// Measured stage times and traffic of one job.
#[derive(Clone, Copy, Debug, Default)]
pub struct MapReduceStats {
    /// Wall seconds of the map phase.
    pub map_seconds: f64,
    /// Wall seconds of the shuffle (partition + sort) phase.
    pub shuffle_seconds: f64,
    /// Wall seconds of the reduce phase.
    pub reduce_seconds: f64,
    /// Key/value pairs emitted by mappers.
    pub pairs_emitted: u64,
}

impl MapReduceStats {
    /// Total job seconds.
    pub fn total_seconds(&self) -> f64 {
        self.map_seconds + self.shuffle_seconds + self.reduce_seconds
    }
}

fn partition_of<K: Hash>(key: &K, n: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % n
}

/// Run a MapReduce job.
///
/// * `inputs` — one element per input split, consumed in order by map
///   workers (split `i` goes to worker `i % map_workers`).
/// * `mapper` — called once per split with an `emit(key, value)` closure.
/// * `reducer` — called once per distinct key with all its values, in
///   ascending key order within each partition (the framework guarantee
///   Ivory's algorithm depends on).
///
/// Returns the reduce outputs grouped by partition (keys sorted within
/// each) and the measured stage statistics.
pub fn run_job<I, K, V, R, M, F>(
    cfg: MapReduceConfig,
    inputs: &[I],
    mapper: M,
    reducer: F,
) -> (Vec<Vec<(K, R)>>, MapReduceStats)
where
    I: Sync,
    K: Ord + Hash + Clone + Send,
    V: Send,
    R: Send,
    M: Fn(usize, &I, &mut dyn FnMut(K, V)) + Sync,
    F: Fn(&K, Vec<V>) -> R + Sync,
{
    assert!(cfg.map_workers >= 1 && cfg.reduce_workers >= 1);
    let mut stats = MapReduceStats::default();

    // ---- map phase ----
    let t0 = Instant::now();
    let emitted: Vec<Vec<(K, V)>> = std::thread::scope(|s| {
        let mapper = &mapper;
        let handles: Vec<_> = (0..cfg.map_workers)
            .map(|w| {
                s.spawn(move || {
                    let mut out: Vec<(K, V)> = Vec::new();
                    let mut split = w;
                    while split < inputs.len() {
                        mapper(split, &inputs[split], &mut |k, v| out.push((k, v)));
                        split += cfg.map_workers;
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("map worker")).collect()
    });
    stats.map_seconds = t0.elapsed().as_secs_f64();
    stats.pairs_emitted = emitted.iter().map(|v| v.len() as u64).sum();

    // ---- shuffle: partition by key hash, then sort each partition ----
    let t0 = Instant::now();
    let mut partitions: Vec<Vec<(K, V)>> = (0..cfg.reduce_workers).map(|_| Vec::new()).collect();
    for worker_out in emitted {
        for (k, v) in worker_out {
            let p = partition_of(&k, cfg.reduce_workers);
            partitions[p].push((k, v));
        }
    }
    for p in &mut partitions {
        p.sort_by(|a, b| a.0.cmp(&b.0));
    }
    stats.shuffle_seconds = t0.elapsed().as_secs_f64();

    // ---- reduce phase ----
    let t0 = Instant::now();
    let outputs: Vec<Vec<(K, R)>> = std::thread::scope(|s| {
        let reducer = &reducer;
        let handles: Vec<_> = partitions
            .into_iter()
            .map(|part| {
                s.spawn(move || {
                    let mut out: Vec<(K, R)> = Vec::new();
                    let mut it = part.into_iter().peekable();
                    while let Some((k, v)) = it.next() {
                        let mut vals = vec![v];
                        while it.peek().is_some_and(|(nk, _)| *nk == k) {
                            vals.push(it.next().unwrap().1);
                        }
                        let r = reducer(&k, vals);
                        out.push((k, r));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("reduce worker")).collect()
    });
    stats.reduce_seconds = t0.elapsed().as_secs_f64();
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count() {
        let docs = ["a b a", "b b c", "a"];
        let (out, stats) = run_job(
            MapReduceConfig { map_workers: 2, reduce_workers: 2 },
            &docs,
            |_i, doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1u32);
                }
            },
            |_k, vals| vals.iter().sum::<u32>(),
        );
        let mut flat: Vec<(String, u32)> = out.into_iter().flatten().collect();
        flat.sort();
        assert_eq!(
            flat,
            vec![("a".into(), 3), ("b".into(), 3), ("c".into(), 1)]
        );
        assert_eq!(stats.pairs_emitted, 7);
        assert!(stats.total_seconds() > 0.0);
    }

    #[test]
    fn keys_sorted_within_partition() {
        let docs = ["zeta alpha mu", "beta zeta"];
        let (out, _) = run_job(
            MapReduceConfig { map_workers: 1, reduce_workers: 3 },
            &docs,
            |_i, doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), ());
                }
            },
            |_k, vals| vals.len(),
        );
        for part in &out {
            let keys: Vec<&String> = part.iter().map(|(k, _)| k).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted);
        }
    }

    #[test]
    fn same_key_lands_in_one_partition() {
        let docs = vec!["x"; 20];
        let (out, _) = run_job(
            MapReduceConfig { map_workers: 4, reduce_workers: 4 },
            &docs,
            |i, _doc: &&str, emit| emit("x".to_string(), i),
            |_k, vals| vals.len(),
        );
        let hits: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits.len(), 1, "key must not be split across partitions");
        let total: usize = out.iter().flatten().map(|(_, n)| n).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn empty_inputs() {
        let docs: Vec<&str> = vec![];
        let (out, stats) = run_job(
            MapReduceConfig::default(),
            &docs,
            |_i, _d: &&str, _e: &mut dyn FnMut(String, u32)| {},
            |_k, v: Vec<u32>| v.len(),
        );
        assert!(out.iter().all(|p| p.is_empty()));
        assert_eq!(stats.pairs_emitted, 0);
    }
}
