//! # ii-baselines — comparator systems
//!
//! Every algorithm the paper compares against or builds upon, implemented
//! from scratch: a minimal in-process MapReduce runtime [7], Ivory
//! MapReduce indexing [9], Single-Pass MapReduce indexing [8], SPIMI
//! (Heinz-Zobel single-pass in-memory) [4], sort-based inversion
//! (Moffat-Bell) [3], and the serial no-regrouping ablation of §III.C.

#![warn(missing_docs)]

pub mod ivory;
pub mod mapreduce;
pub mod noregroup;
pub mod sortbased;
pub mod spimi;
pub mod spmr;

pub use ivory::{doc_terms, ivory_index, BaselineIndex};
pub use mapreduce::{run_job, MapReduceConfig, MapReduceStats};
pub use noregroup::{index_with_regrouping, index_without_regrouping, SerialIndexResult};
pub use sortbased::sort_based_index;
pub use spimi::spimi_index;
pub use spmr::spmr_index;
