//! Single-pass in-memory indexing, SPIMI (Heinz & Zobel [4]).
//!
//! The strongest *serial* baseline in the paper's background section:
//! accumulate postings in an in-memory hash dictionary until a memory
//! budget is hit, then sort the run's terms, write run + dictionary to
//! (simulated) disk, and finally k-way-merge all runs into the final
//! postings file.

use crate::ivory::{doc_terms, BaselineIndex};
use ii_corpus::{DocId, RawDocument};
use ii_postings::{Posting, PostingsList};
use std::collections::HashMap;

/// One flushed run: terms sorted, each with its partial postings.
#[derive(Debug)]
pub struct SpimiRun {
    /// Sorted `(term, partial postings)` pairs.
    pub entries: Vec<(String, Vec<Posting>)>,
}

/// Statistics from a SPIMI build.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpimiStats {
    /// Runs flushed.
    pub runs: usize,
    /// Total postings written across runs.
    pub postings: u64,
    /// Tokens processed.
    pub tokens: u64,
}

/// Build an index over `docs` with at most `max_terms_in_memory` distinct
/// terms buffered per run.
pub fn spimi_index(
    docs: &[RawDocument],
    html: bool,
    max_terms_in_memory: usize,
) -> (BaselineIndex, SpimiStats) {
    assert!(max_terms_in_memory >= 1);
    let mut stats = SpimiStats::default();
    let mut runs: Vec<SpimiRun> = Vec::new();
    let mut dict: HashMap<String, Vec<Posting>> = HashMap::new();

    let mut flush = |dict: &mut HashMap<String, Vec<Posting>>, stats: &mut SpimiStats| {
        if dict.is_empty() {
            return;
        }
        let mut entries: Vec<(String, Vec<Posting>)> = dict.drain().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        stats.postings += entries.iter().map(|(_, p)| p.len() as u64).sum::<u64>();
        stats.runs += 1;
        runs.push(SpimiRun { entries });
    };

    for (doc_idx, d) in docs.iter().enumerate() {
        let doc_id = DocId(doc_idx as u32);
        for term in doc_terms(d, html) {
            stats.tokens += 1;
            match dict.get_mut(&term) {
                Some(posts) => match posts.last_mut() {
                    Some(last) if last.doc == doc_id => last.tf += 1,
                    _ => posts.push(Posting { doc: doc_id, tf: 1 }),
                },
                None => {
                    if dict.len() >= max_terms_in_memory {
                        flush(&mut dict, &mut stats);
                    }
                    dict.insert(term, vec![Posting { doc: doc_id, tf: 1 }]);
                }
            }
        }
    }
    flush(&mut dict, &mut stats);

    // Final merge of the sorted runs. Runs are in doc order, but a flush
    // can land mid-document, splitting one (term, doc)'s occurrences
    // across two runs — merge must re-aggregate tf for equal doc IDs.
    let mut merged: HashMap<String, Vec<Posting>> = HashMap::new();
    for run in runs {
        for (term, posts) in run.entries {
            let acc = merged.entry(term).or_default();
            for p in posts {
                match acc.last_mut() {
                    Some(last) if last.doc == p.doc => last.tf += p.tf,
                    _ => acc.push(p),
                }
            }
        }
    }
    let mut index = BaselineIndex::default();
    for (term, posts) in merged {
        index.postings.insert(term, posts.into_iter().collect::<PostingsList>());
    }
    (index, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivory::ivory_index;
    use crate::mapreduce::MapReduceConfig;

    fn doc(body: &str) -> RawDocument {
        RawDocument { url: String::new(), body: body.into() }
    }

    #[test]
    fn spimi_correct_with_tiny_memory() {
        let docs = vec![
            doc("alpha beta alpha gamma"),
            doc("beta delta"),
            doc("alpha epsilon beta zeta"),
        ];
        // Force many flushes with a 2-term budget.
        let (idx, stats) = spimi_index(&docs, false, 2);
        assert!(stats.runs > 1, "tiny budget must force multiple runs");
        let (reference, _) =
            ivory_index(std::slice::from_ref(&docs), false, MapReduceConfig::default());
        assert_eq!(idx.len(), reference.len());
        for (term, list) in &reference.postings {
            assert_eq!(idx.get(term), Some(list), "term {term}");
        }
    }

    #[test]
    fn single_run_when_memory_ample() {
        let docs = vec![doc("a few distinct words here")];
        let (_, stats) = spimi_index(&docs, false, 1000);
        assert_eq!(stats.runs, 1);
    }

    #[test]
    fn flush_mid_document_reaggregates_tf() {
        // "x y x" with a 1-term budget flushes x, then y, then re-inserts
        // x for the *same* document; merge must sum the tfs back together.
        let docs = vec![doc("x y x")];
        let (idx, stats) = spimi_index(&docs, false, 1);
        assert!(stats.runs >= 2);
        let x: Vec<(u32, u32)> =
            idx.get("x").unwrap().postings().iter().map(|p| (p.doc.0, p.tf)).collect();
        assert_eq!(x, vec![(0, 2)]);
    }

    #[test]
    fn tf_aggregated_within_doc_across_runs() {
        // A term recurring in a later doc after a flush must not lose tf.
        let docs = vec![doc("x x y"), doc("x")];
        let (idx, _) = spimi_index(&docs, false, 1);
        let x: Vec<(u32, u32)> =
            idx.get("x").unwrap().postings().iter().map(|p| (p.doc.0, p.tf)).collect();
        assert_eq!(x, vec![(0, 2), (1, 1)]);
    }
}
