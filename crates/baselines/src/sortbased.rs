//! Sort-based inversion (Moffat & Bell [3]).
//!
//! The classic limited-memory strategy the paper's background section
//! describes: accumulate `<term-ID, docID, tf>` triples until the memory
//! budget is exhausted, sort the run by (term, doc) and write it out, then
//! k-way-merge all runs into the final postings lists. The term-ID mapping
//! (vocabulary) stays in memory throughout.

use crate::ivory::{doc_terms, BaselineIndex};
use ii_corpus::{DocId, RawDocument};
use ii_postings::{Posting, PostingsList};
use std::collections::HashMap;

/// Statistics from a sort-based build.
#[derive(Clone, Copy, Debug, Default)]
pub struct SortBasedStats {
    /// Runs written.
    pub runs: usize,
    /// Triples sorted across all runs.
    pub triples: u64,
    /// Distinct terms in the vocabulary.
    pub vocabulary: usize,
}

/// Build an index with at most `max_triples_in_memory` buffered triples.
pub fn sort_based_index(
    docs: &[RawDocument],
    html: bool,
    max_triples_in_memory: usize,
) -> (BaselineIndex, SortBasedStats) {
    assert!(max_triples_in_memory >= 1);
    let mut stats = SortBasedStats::default();
    let mut vocab: HashMap<String, u32> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut buffer: Vec<(u32, u32, u32)> = Vec::new(); // (term id, doc, tf)
    let mut runs: Vec<Vec<(u32, u32, u32)>> = Vec::new();

    let mut flush = |buffer: &mut Vec<(u32, u32, u32)>, stats: &mut SortBasedStats| {
        if buffer.is_empty() {
            return;
        }
        buffer.sort_unstable();
        stats.triples += buffer.len() as u64;
        stats.runs += 1;
        runs.push(std::mem::take(buffer));
    };

    for (doc_idx, d) in docs.iter().enumerate() {
        // Per-document tf aggregation, then one triple per (term, doc).
        let mut tf: HashMap<u32, u32> = HashMap::new();
        for term in doc_terms(d, html) {
            let id = *vocab.entry(term.clone()).or_insert_with(|| {
                names.push(term.clone());
                (names.len() - 1) as u32
            });
            *tf.entry(id).or_insert(0) += 1;
        }
        for (id, f) in tf {
            if buffer.len() >= max_triples_in_memory {
                flush(&mut buffer, &mut stats);
            }
            buffer.push((id, doc_idx as u32, f));
        }
    }
    flush(&mut buffer, &mut stats);
    stats.vocabulary = names.len();

    // K-way merge: runs are sorted by (term id, doc); a (term, doc) pair
    // appears in exactly one run (triples are emitted once per document).
    let mut merged: Vec<Vec<Posting>> = vec![Vec::new(); names.len()];
    let mut heads: Vec<usize> = vec![0; runs.len()];
    loop {
        let mut best: Option<(usize, (u32, u32, u32))> = None;
        for (r, run) in runs.iter().enumerate() {
            if let Some(&t) = run.get(heads[r]) {
                if best.is_none() || t < best.unwrap().1 {
                    best = Some((r, t));
                }
            }
        }
        let Some((r, (id, doc, f))) = best else { break };
        heads[r] += 1;
        merged[id as usize].push(Posting { doc: DocId(doc), tf: f });
    }

    let mut index = BaselineIndex::default();
    for (id, posts) in merged.into_iter().enumerate() {
        if !posts.is_empty() {
            index
                .postings
                .insert(names[id].clone(), posts.into_iter().collect::<PostingsList>());
        }
    }
    (index, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivory::ivory_index;
    use crate::mapreduce::MapReduceConfig;

    fn doc(body: &str) -> RawDocument {
        RawDocument { url: String::new(), body: body.into() }
    }

    #[test]
    fn matches_ivory_with_tiny_buffer() {
        let docs = vec![
            doc("alpha beta alpha gamma"),
            doc("beta delta beta"),
            doc("alpha epsilon zeta"),
        ];
        let (idx, stats) = sort_based_index(&docs, false, 3);
        assert!(stats.runs > 1);
        let (reference, _) =
            ivory_index(std::slice::from_ref(&docs), false, MapReduceConfig::default());
        assert_eq!(idx.len(), reference.len());
        for (term, list) in &reference.postings {
            assert_eq!(idx.get(term), Some(list), "term {term}");
        }
    }

    #[test]
    fn vocabulary_counted() {
        // Note: "one" stems to "on" (a stop word) and would be removed.
        let docs = vec![doc("zebra quilt banana quilt")];
        let (_, stats) = sort_based_index(&docs, false, 100);
        assert_eq!(stats.vocabulary, 3);
        assert_eq!(stats.runs, 1);
    }
}
