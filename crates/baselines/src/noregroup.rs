//! Regrouping ablation (paper §III.C).
//!
//! "Even in the case when indexing is carried out by a serial CPU thread,
//! regrouping results in approximately 15-fold speedup ... due to improved
//! cache performance caused by the additional temporal locality." This
//! module builds the same dictionary + postings twice from one parsed
//! token stream: once in raw document order (every term hops to a
//! different trie collection's B-tree) and once regrouped by trie
//! collection (each small B-tree stays hot while its group is consumed).

use ii_corpus::RawDocument;
use ii_dict::PartialDictionary;
use ii_postings::PostingsList;
use std::time::Instant;

/// Outcome of a serial indexing pass.
pub struct SerialIndexResult {
    /// The dictionary built.
    pub dict: PartialDictionary,
    /// Postings lists by handle.
    pub lists: Vec<PostingsList>,
    /// Seconds spent in the indexing loop (parsing excluded).
    pub indexing_seconds: f64,
    /// Terms processed.
    pub tokens: u64,
}

fn add_posting(lists: &mut Vec<PostingsList>, handle: u32, doc: ii_corpus::DocId) {
    let h = handle as usize;
    if h >= lists.len() {
        lists.resize_with(h + 1, PostingsList::new);
    }
    lists[h].add_occurrence(doc);
}

/// Serial indexing **without** regrouping: terms are consumed in raw
/// document order, bouncing between trie collections on every step.
pub fn index_without_regrouping(docs: &[RawDocument], html: bool) -> SerialIndexResult {
    let (stream, stats) = ii_text::parse_documents_flat(docs, html);
    let mut dict = PartialDictionary::new(0);
    let mut lists: Vec<PostingsList> = Vec::new();
    let t0 = Instant::now();
    for (doc, trie, term) in &stream {
        let out = dict.insert_term(trie.0, term.as_bytes());
        add_posting(&mut lists, out.postings, *doc);
    }
    SerialIndexResult {
        dict,
        lists,
        indexing_seconds: t0.elapsed().as_secs_f64(),
        tokens: stats.terms_kept,
    }
}

/// Serial indexing **with** regrouping: the parser's Step 5 output is
/// consumed group by group, exactly as the paper's indexers do.
pub fn index_with_regrouping(docs: &[RawDocument], html: bool) -> SerialIndexResult {
    let batch = ii_text::parse_documents(docs, html, 0);
    let mut dict = PartialDictionary::new(0);
    let mut lists: Vec<PostingsList> = Vec::new();
    let t0 = Instant::now();
    for group in &batch.groups {
        for (doc, term) in group.iter_terms() {
            let out = dict.insert_term(group.trie_index, term);
            add_posting(&mut lists, out.postings, doc);
        }
    }
    SerialIndexResult {
        dict,
        lists,
        indexing_seconds: t0.elapsed().as_secs_f64(),
        tokens: batch.stats.terms_kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_dict::GlobalDictionary;

    fn doc(body: &str) -> RawDocument {
        RawDocument { url: String::new(), body: body.into() }
    }

    #[test]
    fn both_orders_build_the_same_index() {
        let docs = vec![
            doc("zebra alpha zebra quilt xylophone"),
            doc("alpha number 954 zebra -80"),
            doc("quilt quilt banana"),
        ];
        let a = index_without_regrouping(&docs, false);
        let b = index_with_regrouping(&docs, false);
        assert_eq!(a.tokens, b.tokens);
        let da = GlobalDictionary::combine(std::slice::from_ref(&a.dict));
        let db = GlobalDictionary::combine(std::slice::from_ref(&b.dict));
        // Same term set.
        let ta: Vec<String> = da.entries().iter().map(|e| e.full_term()).collect();
        let tb: Vec<String> = db.entries().iter().map(|e| e.full_term()).collect();
        assert_eq!(ta, tb);
        // Same postings per term (handles differ — map through the dicts).
        for (ea, eb) in da.entries().iter().zip(db.entries()) {
            let la = &a.lists[ea.postings as usize];
            let lb = &b.lists[eb.postings as usize];
            assert_eq!(la, lb, "term {}", ea.full_term());
        }
    }

    #[test]
    fn timings_are_recorded() {
        let docs = vec![doc("some words to index for timing purposes")];
        let r = index_with_regrouping(&docs, false);
        assert!(r.indexing_seconds >= 0.0);
        assert!(r.tokens > 0);
    }
}
