//! Property tests for the manifest codec: arbitrary manifests survive the
//! JSON round-trip exactly, and no byte-truncation of a valid manifest is
//! ever accepted.

use ii_store::{ArtifactMeta, Manifest, ManifestKind, PostingsMeta, StoreError, FORMAT_VERSION};
use proptest::prelude::*;

fn postings_strategy() -> impl Strategy<Value = Option<PostingsMeta>> {
    (any::<bool>(), 1u32..=2, any::<u64>(), any::<u32>()).prop_map(
        |(present, format, counts, max_tf)| {
            present.then_some(PostingsMeta {
                format,
                lists: counts >> 32,
                blocks: counts & 0xFFFF_FFFF,
                max_tf,
            })
        },
    )
}

fn artifact_strategy() -> impl Strategy<Value = ArtifactMeta> {
    (
        ("[a-zA-Z0-9_.-]{1,24}", "[a-zA-Z0-9_.-]{1,24}"),
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u32>(),
        postings_strategy(),
    )
        .prop_map(|((name, file), len, crc32, postings)| ArtifactMeta {
            name,
            file,
            len,
            crc32,
            postings,
        })
}

fn manifest_strategy() -> impl Strategy<Value = Manifest> {
    (
        proptest::prelude::any::<bool>(),
        proptest::prelude::any::<u64>(),
        proptest::collection::vec(artifact_strategy(), 0..12),
    )
        .prop_map(|(checkpoint, generation, artifacts)| Manifest {
            version: FORMAT_VERSION,
            kind: if checkpoint { ManifestKind::Checkpoint } else { ManifestKind::Index },
            generation,
            artifacts,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialize → parse is the identity for arbitrary manifests: every
    /// artifact name, 64-bit length, checksum, kind, and generation comes
    /// back exactly.
    #[test]
    fn manifest_roundtrips_exactly(m in manifest_strategy()) {
        let bytes = m.to_bytes();
        let back = Manifest::from_bytes(&bytes).expect("own output parses");
        prop_assert_eq!(back, m);
    }

    /// Truncating a valid manifest at any byte boundary yields the typed
    /// torn-manifest error — never a panic, never a silently-shorter
    /// manifest.
    #[test]
    fn truncations_are_always_torn(m in manifest_strategy(), pick in proptest::prelude::any::<u64>()) {
        let bytes = m.to_bytes();
        let cut = (pick % bytes.len() as u64) as usize;
        match Manifest::from_bytes(&bytes[..cut]) {
            Err(StoreError::TornManifest { .. }) => {}
            other => prop_assert!(false, "cut at {}: got {:?}", cut, other),
        }
    }
}
