//! The storage VFS and the crash-point fault-injection harness.
//!
//! Every durable operation the store performs — write, fsync, rename,
//! directory fsync — goes through the [`Vfs`] trait. [`RealVfs`] maps them
//! onto the OS; [`CrashVfs`] counts operations and simulates power loss at
//! a chosen boundary, in the deterministic seeded style of
//! `ii_corpus::fault`: same seed + crash point → same torn prefix / flipped
//! bit, so every failure found by the crash matrix replays exactly.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The durable-operation surface of the store.
pub trait Vfs {
    /// Create/overwrite `path` with `bytes`.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flush `path`'s data and metadata to stable storage.
    fn fsync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Flush the directory entry table of `dir` (makes renames durable).
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The real filesystem.
pub struct RealVfs;

impl Vfs for RealVfs {
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn fsync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and syncing it is the portable
        // POSIX idiom; on platforms where it is a no-op the rename is
        // already durable enough for tests.
        match fs::File::open(dir) {
            Ok(d) => d.sync_all().or(Ok(())),
            Err(_) => Ok(()),
        }
    }
}

/// What the injected crash does to the in-flight operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// Power loss *before* the operation takes effect: nothing is written,
    /// the operation and every later one fail.
    PowerLoss,
    /// A torn write: a seeded prefix of the data reaches disk, then the
    /// crash hits. Non-write operations at the crash point degrade to
    /// [`CrashMode::PowerLoss`].
    TornWrite,
    /// A silent misdirected write: one seeded bit of the data is flipped,
    /// the write "succeeds", and the process *continues* — the corruption
    /// must be caught later by checksum verification, not by an error at
    /// write time. Non-write operations degrade to [`CrashMode::PowerLoss`].
    BitFlip,
    /// The volume is out of space for a *window* of operations: every op in
    /// `[crash_at, crash_at + failures)` fails with ENOSPC (no data
    /// written), then space "frees up" and later operations succeed. The
    /// process is never killed — this models the transient disk-pressure
    /// case the commit path must retry through or fail with a typed,
    /// retriable error.
    DiskFull,
}

/// Crash-point injecting [`Vfs`]: operations are numbered from 0 in
/// execution order; the operation at `crash_at` is hit with `mode`, and —
/// except for [`CrashMode::BitFlip`] — every subsequent operation fails
/// like the process had lost power.
pub struct CrashVfs {
    inner: RealVfs,
    crash_at: u64,
    mode: CrashMode,
    seed: u64,
    /// Width of the failure window ([`CrashMode::DiskFull`] only; the
    /// point-crash modes fire exactly once).
    failures: u64,
    ops: AtomicU64,
    crashed: AtomicBool,
}

impl CrashVfs {
    /// Crash at operation `crash_at` (0-based) with `mode`; `seed` picks
    /// the torn-prefix length / flipped bit deterministically.
    pub fn new(crash_at: u64, mode: CrashMode, seed: u64) -> CrashVfs {
        CrashVfs {
            inner: RealVfs,
            crash_at,
            mode,
            seed,
            failures: 1,
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }
    }

    /// ENOSPC for the `failures` operations starting at `first_op`, then
    /// space frees up and everything later succeeds.
    pub fn disk_full(first_op: u64, failures: u64) -> CrashVfs {
        CrashVfs { failures: failures.max(1), ..CrashVfs::new(first_op, CrashMode::DiskFull, 0) }
    }

    /// A counting probe that never crashes: run the save once through this
    /// to learn how many operations it performs, then enumerate crash
    /// points `0..ops()`.
    pub fn probe() -> CrashVfs {
        CrashVfs::new(u64::MAX, CrashMode::PowerLoss, 0)
    }

    /// Operations performed (or attempted) so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    fn crash_error(&self) -> io::Error {
        io::Error::other(format!("injected crash at storage op {}", self.crash_at))
    }

    fn enospc_error(&self) -> io::Error {
        // Raw ENOSPC so the store's error taxonomy classifies it exactly
        // like a real out-of-space failure.
        io::Error::from_raw_os_error(28)
    }

    /// Advance the op counter, returning this op's number; `Err` = a fatal
    /// crash already fired.
    fn tick(&self) -> io::Result<u64> {
        if self.crashed.load(Ordering::SeqCst) {
            return Err(self.crash_error());
        }
        Ok(self.ops.fetch_add(1, Ordering::SeqCst))
    }

    /// Whether op number `n` is inside the injection's firing range.
    fn fires(&self, n: u64) -> bool {
        match self.mode {
            CrashMode::DiskFull => {
                n >= self.crash_at && n < self.crash_at.saturating_add(self.failures)
            }
            _ => n == self.crash_at,
        }
    }

    fn mix(&self, op: u64) -> u64 {
        splitmix64(self.seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl CrashVfs {
    /// Shared handling for the non-write operations: `Ok(())` = proceed,
    /// `Err` = this op was injected away.
    fn gate(&self, n: u64) -> io::Result<()> {
        if !self.fires(n) {
            return Ok(());
        }
        match self.mode {
            CrashMode::BitFlip => Ok(()), // only writes are corrupted
            CrashMode::DiskFull => Err(self.enospc_error()),
            _ => {
                self.crashed.store(true, Ordering::SeqCst);
                Err(self.crash_error())
            }
        }
    }
}

impl Vfs for CrashVfs {
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let n = self.tick()?;
        if !self.fires(n) {
            return self.inner.write_file(path, bytes);
        }
        match self.mode {
            CrashMode::PowerLoss => {
                self.crashed.store(true, Ordering::SeqCst);
                Err(self.crash_error())
            }
            CrashMode::TornWrite => {
                let keep = if bytes.is_empty() {
                    0
                } else {
                    (self.mix(self.crash_at) % bytes.len() as u64) as usize
                };
                let _ = self.inner.write_file(path, &bytes[..keep]);
                self.crashed.store(true, Ordering::SeqCst);
                Err(self.crash_error())
            }
            CrashMode::BitFlip => {
                let mut corrupted = bytes.to_vec();
                if !corrupted.is_empty() {
                    let bit = self.mix(self.crash_at) % (corrupted.len() as u64 * 8);
                    corrupted[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                // The silent-corruption mode: the write reports success and
                // the process keeps running.
                self.inner.write_file(path, &corrupted)
            }
            // Out of space: nothing lands on disk, the process lives to
            // retry once the window passes.
            CrashMode::DiskFull => Err(self.enospc_error()),
        }
    }

    fn fsync_file(&self, path: &Path) -> io::Result<()> {
        let n = self.tick()?;
        self.gate(n)?;
        self.inner.fsync_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let n = self.tick()?;
        self.gate(n)?;
        self.inner.rename(from, to)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        let n = self.tick()?;
        self.gate(n)?;
        self.inner.fsync_dir(dir)
    }
}

/// SplitMix64 — the same tiny deterministic mixer `ii_corpus::fault` seeds
/// its injections with.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ii-vfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn probe_counts_ops() {
        let d = tmp("probe");
        let v = CrashVfs::probe();
        let f = d.join("a");
        v.write_file(&f, b"hello").unwrap();
        v.fsync_file(&f).unwrap();
        v.rename(&f, &d.join("b")).unwrap();
        v.fsync_dir(&d).unwrap();
        assert_eq!(v.ops(), 4);
        assert!(!v.crashed());
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn power_loss_kills_all_later_ops() {
        let d = tmp("power");
        let v = CrashVfs::new(1, CrashMode::PowerLoss, 7);
        let f = d.join("a");
        v.write_file(&f, b"hello").unwrap();
        assert!(v.fsync_file(&f).is_err(), "crash point fires");
        assert!(v.write_file(&d.join("b"), b"x").is_err(), "process is dead");
        assert!(v.crashed());
        assert!(!d.join("b").exists());
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn torn_write_persists_a_prefix() {
        let d = tmp("torn");
        let v = CrashVfs::new(0, CrashMode::TornWrite, 3);
        let f = d.join("a");
        assert!(v.write_file(&f, b"hello world").is_err());
        let on_disk = fs::read(&f).unwrap();
        assert!(on_disk.len() < 11, "strict prefix");
        assert_eq!(&on_disk[..], &b"hello world"[..on_disk.len()]);
        // Deterministic: same seed, same prefix.
        let v2 = CrashVfs::new(0, CrashMode::TornWrite, 3);
        let f2 = d.join("a2");
        assert!(v2.write_file(&f2, b"hello world").is_err());
        assert_eq!(fs::read(&f2).unwrap(), on_disk);
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn disk_full_window_fails_then_recovers() {
        let d = tmp("enospc");
        let v = CrashVfs::disk_full(1, 2);
        let f = d.join("a");
        v.write_file(&f, b"before").unwrap();
        // Ops 1 and 2 hit the full volume.
        let e = v.fsync_file(&f).unwrap_err();
        assert_eq!(e.raw_os_error(), Some(28), "typed ENOSPC: {e}");
        assert!(v.write_file(&d.join("b"), b"x").is_err());
        assert!(!d.join("b").exists(), "nothing lands while the volume is full");
        assert!(!v.crashed(), "the process is alive, not power-lost");
        // Space freed up: the same operations now succeed.
        v.write_file(&d.join("b"), b"after").unwrap();
        v.fsync_file(&d.join("b")).unwrap();
        assert_eq!(fs::read(d.join("b")).unwrap(), b"after");
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn bit_flip_is_silent() {
        let d = tmp("flip");
        let v = CrashVfs::new(0, CrashMode::BitFlip, 11);
        let f = d.join("a");
        v.write_file(&f, b"hello").unwrap();
        let on_disk = fs::read(&f).unwrap();
        assert_eq!(on_disk.len(), 5);
        let diff: u32 = on_disk
            .iter()
            .zip(b"hello")
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
        // The process lives on.
        v.write_file(&d.join("b"), b"later").unwrap();
        assert_eq!(fs::read(d.join("b")).unwrap(), b"later");
        fs::remove_dir_all(d).unwrap();
    }
}
