//! The versioned `MANIFEST.json` codec.
//!
//! The manifest is the root of trust for an index directory: it lists every
//! artifact by *logical* name (what the loader asks for) together with the
//! *physical* file currently holding it, its byte length, and its CRC32.
//! Logical and physical names differ only when a later generation rewrote
//! an artifact — the new content gets a generation-suffixed file so the
//! previous committed state stays intact until the new manifest lands.

use crate::error::StoreError;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// File name of the manifest inside an index directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// Manifest format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// What a committed manifest describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManifestKind {
    /// A finished, queryable index.
    Index,
    /// A mid-build checkpoint (docmap high-water mark + sealed runs +
    /// indexer dictionary state) that `build --resume` continues from.
    Checkpoint,
}

impl Serialize for ManifestKind {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                ManifestKind::Index => "index",
                ManifestKind::Checkpoint => "checkpoint",
            }
            .to_string(),
        )
    }
}

impl Deserialize for ManifestKind {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        match v {
            Value::Str(s) if s == "index" => Ok(ManifestKind::Index),
            Value::Str(s) if s == "checkpoint" => Ok(ManifestKind::Checkpoint),
            other => Err(serde::DeError(format!("bad manifest kind: {other:?}"))),
        }
    }
}

/// One artifact's manifest record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Logical name loaders ask for (e.g. `dictionary.bin`).
    pub name: String,
    /// Physical file currently holding the content (may carry a `.gN`
    /// generation suffix).
    pub file: String,
    /// Byte length of the content.
    pub len: u64,
    /// CRC32 of the content.
    pub crc32: u32,
}

/// The committed state of an index directory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Finished index or mid-build checkpoint.
    pub kind: ManifestKind,
    /// Monotonic commit counter for this directory.
    pub generation: u64,
    /// Every artifact, sorted by logical name.
    pub artifacts: Vec<ArtifactMeta>,
}

impl Manifest {
    /// Serialize to the JSON bytes written to `MANIFEST.json`.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec_pretty(self).expect("manifest serialization is infallible")
    }

    /// Parse manifest bytes. Version skew and parse failures get their own
    /// typed errors so an `open` can tell "future format" from "torn write".
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, StoreError> {
        let m: Manifest = serde_json::from_slice(bytes)
            .map_err(|e| StoreError::TornManifest { detail: e.to_string() })?;
        if m.version != FORMAT_VERSION {
            return Err(StoreError::VersionSkew {
                found: m.version,
                supported: FORMAT_VERSION,
            });
        }
        Ok(m)
    }

    /// Read and parse a directory's manifest.
    pub fn load(dir: &Path) -> Result<Manifest, StoreError> {
        let path = dir.join(MANIFEST_NAME);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingManifest { dir: dir.to_path_buf() })
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        Manifest::from_bytes(&bytes)
    }

    /// Look up an artifact by logical name.
    pub fn artifact(&self, name: &str) -> Option<&ArtifactMeta> {
        self.artifacts.iter().find(|a| a.name == name)
    }

    /// Logical names of all artifacts, in manifest order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.artifacts.iter().map(|a| a.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            version: FORMAT_VERSION,
            kind: ManifestKind::Index,
            generation: 3,
            artifacts: vec![
                ArtifactMeta {
                    name: "dictionary.bin".into(),
                    file: "dictionary.bin.g3".into(),
                    len: 1234,
                    crc32: 0xDEADBEEF,
                },
                ArtifactMeta {
                    name: "run_000_00000.iirf".into(),
                    file: "run_000_00000.iirf".into(),
                    len: 88,
                    crc32: 7,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = Manifest::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.artifact("dictionary.bin").unwrap().file, "dictionary.bin.g3");
        assert!(back.artifact("nope").is_none());
    }

    #[test]
    fn checkpoint_kind_roundtrips() {
        let mut m = sample();
        m.kind = ManifestKind::Checkpoint;
        assert_eq!(Manifest::from_bytes(&m.to_bytes()).unwrap().kind, ManifestKind::Checkpoint);
    }

    #[test]
    fn version_skew_is_typed() {
        let mut m = sample();
        m.version = FORMAT_VERSION + 1;
        match Manifest::from_bytes(&m.to_bytes()) {
            Err(StoreError::VersionSkew { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected VersionSkew, got {other:?}"),
        }
    }

    #[test]
    fn torn_bytes_are_typed() {
        let bytes = sample().to_bytes();
        // Every truncation point must yield TornManifest, never a panic or
        // a silently wrong manifest.
        for cut in 0..bytes.len() {
            match Manifest::from_bytes(&bytes[..cut]) {
                Err(StoreError::TornManifest { .. }) => {}
                other => panic!("cut at {cut}: expected TornManifest, got {other:?}"),
            }
        }
        assert!(matches!(
            Manifest::from_bytes(b"{\"not\": \"a manifest\"}"),
            Err(StoreError::TornManifest { .. })
        ));
    }
}
