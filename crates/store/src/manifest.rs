//! The versioned `MANIFEST.json` codec.
//!
//! The manifest is the root of trust for an index directory: it lists every
//! artifact by *logical* name (what the loader asks for) together with the
//! *physical* file currently holding it, its byte length, and its CRC32.
//! Logical and physical names differ only when a later generation rewrote
//! an artifact — the new content gets a generation-suffixed file so the
//! previous committed state stays intact until the new manifest lands.

use crate::error::StoreError;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// File name of the manifest inside an index directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// Manifest format version this build writes. Version 2 added the optional
/// per-artifact [`PostingsMeta`] block describing blocked postings
/// artifacts (list/block counts, maximum term frequency).
pub const FORMAT_VERSION: u32 = 2;

/// Oldest manifest format version this build still reads. Version-1
/// manifests (no postings metadata) open exactly as before.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// What a committed manifest describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManifestKind {
    /// A finished, queryable index.
    Index,
    /// A mid-build checkpoint (docmap high-water mark + sealed runs +
    /// indexer dictionary state) that `build --resume` continues from.
    Checkpoint,
}

impl Serialize for ManifestKind {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                ManifestKind::Index => "index",
                ManifestKind::Checkpoint => "checkpoint",
            }
            .to_string(),
        )
    }
}

impl Deserialize for ManifestKind {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        match v {
            Value::Str(s) if s == "index" => Ok(ManifestKind::Index),
            Value::Str(s) if s == "checkpoint" => Ok(ManifestKind::Checkpoint),
            other => Err(serde::DeError(format!("bad manifest kind: {other:?}"))),
        }
    }
}

/// Postings-artifact metadata recorded in version-2 manifests: enough to
/// know a run file's shape — skip-table block count and block-max term
/// frequency included — without reading the artifact itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingsMeta {
    /// Run-file wire format: 1 = legacy whole-list (`IIRF`), 2 = blocked
    /// with per-list skip tables (`IIR2`).
    pub format: u32,
    /// Postings lists (run entries) in the artifact.
    pub lists: u64,
    /// Total 128-document blocks across all lists (0 for legacy format —
    /// legacy lists carry no skip table).
    pub blocks: u64,
    /// Maximum term frequency across the artifact (the global bound over
    /// every block's block-max metadata; 0 for legacy format).
    pub max_tf: u32,
}

/// One artifact's manifest record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Logical name loaders ask for (e.g. `dictionary.bin`).
    pub name: String,
    /// Physical file currently holding the content (may carry a `.gN`
    /// generation suffix).
    pub file: String,
    /// Byte length of the content.
    pub len: u64,
    /// CRC32 of the content.
    pub crc32: u32,
    /// Postings metadata, present on run artifacts committed by version-2
    /// writers. `None` for non-postings artifacts and version-1 manifests.
    pub postings: Option<PostingsMeta>,
}

// Hand-written (rather than derived) so a version-1 manifest record — which
// has no `postings` key at all — still deserializes: the derive treats a
// missing field as an error, and `null`-filling old manifests would break
// their recorded CRCs. Serialization omits the key when `None` so
// non-postings artifacts keep the version-1 record shape.
impl Serialize for ArtifactMeta {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("name".to_string(), self.name.to_value()),
            ("file".to_string(), self.file.to_value()),
            ("len".to_string(), self.len.to_value()),
            ("crc32".to_string(), self.crc32.to_value()),
        ];
        if let Some(p) = &self.postings {
            pairs.push(("postings".to_string(), p.to_value()));
        }
        Value::Object(pairs)
    }
}

impl Deserialize for ArtifactMeta {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        Ok(ArtifactMeta {
            name: serde::field(v, "name")?,
            file: serde::field(v, "file")?,
            len: serde::field(v, "len")?,
            crc32: serde::field(v, "crc32")?,
            postings: match v.get("postings") {
                None | Some(Value::Null) => None,
                Some(p) => Some(PostingsMeta::from_value(p)
                    .map_err(|e| serde::DeError(format!("field 'postings': {}", e.0)))?),
            },
        })
    }
}

/// The committed state of an index directory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Finished index or mid-build checkpoint.
    pub kind: ManifestKind,
    /// Monotonic commit counter for this directory.
    pub generation: u64,
    /// Every artifact, sorted by logical name.
    pub artifacts: Vec<ArtifactMeta>,
}

impl Manifest {
    /// Serialize to the JSON bytes written to `MANIFEST.json`.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec_pretty(self).expect("manifest serialization is infallible")
    }

    /// Parse manifest bytes. Version skew and parse failures get their own
    /// typed errors so an `open` can tell "future format" from "torn write".
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, StoreError> {
        let m: Manifest = serde_json::from_slice(bytes)
            .map_err(|e| StoreError::TornManifest { detail: e.to_string() })?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&m.version) {
            return Err(StoreError::VersionSkew {
                found: m.version,
                supported: FORMAT_VERSION,
            });
        }
        Ok(m)
    }

    /// Read and parse a directory's manifest.
    pub fn load(dir: &Path) -> Result<Manifest, StoreError> {
        let path = dir.join(MANIFEST_NAME);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingManifest { dir: dir.to_path_buf() })
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        Manifest::from_bytes(&bytes)
    }

    /// Look up an artifact by logical name.
    pub fn artifact(&self, name: &str) -> Option<&ArtifactMeta> {
        self.artifacts.iter().find(|a| a.name == name)
    }

    /// Logical names of all artifacts, in manifest order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.artifacts.iter().map(|a| a.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            version: FORMAT_VERSION,
            kind: ManifestKind::Index,
            generation: 3,
            artifacts: vec![
                ArtifactMeta {
                    name: "dictionary.bin".into(),
                    file: "dictionary.bin.g3".into(),
                    len: 1234,
                    crc32: 0xDEADBEEF,
                    postings: None,
                },
                ArtifactMeta {
                    name: "run_000_00000.iirf".into(),
                    file: "run_000_00000.iirf".into(),
                    len: 88,
                    crc32: 7,
                    postings: Some(PostingsMeta { format: 2, lists: 3, blocks: 17, max_tf: 9 }),
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = Manifest::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.artifact("dictionary.bin").unwrap().file, "dictionary.bin.g3");
        assert!(back.artifact("nope").is_none());
    }

    #[test]
    fn checkpoint_kind_roundtrips() {
        let mut m = sample();
        m.kind = ManifestKind::Checkpoint;
        assert_eq!(Manifest::from_bytes(&m.to_bytes()).unwrap().kind, ManifestKind::Checkpoint);
    }

    #[test]
    fn version_skew_is_typed() {
        let mut m = sample();
        m.version = FORMAT_VERSION + 1;
        match Manifest::from_bytes(&m.to_bytes()) {
            Err(StoreError::VersionSkew { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected VersionSkew, got {other:?}"),
        }
    }

    #[test]
    fn version_1_manifest_still_parses() {
        // A verbatim version-1 manifest: no `postings` keys anywhere.
        let v1 = br#"{
            "version": 1,
            "kind": "index",
            "generation": 2,
            "artifacts": [
                {"name": "dictionary.bin", "file": "dictionary.bin", "len": 10, "crc32": 77},
                {"name": "run_000_00000.iirf", "file": "run_000_00000.iirf", "len": 5, "crc32": 3}
            ]
        }"#;
        let m = Manifest::from_bytes(v1).unwrap();
        assert_eq!(m.version, 1);
        assert!(m.artifacts.iter().all(|a| a.postings.is_none()));
        assert_eq!(m.artifact("run_000_00000.iirf").unwrap().len, 5);
    }

    #[test]
    fn postings_meta_survives_roundtrip() {
        let m = sample();
        let back = Manifest::from_bytes(&m.to_bytes()).unwrap();
        let p = back.artifact("run_000_00000.iirf").unwrap().postings.unwrap();
        assert_eq!(p, PostingsMeta { format: 2, lists: 3, blocks: 17, max_tf: 9 });
        assert!(back.artifact("dictionary.bin").unwrap().postings.is_none());
        // Non-postings records keep the version-1 shape: no `postings` key.
        let json = String::from_utf8(m.to_bytes()).unwrap();
        assert_eq!(json.matches("postings").count(), 1);
    }

    #[test]
    fn torn_bytes_are_typed() {
        let bytes = sample().to_bytes();
        // Every truncation point must yield TornManifest, never a panic or
        // a silently wrong manifest.
        for cut in 0..bytes.len() {
            match Manifest::from_bytes(&bytes[..cut]) {
                Err(StoreError::TornManifest { .. }) => {}
                other => panic!("cut at {cut}: expected TornManifest, got {other:?}"),
            }
        }
        assert!(matches!(
            Manifest::from_bytes(b"{\"not\": \"a manifest\"}"),
            Err(StoreError::TornManifest { .. })
        ));
    }
}
