//! # ii-store — crash-safe index storage
//!
//! Every on-disk index artifact goes through this crate. The durability
//! contract: an index directory is either *fully valid* (its `MANIFEST.json`
//! lists every artifact with length and CRC32, and all of them check out) or
//! *recognizably partial* (a typed [`StoreError`] says exactly what is
//! wrong). A crash at any write/fsync/rename boundary can never produce a
//! directory that silently loads garbage.
//!
//! The commit protocol (write-ahead by construction, no log needed):
//!
//! 1. every artifact is written to `<file>.tmp`, fsynced, then atomically
//!    renamed into place — never overwriting a file the *current* manifest
//!    references (changed artifacts get a generation-suffixed name);
//! 2. the directory is fsynced so the renames are durable;
//! 3. the manifest itself is committed last by the same
//!    write-temp → fsync → rename → fsync-dir dance. The manifest rename is
//!    the commit point: before it, `open` sees the previous generation;
//!    after it, the new one.
//! 4. files referenced by the previous manifest but not the new one (and
//!    stray `.tmp` files) are garbage-collected best-effort — a crash here
//!    leaves harmless orphans.
//!
//! All I/O runs through a [`Vfs`] so the crash-point harness ([`CrashVfs`])
//! can simulate power loss at every operation boundary, plus torn and
//! bit-flipped writes, in the style of `ii_corpus::fault`'s seeded
//! injection.

#![warn(missing_docs)]

mod error;
mod manifest;
mod store;
mod vfs;

pub use error::StoreError;
pub use manifest::{
    ArtifactMeta, Manifest, ManifestKind, PostingsMeta, FORMAT_VERSION, MANIFEST_NAME,
    MIN_FORMAT_VERSION,
};
pub use store::{
    salvage, write_file_durable, ArtifactStatus, ArtifactValidator, SalvageReport, Store, Txn,
};
pub use vfs::{CrashMode, CrashVfs, RealVfs, Vfs};

/// CRC-32 (ISO-HDLC, the zlib polynomial) — same algorithm and parameters
/// as the container footer checksum in `ii_corpus`, reimplemented here so
/// the storage layer stays dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
