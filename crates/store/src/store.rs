//! Verified reads ([`Store`]), transactional commits ([`Txn`]), and the
//! salvage path ([`salvage`]).

use crate::crc32;
use crate::error::StoreError;
use crate::manifest::{
    ArtifactMeta, Manifest, ManifestKind, PostingsMeta, FORMAT_VERSION, MANIFEST_NAME,
};
use crate::vfs::Vfs;
use ii_obs::Registry;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A committed index directory, opened through its manifest. Reads verify
/// length and CRC32 against the manifest before returning bytes.
pub struct Store {
    dir: PathBuf,
    manifest: Manifest,
}

impl Store {
    /// Open a directory's committed state. Typed failures: no manifest,
    /// torn manifest, version skew.
    pub fn open(dir: &Path) -> Result<Store, StoreError> {
        let manifest = Manifest::load(dir)?;
        Ok(Store { dir: dir.to_path_buf(), manifest })
    }

    /// The directory this store reads from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The committed manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Read and verify one artifact by logical name.
    pub fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let meta = self
            .manifest
            .artifact(name)
            .ok_or_else(|| StoreError::MissingArtifact { name: name.to_string() })?;
        let bytes = match fs::read(self.dir.join(&meta.file)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingArtifact { name: name.to_string() })
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        if bytes.len() as u64 != meta.len {
            return Err(StoreError::SizeMismatch {
                name: name.to_string(),
                expected: meta.len,
                found: bytes.len() as u64,
            });
        }
        let found = crc32(&bytes);
        if found != meta.crc32 {
            return Err(StoreError::ChecksumMismatch {
                name: name.to_string(),
                expected: meta.crc32,
                found,
            });
        }
        Ok(bytes)
    }

    /// Check every artifact against the manifest without keeping the bytes.
    /// Returns one status per artifact; `ok` across all of them means the
    /// directory passes the checksum pass.
    pub fn verify(&self) -> Vec<ArtifactStatus> {
        self.manifest
            .artifacts
            .iter()
            .map(|meta| {
                let (ok, detail) = match self.read(&meta.name) {
                    Ok(_) => (true, String::from("ok")),
                    Err(e) => (false, e.to_string()),
                };
                ArtifactStatus {
                    name: meta.name.clone(),
                    file: meta.file.clone(),
                    len: meta.len,
                    ok,
                    detail,
                }
            })
            .collect()
    }
}

/// One artifact's verification outcome.
#[derive(Clone, Debug)]
pub struct ArtifactStatus {
    /// Logical artifact name.
    pub name: String,
    /// Physical file checked.
    pub file: String,
    /// Manifest-recorded length.
    pub len: u64,
    /// Whether length and checksum matched.
    pub ok: bool,
    /// `"ok"` or the failure description.
    pub detail: String,
}

/// An in-flight commit. Artifacts are staged with [`Txn::put`] (written
/// durably but not yet referenced); [`Txn::commit`] publishes them all at
/// once by atomically replacing the manifest.
pub struct Txn<'v> {
    dir: PathBuf,
    vfs: &'v dyn Vfs,
    prev: Option<Manifest>,
    generation: u64,
    staged: Vec<ArtifactMeta>,
    obs: Option<Arc<Registry>>,
}

impl<'v> Txn<'v> {
    /// Start a transaction against `dir` (created if needed). The previous
    /// committed manifest, if any, seeds generation numbering and artifact
    /// reuse; an unreadable previous manifest is treated as absent (the
    /// commit will replace it).
    pub fn begin(dir: &Path, vfs: &'v dyn Vfs) -> Result<Txn<'v>, StoreError> {
        fs::create_dir_all(dir)?;
        let prev = Manifest::load(dir).ok();
        let generation = prev.as_ref().map_or(1, |m| m.generation + 1);
        Ok(Txn { dir: dir.to_path_buf(), vfs, prev, generation, staged: Vec::new(), obs: None })
    }

    /// Record fsync/commit/bytes counters and the `commit` stage span into
    /// `registry` (the pipeline driver passes its per-build registry).
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.obs = Some(registry);
        self
    }

    /// Generation this transaction will commit as.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Stage one artifact. If the previous commit already holds identical
    /// content (same length + CRC32) the existing file is reused without a
    /// write — sealed run files are not rewritten on every checkpoint.
    /// Changed content goes to a generation-suffixed file so the previous
    /// committed state survives a crash mid-transaction.
    pub fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.put_with_meta(name, bytes, None)
    }

    /// [`Self::put`] with postings metadata attached to the manifest
    /// record: run artifacts carry their skip-table block count and
    /// block-max bound so loaders can see a run's shape without reading
    /// it. The metadata is re-stamped even on the content-reuse path — an
    /// unchanged run file inherited from a version-1 manifest gains its
    /// metadata on the first version-2 commit.
    pub fn put_with_meta(
        &mut self,
        name: &str,
        bytes: &[u8],
        postings: Option<PostingsMeta>,
    ) -> Result<(), StoreError> {
        if self.staged.iter().any(|a| a.name == name) {
            return Err(StoreError::Corrupt {
                name: name.to_string(),
                detail: "artifact staged twice in one transaction".into(),
            });
        }
        let len = bytes.len() as u64;
        let crc = crc32(bytes);
        if let Some(prev) = self.prev.as_ref().and_then(|m| m.artifact(name)) {
            if prev.len == len && prev.crc32 == crc && self.dir.join(&prev.file).exists() {
                if let Some(r) = &self.obs {
                    r.counter("store.artifacts_reused").inc();
                }
                self.staged.push(ArtifactMeta {
                    name: name.to_string(),
                    file: prev.file.clone(),
                    len,
                    crc32: crc,
                    postings,
                });
                return Ok(());
            }
        }
        let file = if self.prev.as_ref().and_then(|m| m.artifact(name)).is_some() {
            format!("{name}.g{}", self.generation)
        } else {
            name.to_string()
        };
        self.write_durable(&file, bytes)?;
        self.staged.push(ArtifactMeta { name: name.to_string(), file, len, crc32: crc, postings });
        Ok(())
    }

    /// write-temp → fsync → atomic rename for one file (see the
    /// standalone [`write_file_durable`] for out-of-transaction writes).
    fn write_durable(&self, file: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!("{file}.tmp"));
        let dst = self.dir.join(file);
        self.vfs.write_file(&tmp, bytes)?;
        self.vfs.fsync_file(&tmp)?;
        self.vfs.rename(&tmp, &dst)?;
        if let Some(r) = &self.obs {
            r.counter("store.bytes_written").add(bytes.len() as u64);
            r.counter("store.fsyncs").inc();
        }
        Ok(())
    }

    /// Commit: fsync the directory (artifact renames become durable), then
    /// publish the new manifest last via its own write-temp → fsync →
    /// rename → fsync-dir sequence. Returns the committed manifest.
    /// Unreferenced files from the previous generation are then
    /// garbage-collected best-effort.
    pub fn commit(mut self, kind: ManifestKind) -> Result<Manifest, StoreError> {
        let span = self.obs.as_ref().map(|r| (r.stage("commit"), r.clone()));
        let _span = span.as_ref().map(|(stage, _)| stage.span());
        self.staged.sort_by(|a, b| a.name.cmp(&b.name));
        let manifest = Manifest {
            version: FORMAT_VERSION,
            kind,
            generation: self.generation,
            artifacts: std::mem::take(&mut self.staged),
        };
        self.vfs.fsync_dir(&self.dir)?;
        let bytes = manifest.to_bytes();
        self.write_durable(MANIFEST_NAME, &bytes)?;
        self.vfs.fsync_dir(&self.dir)?;
        if let Some(r) = &self.obs {
            r.counter("store.fsyncs").add(2);
            r.counter("store.commits").inc();
        }
        self.collect_garbage(&manifest);
        Ok(manifest)
    }

    /// Remove files the new manifest no longer references: stray `.tmp`
    /// files, previous-generation artifact versions, and orphaned
    /// generation files of known logical names. Best-effort — a crash here
    /// leaves harmless unreferenced files for the next commit to sweep.
    fn collect_garbage(&self, manifest: &Manifest) {
        let Ok(entries) = fs::read_dir(&self.dir) else { return };
        let live: Vec<&str> = manifest.artifacts.iter().map(|a| a.file.as_str()).collect();
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == MANIFEST_NAME || live.contains(&name.as_str()) {
                continue;
            }
            let stale_generation = manifest.artifact(base_name(&name)).is_some();
            let was_referenced = self
                .prev
                .as_ref()
                .is_some_and(|m| m.artifacts.iter().any(|a| a.file == name));
            if name.ends_with(".tmp") || stale_generation || was_referenced {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// Strip a `.g<digits>` generation suffix, yielding the logical name.
fn base_name(file: &str) -> &str {
    if let Some((base, gen)) = file.rsplit_once(".g") {
        if !gen.is_empty() && gen.bytes().all(|b| b.is_ascii_digit()) {
            return base;
        }
    }
    file
}

/// Outcome of a [`salvage`] pass.
#[derive(Clone, Debug, Default)]
pub struct SalvageReport {
    /// Artifacts recovered and re-committed, by logical name.
    pub kept: Vec<String>,
    /// Artifacts that could not be recovered: `(logical name, reason)`.
    pub lost: Vec<(String, String)>,
    /// Generation of the repaired manifest.
    pub generation: u64,
}

/// Semantic per-artifact validation callback for [`salvage`]: given the
/// logical name and candidate bytes, return `Err(reason)` to reject.
/// Accepted postings artifacts return their [`PostingsMeta`] so the
/// repaired manifest keeps the skip-table/block-max metadata; other
/// artifacts return `None`.
pub type ArtifactValidator = dyn Fn(&str, &[u8]) -> Result<Option<PostingsMeta>, String>;

/// Recover the intact artifacts of a damaged index directory and commit a
/// fresh manifest referencing exactly those. `validate` is the caller's
/// semantic decoder check (e.g. "does this parse as a run file?") applied
/// per candidate on top of the checksum check; return `Err(reason)` to
/// reject. Candidate files are the manifest's entries (when readable) plus
/// any generation-suffixed siblings of known artifact names left by
/// interrupted commits.
pub fn salvage(
    dir: &Path,
    vfs: &dyn Vfs,
    validate: &ArtifactValidator,
) -> Result<SalvageReport, StoreError> {
    let manifest = Manifest::load(dir).ok();
    // Gather candidates per logical name: (physical file, generation).
    let mut candidates: std::collections::BTreeMap<String, Vec<(String, u64)>> = Default::default();
    for entry in fs::read_dir(dir)?.flatten() {
        let file = entry.file_name().to_string_lossy().into_owned();
        if file == MANIFEST_NAME || file.ends_with(".tmp") || !entry.path().is_file() {
            continue;
        }
        let base = base_name(&file);
        let generation = file
            .strip_prefix(base)
            .and_then(|s| s.strip_prefix(".g"))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0u64);
        candidates.entry(base.to_string()).or_default().push((file, generation));
    }
    if let Some(m) = &manifest {
        for a in &m.artifacts {
            candidates.entry(a.name.clone()).or_default();
        }
    }
    if manifest.is_none() && candidates.is_empty() {
        return Err(StoreError::MissingManifest { dir: dir.to_path_buf() });
    }

    let mut report = SalvageReport::default();
    let mut recovered: Vec<(String, Vec<u8>, Option<PostingsMeta>)> = Vec::new();
    for (logical, mut files) in candidates {
        // Prefer the manifest's physical file, then newer generations.
        files.sort_by_key(|f| std::cmp::Reverse(f.1));
        if let Some(meta) = manifest.as_ref().and_then(|m| m.artifact(&logical)) {
            if let Some(pos) = files.iter().position(|(f, _)| *f == meta.file) {
                let preferred = files.remove(pos);
                files.insert(0, preferred);
            }
        }
        let mut reasons = Vec::new();
        let mut winner = None;
        for (file, _) in &files {
            let bytes = match fs::read(dir.join(file)) {
                Ok(b) => b,
                Err(e) => {
                    reasons.push(format!("{file}: unreadable ({e})"));
                    continue;
                }
            };
            if let Some(meta) = manifest.as_ref().and_then(|m| m.artifact(&logical)) {
                if *file == meta.file {
                    let crc = crc32(&bytes);
                    if bytes.len() as u64 != meta.len || crc != meta.crc32 {
                        reasons.push(format!("{file}: checksum/length mismatch vs manifest"));
                        continue;
                    }
                }
            }
            match validate(&logical, &bytes) {
                Ok(meta) => {
                    winner = Some((bytes, meta));
                    break;
                }
                Err(reason) => reasons.push(format!("{file}: {reason}")),
            }
        }
        match winner {
            Some((bytes, meta)) => recovered.push((logical, bytes, meta)),
            None => {
                let reason =
                    if reasons.is_empty() { "no candidate file".to_string() } else { reasons.join("; ") };
                report.lost.push((logical, reason));
            }
        }
    }

    let mut txn = Txn::begin(dir, vfs)?;
    for (logical, bytes, meta) in &recovered {
        txn.put_with_meta(logical, bytes, *meta)?;
        report.kept.push(logical.clone());
    }
    let committed = txn.commit(ManifestKind::Index)?;
    report.generation = committed.generation;
    Ok(report)
}

/// Durably write one standalone file: write-temp → fsync → atomic rename
/// → fsync parent dir.
///
/// This is the same protocol [`Txn`] uses for artifacts, for files that
/// live *outside* a manifest transaction — `--stats-json` snapshots,
/// bench baselines, post-mortem bundles. A crash at any boundary leaves
/// either the previous file or the complete new one, never a truncated
/// write (plus, at worst, a harmless `.tmp` orphan).
pub fn write_file_durable(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::Io(std::io::Error::other(format!(
            "path '{}' has no file name",
            path.display()
        ))))?;
    let tmp = path.with_file_name(format!("{name}.tmp"));
    vfs.write_file(&tmp, bytes)?;
    vfs.fsync_file(&tmp)?;
    vfs.rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        vfs.fsync_dir(dir)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{CrashMode, CrashVfs, RealVfs};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ii-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn commit_two(dir: &Path, vfs: &dyn Vfs, a: &[u8], b: &[u8]) -> Result<Manifest, StoreError> {
        let mut txn = Txn::begin(dir, vfs)?;
        txn.put("a.bin", a)?;
        txn.put("b.bin", b)?;
        txn.commit(ManifestKind::Index)
    }

    #[test]
    fn commit_then_open_roundtrip() {
        let d = tmp("roundtrip");
        let m = commit_two(&d, &RealVfs, b"alpha", b"beta").unwrap();
        assert_eq!(m.generation, 1);
        let store = Store::open(&d).unwrap();
        assert_eq!(store.read("a.bin").unwrap(), b"alpha");
        assert_eq!(store.read("b.bin").unwrap(), b"beta");
        assert!(matches!(
            store.read("c.bin"),
            Err(StoreError::MissingArtifact { .. })
        ));
        assert!(store.verify().iter().all(|s| s.ok));
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn unchanged_artifacts_are_reused_changed_get_generations() {
        let d = tmp("reuse");
        commit_two(&d, &RealVfs, b"alpha", b"beta").unwrap();
        let m2 = commit_two(&d, &RealVfs, b"alpha", b"BETA2").unwrap();
        assert_eq!(m2.generation, 2);
        assert_eq!(m2.artifact("a.bin").unwrap().file, "a.bin", "unchanged: same file");
        assert_eq!(m2.artifact("b.bin").unwrap().file, "b.bin.g2", "changed: new generation");
        let store = Store::open(&d).unwrap();
        assert_eq!(store.read("b.bin").unwrap(), b"BETA2");
        // The stale b.bin was garbage-collected.
        assert!(!d.join("b.bin").exists());
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn missing_manifest_and_torn_manifest_are_typed() {
        let d = tmp("manifest-errs");
        assert!(matches!(Store::open(&d), Err(StoreError::MissingManifest { .. })), "dir absent");
        fs::create_dir_all(&d).unwrap();
        assert!(matches!(Store::open(&d), Err(StoreError::MissingManifest { .. })));
        fs::write(d.join(MANIFEST_NAME), b"{ torn").unwrap();
        assert!(matches!(Store::open(&d), Err(StoreError::TornManifest { .. })));
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn corrupted_artifact_detected_on_read() {
        let d = tmp("corrupt");
        commit_two(&d, &RealVfs, b"alpha", b"beta").unwrap();
        // Flip one bit of a committed artifact (post-crash disk rot).
        let mut bytes = fs::read(d.join("a.bin")).unwrap();
        bytes[0] ^= 0x40;
        fs::write(d.join("a.bin"), &bytes).unwrap();
        let store = Store::open(&d).unwrap();
        assert!(matches!(
            store.read("a.bin"),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        fs::write(d.join("a.bin"), b"alpha longer now").unwrap();
        assert!(matches!(
            Store::open(&d).unwrap().read("a.bin"),
            Err(StoreError::SizeMismatch { .. })
        ));
        fs::remove_file(d.join("a.bin")).unwrap();
        assert!(matches!(
            Store::open(&d).unwrap().read("a.bin"),
            Err(StoreError::MissingArtifact { .. })
        ));
        let v = Store::open(&d).unwrap().verify();
        assert!(!v.iter().find(|s| s.name == "a.bin").unwrap().ok);
        assert!(v.iter().find(|s| s.name == "b.bin").unwrap().ok);
        fs::remove_dir_all(d).unwrap();
    }

    /// The store-level crash matrix: for every operation boundary of a
    /// second commit, and every crash mode, reopening the directory yields
    /// the first commit's state, the second's (late crash points), or a
    /// typed error — never garbage, never a panic.
    #[test]
    fn crash_matrix_preserves_previous_commit() {
        let d = tmp("crash-matrix");
        commit_two(&d, &RealVfs, b"alpha", b"beta").unwrap();
        let probe = CrashVfs::probe();
        commit_two(&d, &probe, b"ALPHA3", b"BETA3").unwrap();
        let total_ops = probe.ops();
        assert!(total_ops >= 8, "two artifacts + manifest: {total_ops} ops");
        // Reset to a known gen-1 state for each (crash point, mode) cell.
        for mode in [CrashMode::PowerLoss, CrashMode::TornWrite, CrashMode::BitFlip] {
            for k in 0..total_ops {
                let _ = fs::remove_dir_all(&d);
                commit_two(&d, &RealVfs, b"alpha", b"beta").unwrap();
                let vfs = CrashVfs::new(k, mode, 1000 + k);
                let crashed = commit_two(&d, &vfs, b"ALPHA3", b"BETA3").is_err();
                match Store::open(&d) {
                    Ok(store) => {
                        let a = store.read("a.bin");
                        let b = store.read("b.bin");
                        match (a, b) {
                            (Ok(a), Ok(b)) => {
                                let old = a == b"alpha" && b == b"beta";
                                let new = a == b"ALPHA3" && b == b"BETA3";
                                assert!(
                                    old || new,
                                    "mode {mode:?} op {k}: loaded garbage a={a:?} b={b:?}"
                                );
                                // A crash strictly before the manifest
                                // rename (the last two ops are rename +
                                // dir fsync) must leave the old state; a
                                // crash at the final dir fsync lands after
                                // the commit point, so either is valid.
                                if crashed && mode != CrashMode::BitFlip && k + 1 < total_ops {
                                    assert!(old, "mode {mode:?} op {k}: crash published new state");
                                }
                            }
                            // Silent bit flips may corrupt a committed
                            // artifact — the checksum must catch it.
                            (a, b) => {
                                assert!(
                                    mode == CrashMode::BitFlip,
                                    "mode {mode:?} op {k}: artifact error {:?}",
                                    a.and(b).err()
                                );
                            }
                        }
                    }
                    Err(
                        StoreError::TornManifest { .. }
                        | StoreError::MissingManifest { .. }
                        | StoreError::VersionSkew { .. },
                    ) => {
                        // Typed manifest failure is acceptable only for the
                        // silent-corruption mode (a flipped manifest byte);
                        // atomic rename shields the clean/torn modes.
                        assert!(
                            mode == CrashMode::BitFlip,
                            "mode {mode:?} op {k}: manifest unreadable"
                        );
                    }
                    Err(e) => panic!("mode {mode:?} op {k}: unexpected error {e}"),
                }
            }
        }
        let _ = fs::remove_dir_all(d);
    }

    #[test]
    fn first_commit_crash_leaves_recognizably_partial_dir() {
        let d = tmp("crash-first");
        let probe = CrashVfs::probe();
        commit_two(&d, &probe, b"alpha", b"beta").unwrap();
        let total_ops = probe.ops();
        for k in 0..total_ops {
            let _ = fs::remove_dir_all(&d);
            let vfs = CrashVfs::new(k, CrashMode::TornWrite, k);
            let crashed = commit_two(&d, &vfs, b"alpha", b"beta").is_err();
            match Store::open(&d) {
                Ok(store) => {
                    // Only the post-commit-point dir fsync may crash and
                    // still leave a committed manifest behind.
                    assert!(!crashed || k + 1 == total_ops, "op {k}: crash yet manifest committed");
                    assert_eq!(store.read("a.bin").unwrap(), b"alpha");
                }
                Err(StoreError::MissingManifest { .. }) => assert!(crashed),
                Err(e) => panic!("op {k}: unexpected {e}"),
            }
        }
        let _ = fs::remove_dir_all(d);
    }

    #[test]
    fn salvage_recovers_intact_artifacts() {
        let d = tmp("salvage");
        commit_two(&d, &RealVfs, b"alpha", b"beta").unwrap();
        // Corrupt one artifact and tear the manifest.
        fs::write(d.join("b.bin"), b"bad!").unwrap();
        fs::write(d.join(MANIFEST_NAME), b"{ torn to shreds").unwrap();
        let validate = |_: &str, bytes: &[u8]| {
            if bytes == b"bad!" { Err("decode failed".into()) } else { Ok(None) }
        };
        let report = salvage(&d, &RealVfs, &validate).unwrap();
        assert_eq!(report.kept, vec!["a.bin".to_string()]);
        assert_eq!(report.lost.len(), 1);
        assert_eq!(report.lost[0].0, "b.bin");
        let store = Store::open(&d).unwrap();
        assert_eq!(store.read("a.bin").unwrap(), b"alpha");
        assert!(matches!(store.read("b.bin"), Err(StoreError::MissingArtifact { .. })));
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn salvage_prefers_newest_valid_generation() {
        let d = tmp("salvage-gen");
        fs::create_dir_all(&d).unwrap();
        // No manifest at all; two generations of one artifact, newest torn.
        fs::write(d.join("a.bin"), b"old-good").unwrap();
        fs::write(d.join("a.bin.g2"), b"torn").unwrap();
        let validate = |_: &str, bytes: &[u8]| {
            if bytes == b"torn" { Err("truncated".into()) } else { Ok(None) }
        };
        let report = salvage(&d, &RealVfs, &validate).unwrap();
        assert_eq!(report.kept, vec!["a.bin".to_string()]);
        assert_eq!(Store::open(&d).unwrap().read("a.bin").unwrap(), b"old-good");
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn salvage_of_empty_dir_is_typed() {
        let d = tmp("salvage-empty");
        fs::create_dir_all(&d).unwrap();
        let ok = |_: &str, _: &[u8]| Ok(None);
        assert!(matches!(
            salvage(&d, &RealVfs, &ok),
            Err(StoreError::MissingManifest { .. })
        ));
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn duplicate_put_rejected() {
        let d = tmp("dup");
        let mut txn = Txn::begin(&d, &RealVfs).unwrap();
        txn.put("a.bin", b"x").unwrap();
        assert!(matches!(txn.put("a.bin", b"y"), Err(StoreError::Corrupt { .. })));
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn write_file_durable_replaces_atomically() {
        let d = tmp("durable-write");
        fs::create_dir_all(&d).unwrap();
        let path = d.join("stats.json");
        write_file_durable(&RealVfs, &path, b"{\"v\": 1}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\": 1}");
        write_file_durable(&RealVfs, &path, b"{\"v\": 2}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\": 2}");
        // A crash at any I/O boundary leaves either the old or the new
        // content, never a truncated file.
        for op in 0..4 {
            let vfs = CrashVfs::new(op, CrashMode::PowerLoss, 0);
            let _ = write_file_durable(&vfs, &path, b"{\"v\": 333}");
            let found = fs::read(&path).unwrap();
            assert!(
                found == b"{\"v\": 2}" || found == b"{\"v\": 333}",
                "crash at op {op} tore the file: {found:?}"
            );
        }
        assert!(write_file_durable(&RealVfs, Path::new("/"), b"x").is_err());
        fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn obs_counters_recorded() {
        let d = tmp("obs");
        let registry = Arc::new(Registry::new());
        let mut txn = Txn::begin(&d, &RealVfs).unwrap().with_registry(Arc::clone(&registry));
        txn.put("a.bin", b"alpha").unwrap();
        txn.commit(ManifestKind::Index).unwrap();
        assert_eq!(registry.counter("store.commits").get(), 1);
        assert!(registry.counter("store.fsyncs").get() >= 3);
        assert!(registry.counter("store.bytes_written").get() >= 5);
        fs::remove_dir_all(d).unwrap();
    }
}
