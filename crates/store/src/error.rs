//! The typed storage-error taxonomy.

use std::io;
use std::path::PathBuf;

/// Everything that can go wrong opening, verifying, or committing an index
/// directory. Each variant is a distinct, actionable diagnosis — the
/// replacement for the `io::Error` strings the first save/open used.
#[derive(Debug)]
pub enum StoreError {
    /// The directory has no `MANIFEST.json` (and is not a recognizable
    /// legacy layout).
    MissingManifest {
        /// The directory inspected.
        dir: PathBuf,
    },
    /// `MANIFEST.json` exists but does not parse — a torn or corrupted
    /// manifest write.
    TornManifest {
        /// Parse failure detail.
        detail: String,
    },
    /// An interrupted commit: temp files are present but no manifest was
    /// ever committed, so there is no previous state to fall back to.
    TornCommit {
        /// The directory inspected.
        dir: PathBuf,
    },
    /// The manifest's format version is not one this build reads.
    VersionSkew {
        /// Version found in the manifest.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The manifest references an artifact whose file is gone.
    MissingArtifact {
        /// Logical artifact name.
        name: String,
    },
    /// An artifact's on-disk length disagrees with the manifest.
    SizeMismatch {
        /// Logical artifact name.
        name: String,
        /// Length recorded in the manifest.
        expected: u64,
        /// Length found on disk.
        found: u64,
    },
    /// An artifact's CRC32 disagrees with the manifest — bit rot or a
    /// misdirected write.
    ChecksumMismatch {
        /// Logical artifact name.
        name: String,
        /// Checksum recorded in the manifest.
        expected: u32,
        /// Checksum computed from the file.
        found: u32,
    },
    /// An artifact passed its checksum but failed semantic decoding, or an
    /// artifact name violates the layout's naming rules.
    Corrupt {
        /// Logical artifact name.
        name: String,
        /// Decode failure detail.
        detail: String,
    },
    /// The directory holds a committed build *checkpoint*, not a finished
    /// index — resume the build instead of opening it.
    IncompleteBuild {
        /// The directory inspected.
        dir: PathBuf,
    },
    /// A resume was requested against a checkpoint whose recorded
    /// build-knob fingerprint disagrees with the current configuration.
    /// Resuming anyway could produce an index that is byte-divergent from
    /// an uninterrupted build, so the mismatch is refused with both
    /// fingerprints for diffing.
    CheckpointMismatch {
        /// What the checkpoint disagrees about (`config` / `collection`).
        what: String,
        /// Fingerprint recorded in the checkpoint.
        expected: String,
        /// Fingerprint of the current build.
        found: String,
    },
    /// The volume ran out of space mid-operation (ENOSPC). Distinct from
    /// [`StoreError::Io`] because it is the one storage failure that is
    /// worth retrying after backoff: space frees up, disks get swapped —
    /// and the atomic-commit protocol leaves the previous generation
    /// intact, so a retried commit starts clean.
    DiskFull {
        /// The underlying ENOSPC error text.
        detail: String,
    },
    /// An underlying I/O failure (including injected crash points).
    Io(io::Error),
}

impl StoreError {
    /// True for failures a caller may retry after backing off (the volume
    /// may have space again); everything else is a terminal diagnosis.
    pub fn is_retriable(&self) -> bool {
        matches!(self, StoreError::DiskFull { .. })
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::MissingManifest { dir } => {
                write!(f, "no MANIFEST.json in {}", dir.display())
            }
            StoreError::TornManifest { detail } => {
                write!(f, "torn or corrupt MANIFEST.json: {detail}")
            }
            StoreError::TornCommit { dir } => write!(
                f,
                "interrupted commit in {} (temp files present, no manifest committed)",
                dir.display()
            ),
            StoreError::VersionSkew { found, supported } => write!(
                f,
                "manifest format version {found} is not supported (this build reads {supported})"
            ),
            StoreError::MissingArtifact { name } => {
                write!(f, "artifact '{name}' listed in the manifest is missing")
            }
            StoreError::SizeMismatch { name, expected, found } => write!(
                f,
                "artifact '{name}' is {found} bytes, manifest says {expected}"
            ),
            StoreError::ChecksumMismatch { name, expected, found } => write!(
                f,
                "artifact '{name}' checksum {found:#010x} != manifest {expected:#010x}"
            ),
            StoreError::Corrupt { name, detail } => {
                write!(f, "artifact '{name}' is corrupt: {detail}")
            }
            StoreError::IncompleteBuild { dir } => write!(
                f,
                "{} holds an uncommitted build checkpoint, not a finished index \
                 (rerun the build with --resume)",
                dir.display()
            ),
            StoreError::CheckpointMismatch { what, expected, found } => write!(
                f,
                "checkpoint {what} mismatch: checkpoint was built with '{expected}', \
                 current build is '{found}' (resuming would diverge)"
            ),
            StoreError::DiskFull { detail } => {
                write!(f, "volume is out of space (retriable): {detail}")
            }
            StoreError::Io(e) => write!(f, "storage I/O failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        // ENOSPC classifies as the typed, retriable disk-full error.
        // (Matched by raw OS errno: `ErrorKind::StorageFull` is not yet
        // stable on every toolchain this builds with.)
        if e.raw_os_error() == Some(28) {
            return StoreError::DiskFull { detail: e.to_string() };
        }
        StoreError::Io(e)
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = StoreError::ChecksumMismatch {
            name: "dictionary.bin".into(),
            expected: 0xDEADBEEF,
            found: 0x12345678,
        };
        let s = e.to_string();
        assert!(s.contains("dictionary.bin"));
        assert!(s.contains("0xdeadbeef"));
        let io: io::Error = e.into();
        assert_eq!(io.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn checkpoint_mismatch_names_both_fingerprints() {
        let e = StoreError::CheckpointMismatch {
            what: "config".into(),
            expected: "cpus=1|mem_budget=0".into(),
            found: "cpus=2|mem_budget=64".into(),
        };
        let s = e.to_string();
        assert!(s.contains("cpus=1|mem_budget=0"), "{s}");
        assert!(s.contains("cpus=2|mem_budget=64"), "{s}");
        assert!(!e.is_retriable(), "a knob mismatch never resolves by retrying");
    }

    #[test]
    fn enospc_classifies_as_retriable_disk_full() {
        let e: StoreError = io::Error::from_raw_os_error(28).into();
        assert!(matches!(e, StoreError::DiskFull { .. }), "{e:?}");
        assert!(e.is_retriable());
        assert!(e.to_string().contains("retriable"), "{e}");
        let plain: StoreError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(!plain.is_retriable());
    }
}
