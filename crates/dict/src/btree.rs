//! CPU B-tree operations over the 512-byte node layout (paper §III.D.1).
//!
//! Classic degree-16 B-tree insertion with preemptive splitting, specialized
//! for the string-cache layout: every comparison first looks at the 4-byte
//! in-node cache and touches the out-of-node remainder only when the caches
//! tie — the paper's observation is that two arbitrary terms rarely share a
//! 4-byte prefix, so most comparisons never leave the node. Cache-hit /
//! cache-miss counters substantiate that claim in the ablation bench.
//!
//! **Frozen.** This is the pre-slotted insert path, kept byte-for-byte as
//! the differential-test reference (see [`crate::reference`] and
//! `tests/tests/dict_diff.rs`) and as the layout the simulated GPU operates
//! on in device memory. The dictionary hot path lives in
//! [`crate::slotted`]; do not optimize this module.

use crate::arena::{NodeArena, StringArena};
use crate::node::{BTreeNode, MAX_KEYS, NULL};
use std::cmp::Ordering;

/// Backing storage for all B-trees owned by one indexer: node arena, string
/// arena, postings-handle allocator and comparison statistics. Trees in the
/// same store share arenas but are structurally independent, so one indexer
/// thread can own many trie collections without any locking.
#[derive(Clone, Debug, Default)]
pub struct BTreeStore {
    /// Node storage.
    pub nodes: NodeArena,
    /// Term-remainder storage.
    pub strings: StringArena,
    next_postings: u32,
    /// Comparisons settled by the 4-byte cache alone.
    pub cache_hits: u64,
    /// Comparisons that had to read the string remainder.
    pub cache_misses: u64,
    /// B-TREE-SPLIT-CHILD invocations across all trees in the store.
    pub node_splits: u64,
}

/// Handle to one B-tree (one trie collection) within a store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BTree {
    /// Root node index.
    pub root: u32,
}

/// Result of an insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Postings-list handle for the term (new or existing).
    pub postings: u32,
    /// True when the term was not previously present.
    pub is_new: bool,
}

impl BTreeStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a new empty tree (root is an empty leaf).
    pub fn new_tree(&mut self) -> BTree {
        BTree { root: self.nodes.alloc() }
    }

    /// Rebuild a store from arenas downloaded off the simulated GPU (same
    /// node/string layouts) plus the number of postings handles issued.
    pub fn from_parts(nodes: NodeArena, strings: StringArena, next_postings: u32) -> Self {
        BTreeStore { nodes, strings, next_postings, cache_hits: 0, cache_misses: 0, node_splits: 0 }
    }

    /// Number of distinct terms ever inserted across all trees in the store
    /// (== number of postings handles issued).
    pub fn term_count(&self) -> u32 {
        self.next_postings
    }

    /// Compare the probe `term` against key `slot` of `node`.
    fn cmp_key(&mut self, node: &BTreeNode, slot: usize, term: &[u8]) -> Ordering {
        let probe_cache = BTreeNode::make_cache(term);
        match probe_cache.cmp(&node.cache[slot]) {
            Ordering::Equal => {
                let key_rem: &[u8] = if node.term_ptr[slot] == NULL {
                    b""
                } else {
                    self.strings.get(node.term_ptr[slot])
                };
                let probe_rem: &[u8] = if term.len() > 4 { &term[4..] } else { b"" };
                if key_rem.is_empty() && probe_rem.is_empty() {
                    self.cache_hits += 1;
                    Ordering::Equal
                } else {
                    self.cache_misses += 1;
                    probe_rem.cmp(key_rem)
                }
            }
            ord => {
                self.cache_hits += 1;
                ord
            }
        }
    }

    /// Binary-search `term` among the first `count` keys of `node`.
    /// Returns `Ok(slot)` when found, `Err(slot)` with the child/insert
    /// position otherwise.
    fn search_node(&mut self, node: &BTreeNode, term: &[u8]) -> Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = node.count as usize;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.cmp_key(node, mid, term) {
                Ordering::Equal => return Ok(mid),
                Ordering::Greater => lo = mid + 1,
                Ordering::Less => hi = mid,
            }
        }
        Err(lo)
    }

    /// Install `term` into `node[slot]`, splitting it into cache +
    /// remainder and assigning a fresh postings handle.
    fn set_key(&mut self, node_idx: u32, slot: usize, term: &[u8]) -> u32 {
        let cache = BTreeNode::make_cache(term);
        let rem_ptr = if term.len() > 4 { self.strings.alloc(&term[4..]) } else { NULL };
        let postings = self.next_postings;
        self.next_postings += 1;
        let node = self.nodes.get_mut(node_idx);
        node.cache[slot] = cache;
        node.term_ptr[slot] = rem_ptr;
        node.postings_ptr[slot] = postings;
        postings
    }

    /// Split the full child `ci` of `parent_idx` (CLRS B-TREE-SPLIT-CHILD).
    fn split_child(&mut self, parent_idx: u32, ci: usize) {
        self.node_splits += 1;
        let left_idx = self.nodes.get(parent_idx).children[ci];
        let right_idx = self.nodes.alloc();
        let mid = MAX_KEYS / 2; // 15: median key index

        // Copy the upper keys/children out of the left node.
        let left = self.nodes.get(left_idx).clone();
        debug_assert!(left.is_full());
        {
            let right = self.nodes.get_mut(right_idx);
            right.leaf = left.leaf;
            right.count = (MAX_KEYS - mid - 1) as u32; // 15 keys
            for k in 0..(MAX_KEYS - mid - 1) {
                right.cache[k] = left.cache[mid + 1 + k];
                right.term_ptr[k] = left.term_ptr[mid + 1 + k];
                right.postings_ptr[k] = left.postings_ptr[mid + 1 + k];
            }
            if left.leaf == 0 {
                for k in 0..(MAX_KEYS - mid) {
                    right.children[k] = left.children[mid + 1 + k];
                }
            }
        }
        {
            let lnode = self.nodes.get_mut(left_idx);
            lnode.count = mid as u32;
            for k in mid + 1..MAX_KEYS {
                lnode.cache[k] = [0; 4];
                lnode.term_ptr[k] = NULL;
                lnode.postings_ptr[k] = NULL;
            }
            if lnode.leaf == 0 {
                for k in mid + 1..=MAX_KEYS {
                    lnode.children[k] = NULL;
                }
            }
        }
        // Insert the median into the parent at slot ci.
        let parent = self.nodes.get_mut(parent_idx);
        let pcount = parent.count as usize;
        debug_assert!(pcount < MAX_KEYS);
        for k in (ci..pcount).rev() {
            parent.cache[k + 1] = parent.cache[k];
            parent.term_ptr[k + 1] = parent.term_ptr[k];
            parent.postings_ptr[k + 1] = parent.postings_ptr[k];
        }
        for k in (ci + 1..=pcount).rev() {
            parent.children[k + 1] = parent.children[k];
        }
        parent.cache[ci] = left.cache[mid];
        parent.term_ptr[ci] = left.term_ptr[mid];
        parent.postings_ptr[ci] = left.postings_ptr[mid];
        parent.children[ci + 1] = right_idx;
        parent.count += 1;
    }

    /// Insert `term` (already trie-prefix-stripped) into `tree`, returning
    /// its postings handle and whether it is new.
    pub fn insert(&mut self, tree: &mut BTree, term: &[u8]) -> InsertOutcome {
        if self.nodes.get(tree.root).is_full() {
            let new_root = self.nodes.alloc();
            {
                let nr = self.nodes.get_mut(new_root);
                nr.leaf = 0;
                nr.children[0] = tree.root;
            }
            self.split_child(new_root, 0);
            tree.root = new_root;
        }
        self.insert_nonfull(tree.root, term)
    }

    fn insert_nonfull(&mut self, mut node_idx: u32, term: &[u8]) -> InsertOutcome {
        loop {
            let node = self.nodes.get(node_idx).clone();
            match self.search_node(&node, term) {
                Ok(slot) => {
                    return InsertOutcome {
                        postings: node.postings_ptr[slot],
                        is_new: false,
                    };
                }
                Err(pos) => {
                    if node.is_leaf() {
                        // Shift and insert (the paper's parallel-shift on
                        // GPU; sequential here).
                        let count = node.count as usize;
                        debug_assert!(count < MAX_KEYS);
                        {
                            let n = self.nodes.get_mut(node_idx);
                            for k in (pos..count).rev() {
                                n.cache[k + 1] = n.cache[k];
                                n.term_ptr[k + 1] = n.term_ptr[k];
                                n.postings_ptr[k + 1] = n.postings_ptr[k];
                            }
                            n.count += 1;
                        }
                        let postings = self.set_key(node_idx, pos, term);
                        return InsertOutcome { postings, is_new: true };
                    }
                    let child = node.children[pos];
                    if self.nodes.get(child).is_full() {
                        self.split_child(node_idx, pos);
                        // The median moved up into `pos`; re-compare.
                        let parent = self.nodes.get(node_idx).clone();
                        match self.cmp_key(&parent, pos, term) {
                            Ordering::Equal => {
                                return InsertOutcome {
                                    postings: parent.postings_ptr[pos],
                                    is_new: false,
                                };
                            }
                            Ordering::Greater => node_idx = parent.children[pos + 1],
                            Ordering::Less => node_idx = parent.children[pos],
                        }
                    } else {
                        node_idx = child;
                    }
                }
            }
        }
    }

    /// Look up `term`, returning its postings handle if present.
    pub fn get(&mut self, tree: &BTree, term: &[u8]) -> Option<u32> {
        let mut node_idx = tree.root;
        loop {
            let node = self.nodes.get(node_idx).clone();
            match self.search_node(&node, term) {
                Ok(slot) => return Some(node.postings_ptr[slot]),
                Err(pos) => {
                    if node.is_leaf() {
                        return None;
                    }
                    node_idx = node.children[pos];
                }
            }
        }
    }

    /// Reconstruct the full stored term at `slot` of `node`.
    pub fn full_term(&self, node: &BTreeNode, slot: usize) -> Vec<u8> {
        let cache = &node.cache[slot];
        let cache_len = cache.iter().position(|&b| b == 0).unwrap_or(4);
        let mut out = cache[..cache_len].to_vec();
        if node.term_ptr[slot] != NULL {
            out.extend_from_slice(self.strings.get(node.term_ptr[slot]));
        }
        out
    }

    /// In-order traversal: `(term, postings handle)` in lexicographic order.
    pub fn iter_terms(&self, tree: &BTree) -> Vec<(Vec<u8>, u32)> {
        let mut out = Vec::new();
        self.walk(tree.root, &mut out);
        out
    }

    fn walk(&self, node_idx: u32, out: &mut Vec<(Vec<u8>, u32)>) {
        let node = self.nodes.get(node_idx);
        let count = node.count as usize;
        for i in 0..count {
            if node.leaf == 0 {
                self.walk(node.children[i], out);
            }
            out.push((self.full_term(node, i), node.postings_ptr[i]));
        }
        if node.leaf == 0 && count > 0 {
            self.walk(node.children[count], out);
        }
    }

    /// Height of the tree (number of levels; 1 for a lone leaf). The paper
    /// bounds it by log_t((n+1)/2).
    pub fn depth(&self, tree: &BTree) -> usize {
        let mut d = 1;
        let mut idx = tree.root;
        while self.nodes.get(idx).leaf == 0 {
            idx = self.nodes.get(idx).children[0];
            d += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn fresh() -> (BTreeStore, BTree) {
        let mut s = BTreeStore::new();
        let t = s.new_tree();
        (s, t)
    }

    #[test]
    fn insert_and_get() {
        let (mut s, mut t) = fresh();
        let a = s.insert(&mut t, b"lication");
        assert!(a.is_new);
        let b = s.insert(&mut t, b"le"); // "apple" suffix
        assert!(b.is_new);
        let a2 = s.insert(&mut t, b"lication");
        assert!(!a2.is_new);
        assert_eq!(a2.postings, a.postings);
        assert_eq!(s.get(&t, b"lication"), Some(a.postings));
        assert_eq!(s.get(&t, b"le"), Some(b.postings));
        assert_eq!(s.get(&t, b"missing"), None);
    }

    #[test]
    fn empty_term_is_a_valid_key() {
        // Terms like "9" strip to an empty suffix in collection 10.
        let (mut s, mut t) = fresh();
        let e = s.insert(&mut t, b"");
        assert!(e.is_new);
        let x = s.insert(&mut t, b"x");
        assert_eq!(s.get(&t, b""), Some(e.postings));
        assert_eq!(s.get(&t, b"x"), Some(x.postings));
        let terms = s.iter_terms(&t);
        assert_eq!(terms[0].0, b"");
    }

    #[test]
    fn split_produces_sorted_iteration() {
        let (mut s, mut t) = fresh();
        // Enough keys to force multiple splits (> 31).
        let mut keys: Vec<String> = (0..200).map(|i| format!("key{i:04}")).collect();
        let mut rng = StdRng::seed_from_u64(5);
        keys.shuffle(&mut rng);
        for k in &keys {
            s.insert(&mut t, k.as_bytes());
        }
        let terms = s.iter_terms(&t);
        assert_eq!(terms.len(), 200);
        let got: Vec<&[u8]> = terms.iter().map(|(t, _)| t.as_slice()).collect();
        let mut want: Vec<Vec<u8>> = keys.iter().map(|k| k.as_bytes().to_vec()).collect();
        want.sort();
        assert_eq!(got, want.iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        assert!(s.depth(&t) >= 2);
        assert!(s.node_splits >= 6, "200 keys over 31-key nodes must split: {}", s.node_splits);
    }

    #[test]
    fn duplicate_inserts_share_postings_handle() {
        let (mut s, mut t) = fresh();
        let mut handles = std::collections::HashMap::new();
        let mut rng = StdRng::seed_from_u64(9);
        let mut keys: Vec<String> = (0..100).map(|i| format!("t{i}")).collect();
        keys.shuffle(&mut rng);
        for pass in 0..3 {
            for k in &keys {
                let out = s.insert(&mut t, k.as_bytes());
                if pass == 0 {
                    assert!(out.is_new);
                    handles.insert(k.clone(), out.postings);
                } else {
                    assert!(!out.is_new, "{k} duplicated on pass {pass}");
                    assert_eq!(out.postings, handles[k]);
                }
            }
        }
        assert_eq!(s.term_count(), 100);
    }

    #[test]
    fn long_shared_prefixes_resolved_by_remainder() {
        let (mut s, mut t) = fresh();
        // All share the 4-byte cache "abcd"; remainders must disambiguate.
        let keys = ["abcdzzz", "abcdaaa", "abcd", "abcdmmm", "abcdzza"];
        for k in keys {
            assert!(s.insert(&mut t, k.as_bytes()).is_new);
        }
        for k in keys {
            assert!(s.get(&t, k.as_bytes()).is_some(), "{k} lost");
        }
        let terms = s.iter_terms(&t);
        let got: Vec<Vec<u8>> = terms.into_iter().map(|(t, _)| t).collect();
        let mut want: Vec<Vec<u8>> = keys.iter().map(|k| k.as_bytes().to_vec()).collect();
        want.sort();
        assert_eq!(got, want);
        assert!(s.cache_misses > 0);
    }

    #[test]
    fn short_terms_live_in_cache_only() {
        let (mut s, mut t) = fresh();
        s.insert(&mut t, b"ab");
        s.insert(&mut t, b"abcd");
        assert_eq!(s.strings.len_bytes(), 0, "no remainders should be allocated");
        s.insert(&mut t, b"abcde");
        assert!(s.strings.len_bytes() > 0);
    }

    #[test]
    fn depth_grows_logarithmically() {
        let (mut s, mut t) = fresh();
        for i in 0..10_000u32 {
            s.insert(&mut t, format!("{i:08x}").as_bytes());
        }
        let d = s.depth(&t);
        // log_16(10001/2) ≈ 3.1; CLRS bound gives height ≤ 1 + that.
        assert!((3..=5).contains(&d), "depth {d} out of expected band");
    }

    #[test]
    fn separate_trees_in_one_store_are_independent() {
        let mut s = BTreeStore::new();
        let mut t1 = s.new_tree();
        let mut t2 = s.new_tree();
        s.insert(&mut t1, b"alpha");
        s.insert(&mut t2, b"beta");
        assert!(s.get(&t1, b"beta").is_none());
        assert!(s.get(&t2, b"alpha").is_none());
        assert_eq!(s.iter_terms(&t1).len(), 1);
        assert_eq!(s.iter_terms(&t2).len(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_btree_matches_btreemap(keys in proptest::collection::vec("[a-f]{0,10}", 1..300)) {
            let (mut s, mut t) = fresh();
            let mut model = std::collections::BTreeMap::new();
            for k in &keys {
                let out = s.insert(&mut t, k.as_bytes());
                let expect_new = !model.contains_key(k.as_bytes());
                prop_assert_eq!(out.is_new, expect_new);
                model.entry(k.as_bytes().to_vec()).or_insert(out.postings);
                prop_assert_eq!(*model.get(k.as_bytes()).unwrap(), out.postings);
            }
            // Full iteration equals the model.
            let got: Vec<(Vec<u8>, u32)> = s.iter_terms(&t);
            let want: Vec<(Vec<u8>, u32)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_get_after_insert(keys in proptest::collection::vec("[a-z0-9]{0,12}", 1..100)) {
            let (mut s, mut t) = fresh();
            let mut handles = std::collections::HashMap::new();
            for k in &keys {
                let out = s.insert(&mut t, k.as_bytes());
                handles.entry(k.clone()).or_insert(out.postings);
            }
            for (k, h) in &handles {
                prop_assert_eq!(s.get(&t, k.as_bytes()), Some(*h));
            }
            prop_assert_eq!(s.get(&t, b"~~~not-present~~~"), None);
        }
    }
}
