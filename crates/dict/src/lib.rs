//! # ii-dict — the hybrid trie + B-tree dictionary (paper §III.B)
//!
//! The central data structure of the paper: a fixed-height-3 trie realized
//! as a flat table of 17,613 collection indices (Table I), each owning an
//! independent degree-16 B-tree whose 512-byte nodes (Table II) embed
//! 4-byte string caches. Independence of the B-trees is what lets CPU
//! threads and GPU thread blocks index concurrently without locks.
//!
//! Two implementations of the B-tree coexist:
//!
//! * [`slotted`] — the hot path. Slotted nodes with order-preserving
//!   4-byte integer heads, branch-free intra-node search, `memcpy`
//!   shifts/splits. What [`PartialDictionary`] runs on.
//! * [`btree`] — the original Table II layout, frozen byte-for-byte as the
//!   differential-test reference ([`reference::ReferenceDictionary`]) and
//!   as the device-memory interop layer for the simulated GPU.

#![warn(missing_docs)]

pub mod arena;
pub mod btree;
pub mod dictionary;
pub mod node;
pub mod reference;
pub mod slotted;
pub mod trie;
pub mod verify;

pub use btree::{BTree, BTreeStore, InsertOutcome};
pub use dictionary::{insert_surface, lookup_surface, DictEntry, GlobalDictionary, PartialDictionary};
pub use node::{BTreeNode, DEGREE, MAX_KEYS, MIN_KEYS, NODE_BYTES, NULL};
pub use reference::{
    combine_reference, insert_surface_reference, lookup_surface_reference, ReferenceDictionary,
};
pub use slotted::{term_head, SlottedNode, SlottedStore, HEAD_SENTINEL};
pub use trie::{classify, trie_index, TrieIndex, TRIE_ENTRIES};
pub use verify::{
    verify_btree, verify_global, verify_shard, verify_slotted, BTreeViolation, GlobalViolation,
};
