//! # ii-dict — the hybrid trie + B-tree dictionary (paper §III.B)
//!
//! The central data structure of the paper: a fixed-height-3 trie realized
//! as a flat table of 17,613 collection indices (Table I), each owning an
//! independent degree-16 B-tree whose 512-byte nodes (Table II) embed
//! 4-byte string caches. Independence of the B-trees is what lets CPU
//! threads and GPU thread blocks index concurrently without locks.

#![warn(missing_docs)]

pub mod arena;
pub mod btree;
pub mod dictionary;
pub mod node;
pub mod trie;
pub mod verify;

pub use btree::{BTree, BTreeStore, InsertOutcome};
pub use dictionary::{DictEntry, GlobalDictionary, PartialDictionary};
pub use node::{BTreeNode, DEGREE, MAX_KEYS, MIN_KEYS, NODE_BYTES, NULL};
pub use trie::{classify, trie_index, TrieIndex, TRIE_ENTRIES};
pub use verify::{verify_btree, verify_global, verify_shard, BTreeViolation, GlobalViolation};
