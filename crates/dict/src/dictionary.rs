//! Partial and global dictionaries.
//!
//! Every indexer owns a disjoint set of trie collections for the program's
//! lifetime (paper §III.E), so it keeps an "independent and exclusive part
//! of the global dictionary": a [`PartialDictionary`]. When the last batch
//! has been indexed, the partials are *combined* into a [`GlobalDictionary`]
//! and written to disk — the "Dictionary Combine" and "Dictionary Write"
//! rows of Table VI.
//!
//! Since the slotted-node rewrite the shard's hot path runs on
//! [`SlottedStore`] and the per-collection tree roots live in a flat
//! `TRIE_ENTRIES`-sized table indexed directly by trie index — the paper's
//! §III.B trie *is* that table, so the per-token `HashMap` hash the old
//! shard paid is gone. Checkpoints keep the legacy `IIPD` byte format
//! (512-byte Table II nodes): nodes are converted at the serialization
//! boundary, which is also what keeps GPU device interop unchanged.

use crate::btree::{BTree, BTreeStore, InsertOutcome};
use crate::node::NULL;
use crate::slotted::SlottedStore;
use crate::trie::{trie_index, TrieIndex, TRIE_ENTRIES};
use std::collections::HashMap;
use std::io::{self, Read, Write};

/// The dictionary shard owned by a single indexer.
#[derive(Clone, Debug)]
pub struct PartialDictionary {
    /// Identifier of the owning indexer (used in postings locations).
    pub indexer_id: u32,
    /// Shared arenas for all this indexer's B-trees (slotted hot path).
    pub store: SlottedStore,
    /// Tree root per trie collection (`NULL` = collection untouched),
    /// indexed directly by trie index.
    roots: Vec<u32>,
}

impl Default for PartialDictionary {
    fn default() -> Self {
        Self::new(0)
    }
}

impl PartialDictionary {
    /// Create an empty shard for `indexer_id`.
    pub fn new(indexer_id: u32) -> Self {
        PartialDictionary {
            indexer_id,
            store: SlottedStore::new(),
            roots: vec![NULL; TRIE_ENTRIES],
        }
    }

    /// Rebuild a shard from a reconstructed legacy store and its
    /// per-collection tree roots (the GPU download path). The legacy nodes
    /// are converted into slotted form; handles and structure carry over
    /// exactly.
    pub fn from_parts(indexer_id: u32, store: BTreeStore, roots: HashMap<u32, BTree>) -> Self {
        let mut table = vec![NULL; TRIE_ENTRIES];
        for (ti, tree) in roots {
            let ti = ti as usize;
            if ti >= table.len() {
                table.resize(ti + 1, NULL);
            }
            table[ti] = tree.root;
        }
        PartialDictionary { indexer_id, store: SlottedStore::from_legacy(store), roots: table }
    }

    /// Insert a prefix-stripped term into the B-tree of `trie_idx`
    /// (created lazily).
    #[inline]
    pub fn insert_term(&mut self, trie_idx: u32, suffix: &[u8]) -> InsertOutcome {
        let ti = trie_idx as usize;
        if ti >= self.roots.len() {
            self.roots.resize(ti + 1, NULL);
        }
        if self.roots[ti] == NULL {
            self.roots[ti] = self.store.new_tree().root;
        }
        let mut tree = BTree { root: self.roots[ti] };
        let out = self.store.insert(&mut tree, suffix);
        self.roots[ti] = tree.root;
        out
    }

    /// Look up a prefix-stripped term.
    pub fn lookup(&mut self, trie_idx: u32, suffix: &[u8]) -> Option<u32> {
        let root = *self.roots.get(trie_idx as usize)?;
        if root == NULL {
            return None;
        }
        self.store.get(&BTree { root }, suffix)
    }

    /// The B-tree handle for a trie collection, if any terms were inserted.
    pub fn tree(&self, trie_idx: u32) -> Option<BTree> {
        match self.roots.get(trie_idx as usize) {
            Some(&root) if root != NULL => Some(BTree { root }),
            _ => None,
        }
    }

    /// Trie collections present in this shard, in ascending order.
    pub fn trie_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.roots
            .iter()
            .enumerate()
            .filter(|(_, &root)| root != NULL)
            .map(|(ti, _)| ti as u32)
    }

    /// Number of distinct terms in the shard.
    pub fn term_count(&self) -> u32 {
        self.store.term_count()
    }

    /// Resident bytes of the shard's arenas (node arena + string arena +
    /// trie-root table) for the pipeline memory governor. Deterministic
    /// for a given insert history, so budget decisions keyed on it replay
    /// exactly.
    pub fn mem_bytes(&self) -> u64 {
        self.store.mem_bytes() + (self.roots.len() * std::mem::size_of::<u32>()) as u64
    }

    /// Serialize the complete shard state — node arena, string arena,
    /// postings high-water mark, and per-collection tree roots — for a
    /// build checkpoint. The byte layout is the legacy `IIPD` format
    /// (512-byte Table II nodes in canonical form) and is identical for
    /// CPU- and GPU-built shards, so a resumed build restores exactly the
    /// handle-assignment state and later inserts allocate the same
    /// postings handles as an uninterrupted run.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<u64> {
        let nodes = self.store.to_legacy_nodes();
        let strings = self.store.strings.as_bytes();
        let roots: Vec<(u32, u32)> =
            self.trie_indices().map(|ti| (ti, self.roots[ti as usize])).collect();
        w.write_all(PARTIAL_MAGIC)?;
        w.write_all(&self.indexer_id.to_le_bytes())?;
        w.write_all(&self.store.term_count().to_le_bytes())?;
        w.write_all(&(nodes.len() as u32).to_le_bytes())?;
        w.write_all(&(strings.len() as u32).to_le_bytes())?;
        w.write_all(&(roots.len() as u32).to_le_bytes())?;
        for n in &nodes {
            w.write_all(&n.to_bytes())?;
        }
        w.write_all(strings)?;
        for (ti, root) in &roots {
            w.write_all(&ti.to_le_bytes())?;
            w.write_all(&root.to_le_bytes())?;
        }
        Ok(24 + nodes.len() as u64 * crate::node::NODE_BYTES as u64
            + strings.len() as u64
            + roots.len() as u64 * 8)
    }

    /// Deserialize a shard written by [`Self::write_to`].
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<PartialDictionary> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let mut head = [0u8; 24];
        r.read_exact(&mut head)?;
        if &head[..4] != PARTIAL_MAGIC {
            return Err(bad("bad partial-dictionary magic"));
        }
        let word = |i: usize| u32::from_le_bytes(head[i..i + 4].try_into().unwrap());
        let indexer_id = word(4);
        let term_count = word(8);
        let n_nodes = word(12) as usize;
        let n_strings = word(16) as usize;
        let n_trees = word(20) as usize;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let mut buf = [0u8; crate::node::NODE_BYTES];
            r.read_exact(&mut buf)?;
            nodes.push(crate::node::BTreeNode::from_bytes(&buf));
        }
        let mut strings = vec![0u8; n_strings];
        r.read_exact(&mut strings)?;
        let mut roots = vec![NULL; TRIE_ENTRIES];
        for _ in 0..n_trees {
            let mut pair = [0u8; 8];
            r.read_exact(&mut pair)?;
            let ti = u32::from_le_bytes(pair[..4].try_into().unwrap());
            let root = u32::from_le_bytes(pair[4..].try_into().unwrap());
            if root as usize >= n_nodes {
                return Err(bad("tree root out of node range"));
            }
            if ti as usize >= TRIE_ENTRIES {
                return Err(bad("trie index out of table range"));
            }
            if roots[ti as usize] != NULL {
                return Err(bad("duplicate trie collection in partial dictionary"));
            }
            roots[ti as usize] = root;
        }
        let store = SlottedStore::from_legacy(BTreeStore::from_parts(
            crate::arena::NodeArena::from_nodes(nodes),
            crate::arena::StringArena::from_bytes(strings),
            term_count,
        ));
        Ok(PartialDictionary { indexer_id, store, roots })
    }
}

const PARTIAL_MAGIC: &[u8; 4] = b"IIPD";

/// One record of the combined dictionary: where to find the postings list
/// of a term. `indexer` + `postings` locate the list among the per-indexer
/// outputs (the mapping-table indirection of §III.F).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DictEntry {
    /// Trie collection of the term.
    pub trie_index: u32,
    /// Stored suffix (term minus the trie-captured prefix).
    pub suffix: Vec<u8>,
    /// Owning indexer.
    pub indexer: u32,
    /// Postings handle within that indexer's output.
    pub postings: u32,
}

impl DictEntry {
    /// Reconstruct the full term (prefix + suffix).
    pub fn full_term(&self) -> String {
        let mut s = TrieIndex(self.trie_index).prefix();
        s.push_str(&String::from_utf8_lossy(&self.suffix));
        s
    }
}

/// The combined, immutable dictionary for the whole collection.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GlobalDictionary {
    /// Entries sorted by `(trie_index, suffix)`.
    entries: Vec<DictEntry>,
}

const DICT_MAGIC: &[u8; 4] = b"IIDC";

impl GlobalDictionary {
    /// Combine per-indexer shards. Each shard's trie collections are
    /// disjoint by construction; entries are gathered tree by tree (terms
    /// come out of each B-tree already sorted) and then ordered globally.
    pub fn combine(parts: &[PartialDictionary]) -> GlobalDictionary {
        let mut entries = Vec::new();
        for p in parts {
            for ti in p.trie_indices() {
                let tree = p.tree(ti).expect("listed index has a tree");
                for (suffix, postings) in p.store.iter_terms(&tree) {
                    entries.push(DictEntry {
                        trie_index: ti,
                        suffix,
                        indexer: p.indexer_id,
                        postings,
                    });
                }
            }
        }
        entries.sort_by(|a, b| {
            (a.trie_index, a.suffix.as_slice()).cmp(&(b.trie_index, b.suffix.as_slice()))
        });
        GlobalDictionary { entries }
    }

    /// Build from already-gathered entries (the frozen reference combine).
    pub(crate) fn from_entries(entries: Vec<DictEntry>) -> GlobalDictionary {
        GlobalDictionary { entries }
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in `(trie_index, suffix)` order.
    pub fn entries(&self) -> &[DictEntry] {
        &self.entries
    }

    /// Look up a surface term (it is classified and prefix-stripped here).
    pub fn lookup(&self, term: &str) -> Option<&DictEntry> {
        let (idx, suffix) = crate::trie::classify(term);
        self.entries
            .binary_search_by(|e| {
                (e.trie_index, e.suffix.as_slice()).cmp(&(idx.0, suffix.as_bytes()))
            })
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Convenience: classify + lookup for an already-stemmed term string.
    pub fn contains(&self, term: &str) -> bool {
        self.lookup(term).is_some()
    }

    /// Serialize to `w`; returns bytes written (the "Dictionary Write"
    /// cost). Suffixes are front-coded against the previous entry, the
    /// compression Heinz & Zobel [4] apply to lexicographically ordered
    /// dictionaries.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<u64> {
        let mut bytes = 0u64;
        w.write_all(DICT_MAGIC)?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        bytes += 8;
        let mut prev: &[u8] = b"";
        let mut prev_trie = u32::MAX;
        for e in &self.entries {
            let shared = if e.trie_index == prev_trie {
                prev.iter().zip(&e.suffix).take_while(|(a, b)| a == b).count().min(255)
            } else {
                0
            };
            let rest = &e.suffix[shared..];
            w.write_all(&e.trie_index.to_le_bytes())?;
            w.write_all(&[shared as u8, rest.len() as u8])?;
            w.write_all(rest)?;
            w.write_all(&e.indexer.to_le_bytes())?;
            w.write_all(&e.postings.to_le_bytes())?;
            bytes += 4 + 2 + rest.len() as u64 + 8;
            prev = &e.suffix;
            prev_trie = e.trie_index;
        }
        Ok(bytes)
    }

    /// Deserialize a dictionary written by [`Self::write_to`].
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<GlobalDictionary> {
        let mut head = [0u8; 8];
        r.read_exact(&mut head)?;
        if &head[..4] != DICT_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad dictionary magic"));
        }
        let n = u32::from_le_bytes([head[4], head[5], head[6], head[7]]) as usize;
        let mut entries = Vec::with_capacity(n);
        let mut prev: Vec<u8> = Vec::new();
        for _ in 0..n {
            let mut fixed = [0u8; 6];
            r.read_exact(&mut fixed)?;
            let trie = u32::from_le_bytes([fixed[0], fixed[1], fixed[2], fixed[3]]);
            let shared = fixed[4] as usize;
            let rest_len = fixed[5] as usize;
            let mut rest = vec![0u8; rest_len];
            r.read_exact(&mut rest)?;
            if shared > prev.len() {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "bad front-coding"));
            }
            let mut suffix = prev[..shared].to_vec();
            suffix.extend_from_slice(&rest);
            let mut tail = [0u8; 8];
            r.read_exact(&mut tail)?;
            let indexer = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
            let postings = u32::from_le_bytes([tail[4], tail[5], tail[6], tail[7]]);
            prev = suffix.clone();
            entries.push(DictEntry { trie_index: trie, suffix, indexer, postings });
        }
        Ok(GlobalDictionary { entries })
    }
}

/// Insert a *surface* term (classified internally) — convenience used by
/// serial baselines.
pub fn insert_surface(dict: &mut PartialDictionary, term: &str) -> InsertOutcome {
    let (idx, suffix) = crate::trie::classify(term);
    dict.insert_term(idx.0, suffix.as_bytes())
}

/// Look up a surface term in a shard.
pub fn lookup_surface(dict: &mut PartialDictionary, term: &str) -> Option<u32> {
    let idx = trie_index(term);
    let suffix = &term[idx.prefix_len()..];
    dict.lookup(idx.0, suffix.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_insert_and_lookup() {
        let mut d = PartialDictionary::new(0);
        let a = insert_surface(&mut d, "application");
        assert!(a.is_new);
        let b = insert_surface(&mut d, "application");
        assert!(!b.is_new);
        assert_eq!(lookup_surface(&mut d, "application"), Some(a.postings));
        assert_eq!(lookup_surface(&mut d, "apple"), None);
        assert_eq!(d.term_count(), 1);
    }

    #[test]
    fn terms_in_different_collections_are_separate() {
        let mut d = PartialDictionary::new(0);
        insert_surface(&mut d, "dog"); // collection 'd'
        insert_surface(&mut d, "dogs"); // collection "dog"
        assert_eq!(d.term_count(), 2);
        assert_eq!(d.trie_indices().count(), 2);
    }

    #[test]
    fn trie_indices_come_out_ascending() {
        let mut d = PartialDictionary::new(0);
        for t in ["zebra", "apple", "954", "-80", "mango"] {
            insert_surface(&mut d, t);
        }
        let idxs: Vec<u32> = d.trie_indices().collect();
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        assert_eq!(idxs, sorted);
    }

    #[test]
    fn combine_merges_disjoint_shards() {
        let mut d0 = PartialDictionary::new(0);
        let mut d1 = PartialDictionary::new(1);
        insert_surface(&mut d0, "apple");
        insert_surface(&mut d0, "apricot");
        insert_surface(&mut d1, "zebra");
        insert_surface(&mut d1, "954");
        let g = GlobalDictionary::combine(&[d0, d1]);
        assert_eq!(g.len(), 4);
        assert!(g.contains("apple"));
        assert!(g.contains("zebra"));
        assert!(g.contains("954"));
        assert!(!g.contains("mango"));
        let z = g.lookup("zebra").unwrap();
        assert_eq!(z.indexer, 1);
        assert_eq!(z.full_term(), "zebra");
    }

    #[test]
    fn entries_are_globally_sorted() {
        let mut d = PartialDictionary::new(0);
        for t in ["zebra", "apple", "apricot", "yak", "01", "-80"] {
            insert_surface(&mut d, t);
        }
        let g = GlobalDictionary::combine(&[d]);
        let keys: Vec<(u32, Vec<u8>)> =
            g.entries().iter().map(|e| (e.trie_index, e.suffix.clone())).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut d = PartialDictionary::new(3);
        for t in [
            "apple", "applesauce", "application", "applied", "zebra", "zeal", "954", "-80",
            "a",
        ] {
            insert_surface(&mut d, t);
        }
        let g = GlobalDictionary::combine(&[d]);
        let mut buf = Vec::new();
        let n = g.write_to(&mut buf).unwrap();
        assert_eq!(n as usize, buf.len());
        let g2 = GlobalDictionary::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn front_coding_helps_on_shared_prefixes() {
        let mut d = PartialDictionary::new(0);
        // Long terms sharing long prefixes inside one trie collection.
        for i in 0..100 {
            insert_surface(&mut d, &format!("prefixsharedverylong{i:03}"));
        }
        let g = GlobalDictionary::combine(&[d]);
        let mut buf = Vec::new();
        g.write_to(&mut buf).unwrap();
        let raw_size: usize =
            g.entries().iter().map(|e| e.suffix.len() + 14).sum::<usize>() + 8;
        assert!(
            buf.len() < raw_size * 2 / 3,
            "front coding should shrink output: {} vs {}",
            buf.len(),
            raw_size
        );
    }

    #[test]
    fn corrupt_dictionary_rejected() {
        assert!(GlobalDictionary::read_from(&mut &b"XXXX\0\0\0\0"[..]).is_err());
        let mut d = PartialDictionary::new(0);
        insert_surface(&mut d, "apple");
        let g = GlobalDictionary::combine(&[d]);
        let mut buf = Vec::new();
        g.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(GlobalDictionary::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn partial_checkpoint_roundtrip_resumes_handle_assignment() {
        let mut d = PartialDictionary::new(7);
        for t in ["apple", "applesauce", "zebra", "954", "-80", "a"] {
            insert_surface(&mut d, t);
        }
        let mut buf = Vec::new();
        let n = d.write_to(&mut buf).unwrap();
        assert_eq!(n as usize, buf.len());
        let mut back = PartialDictionary::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.indexer_id, 7);
        assert_eq!(back.term_count(), d.term_count());
        // Existing terms resolve to their original handles...
        for t in ["apple", "zebra", "954"] {
            assert_eq!(lookup_surface(&mut back, t), lookup_surface(&mut d, t));
        }
        // ...and the next insert allocates the same handle in both shards:
        // the property byte-identical resume rests on.
        let a = insert_surface(&mut d, "quince");
        let b = insert_surface(&mut back, "quince");
        assert!(a.is_new && b.is_new);
        assert_eq!(a.postings, b.postings);
        // Combined output is identical too.
        let g1 = GlobalDictionary::combine(&[d]);
        let g2 = GlobalDictionary::combine(&[back]);
        assert_eq!(g1, g2);
    }

    #[test]
    fn checkpoint_bytes_are_stable_across_a_roundtrip() {
        // write → read → write must reproduce the same bytes: the slotted
        // store's canonical legacy rendering is a fixed point.
        let mut d = PartialDictionary::new(2);
        for i in 0..400 {
            insert_surface(&mut d, &format!("stable{i:04}"));
        }
        let mut first = Vec::new();
        d.write_to(&mut first).unwrap();
        let back = PartialDictionary::read_from(&mut first.as_slice()).unwrap();
        let mut second = Vec::new();
        back.write_to(&mut second).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn partial_checkpoint_rejects_garbage() {
        assert!(PartialDictionary::read_from(&mut &b"XXXX"[..]).is_err());
        let mut d = PartialDictionary::new(0);
        insert_surface(&mut d, "apple");
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        let full = buf.clone();
        buf.truncate(buf.len() - 1);
        assert!(PartialDictionary::read_from(&mut buf.as_slice()).is_err());
        // A root index outside the node arena is rejected, not trusted.
        let mut broken = full.clone();
        let len = broken.len();
        broken[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(PartialDictionary::read_from(&mut broken.as_slice()).is_err());
        // A trie index beyond the table is rejected too.
        let mut broken = full;
        let len = broken.len();
        broken[len - 8..len - 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(PartialDictionary::read_from(&mut broken.as_slice()).is_err());
    }

    #[test]
    fn lookup_uses_trie_classification() {
        let mut d = PartialDictionary::new(0);
        insert_surface(&mut d, "application");
        let g = GlobalDictionary::combine(&[d]);
        let e = g.lookup("application").unwrap();
        assert_eq!(e.suffix, b"lication");
        assert_eq!(e.trie_index, crate::trie::trie_index("application").0);
    }
}
