//! Arenas backing the dictionary.
//!
//! Nodes and string remainders are allocated from flat, append-only arenas
//! addressed by `u32` offsets — the "pointers" of Table II. This keeps the
//! node layout position-independent (the GPU copy of a B-tree is the same
//! bytes at a different base address) and makes serialization trivial.

use crate::node::{BTreeNode, NULL};

/// Append-only store for term-string remainders: each allocation is a
/// length byte followed by the bytes (the paper's Fig 6 representation;
/// remainders are ≤ 251 bytes since terms are ≤ 255 and 4 live in-cache).
#[derive(Clone, Debug, Default)]
pub struct StringArena {
    bytes: Vec<u8>,
}

impl StringArena {
    /// Create an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild an arena from raw backing bytes (e.g. downloaded from the
    /// simulated GPU's string area, which uses the identical layout).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        StringArena { bytes }
    }

    /// Store `rest` and return its offset.
    pub fn alloc(&mut self, rest: &[u8]) -> u32 {
        assert!(rest.len() <= 255, "string remainder too long");
        let off = self.bytes.len() as u32;
        self.bytes.push(rest.len() as u8);
        self.bytes.extend_from_slice(rest);
        off
    }

    /// Fetch the remainder stored at `off`.
    pub fn get(&self, off: u32) -> &[u8] {
        let off = off as usize;
        let len = self.bytes[off] as usize;
        &self.bytes[off + 1..off + 1 + len]
    }

    /// Total bytes held (memory accounting).
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Raw backing bytes (device-memory upload path).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Append-only node storage addressed by `u32` node indices.
#[derive(Clone, Debug, Default)]
pub struct NodeArena {
    nodes: Vec<BTreeNode>,
}

impl NodeArena {
    /// Create an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild an arena from nodes (e.g. deserialized from GPU device
    /// memory, which stores the identical 512-byte layout).
    pub fn from_nodes(nodes: Vec<BTreeNode>) -> Self {
        NodeArena { nodes }
    }

    /// Allocate a fresh empty leaf, returning its index.
    pub fn alloc(&mut self) -> u32 {
        let idx = self.nodes.len() as u32;
        assert!(idx != NULL, "node arena exhausted");
        self.nodes.push(BTreeNode::default());
        idx
    }

    /// Shared access to a node.
    pub fn get(&self, idx: u32) -> &BTreeNode {
        &self.nodes[idx as usize]
    }

    /// Mutable access to a node.
    pub fn get_mut(&mut self, idx: u32) -> &mut BTreeNode {
        &mut self.nodes[idx as usize]
    }

    /// Number of nodes allocated.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been allocated.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, for serialization / device upload.
    pub fn nodes(&self) -> &[BTreeNode] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_arena_roundtrip() {
        let mut a = StringArena::new();
        let o1 = a.alloc(b"lication");
        let o2 = a.alloc(b"");
        let o3 = a.alloc(b"xyz");
        assert_eq!(a.get(o1), b"lication");
        assert_eq!(a.get(o2), b"");
        assert_eq!(a.get(o3), b"xyz");
        assert_eq!(a.len_bytes(), (1 + 8 + 1) + 1 + 3);
    }

    #[test]
    fn node_arena_alloc_and_access() {
        let mut a = NodeArena::new();
        let n0 = a.alloc();
        let n1 = a.alloc();
        assert_eq!(n0, 0);
        assert_eq!(n1, 1);
        a.get_mut(n1).count = 5;
        assert_eq!(a.get(n1).count, 5);
        assert_eq!(a.get(n0).count, 0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "remainder too long")]
    fn oversized_string_rejected() {
        StringArena::new().alloc(&[0u8; 256]);
    }
}
