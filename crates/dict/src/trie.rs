//! Trie-collection index mapping (paper Table I).
//!
//! The top level of the hybrid dictionary is a height-3 trie over the first
//! characters of a term. Because the height is fixed, the trie is never
//! materialized: a term maps directly to one of 17,613 *trie collection*
//! indices, each owning an independent B-tree. The categories are:
//!
//! | index        | category                                                  |
//! |--------------|-----------------------------------------------------------|
//! | 0            | special — anything not fitting below ("-80", "3d", "česky")|
//! | 1..=10       | pure numbers, by first digit '0'..'9'                      |
//! | 11..=36      | terms starting 'a'..'z' with ≤3 letters or a special char  |
//! |              | in the first 3 letters                                     |
//! | 37..=17612   | terms with >3 letters and plain 'a'..'z' in the first 3:   |
//! |              | 37 + (c0·676 + c1·26 + c2)                                 |
//!
//! Terms in the same collection share the trie-captured prefix, which is
//! therefore stripped before dictionary storage: 3 bytes for indices ≥37,
//! 1 byte for 1..=36, nothing for index 0.

/// Total number of trie collections: 1 + 10 + 26 + 26³.
pub const TRIE_ENTRIES: usize = 1 + 10 + 26 + 26 * 26 * 26;

/// First index of the three-letter-prefix region.
pub const THREE_LETTER_BASE: u32 = 37;

/// Identifier of a trie collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrieIndex(pub u32);

impl TrieIndex {
    /// The special catch-all collection.
    pub const SPECIAL: TrieIndex = TrieIndex(0);

    /// Number of prefix **bytes** the trie captures for terms in this
    /// collection (all captured prefixes are ASCII, so bytes == chars).
    pub fn prefix_len(self) -> usize {
        match self.0 {
            0 => 0,
            1..=36 => 1,
            _ => 3,
        }
    }

    /// Reconstruct the captured prefix string for this collection (empty
    /// for the special collection).
    pub fn prefix(self) -> String {
        match self.0 {
            0 => String::new(),
            i @ 1..=10 => ((b'0' + (i - 1) as u8) as char).to_string(),
            i @ 11..=36 => ((b'a' + (i - 11) as u8) as char).to_string(),
            i => {
                let x = i - THREE_LETTER_BASE;
                let c0 = (x / 676) as u8;
                let c1 = ((x / 26) % 26) as u8;
                let c2 = (x % 26) as u8;
                String::from_utf8(vec![b'a' + c0, b'a' + c1, b'a' + c2]).unwrap()
            }
        }
    }
}

/// Classify a term. Returns the trie index and the number of prefix bytes
/// to strip before storing the term in its B-tree.
///
/// Terms are expected in post-parse form (lowercased); uppercase input is
/// treated as "special" just as the paper's "Česky" example is.
pub fn trie_index(term: &str) -> TrieIndex {
    let b = term.as_bytes();
    if b.is_empty() {
        return TrieIndex::SPECIAL;
    }
    let c0 = b[0];
    if c0.is_ascii_digit() {
        // Pure numbers only; "3d" falls into the special collection.
        if b.iter().all(|c| c.is_ascii_digit()) {
            return TrieIndex(1 + (c0 - b'0') as u32);
        }
        return TrieIndex::SPECIAL;
    }
    if !c0.is_ascii_lowercase() {
        return TrieIndex::SPECIAL;
    }
    // The three-letter region needs > 3 chars with the first three plain
    // lowercase ASCII. No char counting required: chars <= bytes, so
    // len <= 3 means <= 3 chars, and once the first 3 bytes are plain
    // ASCII, len > 3 guarantees a 4th char after them.
    let first3_plain = b.len() >= 3 && b[..3].iter().all(u8::is_ascii_lowercase);
    if b.len() <= 3 || !first3_plain {
        return TrieIndex(11 + (c0 - b'a') as u32);
    }
    let (c1, c2) = (b[1] - b'a', b[2] - b'a');
    TrieIndex(THREE_LETTER_BASE + (c0 - b'a') as u32 * 676 + c1 as u32 * 26 + c2 as u32)
}

/// Classify and strip in one step: returns the trie index and the stored
/// suffix (term minus the captured prefix).
pub fn classify(term: &str) -> (TrieIndex, &str) {
    let idx = trie_index(term);
    (idx, &term[idx.prefix_len()..])
}

/// The pre-optimization classifier, retained verbatim as the differential
/// and benchmark baseline: it counts Unicode chars on every term where the
/// current [`trie_index`] derives the same answer from byte length alone.
/// Must agree with [`classify`] on every input.
pub fn classify_reference(term: &str) -> (TrieIndex, &str) {
    let idx = trie_index_reference(term);
    (idx, &term[idx.prefix_len()..])
}

fn trie_index_reference(term: &str) -> TrieIndex {
    let b = term.as_bytes();
    if b.is_empty() {
        return TrieIndex::SPECIAL;
    }
    let c0 = b[0];
    if c0.is_ascii_digit() {
        if b.iter().all(|c| c.is_ascii_digit()) {
            return TrieIndex(1 + (c0 - b'0') as u32);
        }
        return TrieIndex::SPECIAL;
    }
    if !c0.is_ascii_lowercase() {
        return TrieIndex::SPECIAL;
    }
    let nchars = term.chars().count();
    let first3_plain = b.len() >= 3 && b[..3].iter().all(u8::is_ascii_lowercase);
    if nchars <= 3 || !first3_plain {
        return TrieIndex(11 + (c0 - b'a') as u32);
    }
    let (c1, c2) = (b[1] - b'a', b[2] - b'a');
    TrieIndex(THREE_LETTER_BASE + (c0 - b'a') as u32 * 676 + c1 as u32 * 26 + c2 as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_examples() {
        // Rows straight out of Table I.
        assert_eq!(trie_index("-80"), TrieIndex(0));
        assert_eq!(trie_index("3d"), TrieIndex(0));
        assert_eq!(trie_index("Česky"), TrieIndex(0));
        assert_eq!(trie_index("01"), TrieIndex(1));
        assert_eq!(trie_index("0195"), TrieIndex(1));
        assert_eq!(trie_index("9"), TrieIndex(10));
        assert_eq!(trie_index("954"), TrieIndex(10));
        assert_eq!(trie_index("a"), TrieIndex(11));
        assert_eq!(trie_index("at"), TrieIndex(11));
        assert_eq!(trie_index("act"), TrieIndex(11));
        assert_eq!(trie_index("a\u{f1}onuevo"), TrieIndex(11)); // añonuevo
        assert_eq!(trie_index("z"), TrieIndex(36));
        assert_eq!(trie_index("zoo"), TrieIndex(36));
        assert_eq!(trie_index("zo\u{e9}"), TrieIndex(36)); // zoé
        assert_eq!(trie_index("aaat"), TrieIndex(37));
        assert_eq!(trie_index("aaa\u{e9}"), TrieIndex(37)); // aaaé: first 3 plain
        assert_eq!(trie_index("aabomycin"), TrieIndex(38));
        assert_eq!(trie_index("zzzy"), TrieIndex(17612));
    }

    #[test]
    fn entry_count_matches_paper() {
        assert_eq!(TRIE_ENTRIES, 17613);
        // Max index is TRIE_ENTRIES - 1.
        assert_eq!(trie_index("zzzz").0 as usize, TRIE_ENTRIES - 1);
    }

    #[test]
    fn application_example_strips_app() {
        let (idx, rest) = classify("application");
        assert_eq!(idx.prefix(), "app");
        assert_eq!(rest, "lication");
    }

    #[test]
    fn prefix_roundtrip_for_every_index() {
        for i in 0..TRIE_ENTRIES as u32 {
            let idx = TrieIndex(i);
            let p = idx.prefix();
            assert_eq!(p.len(), idx.prefix_len());
            if i >= THREE_LETTER_BASE {
                // A term made of the prefix plus one more letter maps back.
                let term = format!("{p}x");
                assert_eq!(trie_index(&term), idx, "prefix {p}");
            }
        }
    }

    #[test]
    fn empty_and_weird_terms_are_special() {
        assert_eq!(trie_index(""), TrieIndex::SPECIAL);
        assert_eq!(trie_index("\u{e9}clair"), TrieIndex::SPECIAL); // éclair
        assert_eq!(trie_index("_foo"), TrieIndex::SPECIAL);
        assert_eq!(trie_index("12ab"), TrieIndex::SPECIAL);
    }

    #[test]
    fn three_letter_terms_go_to_single_letter_collections() {
        assert_eq!(trie_index("the"), TrieIndex(11 + (b't' - b'a') as u32));
        assert_eq!(trie_index("cat"), TrieIndex(11 + 2));
        assert_eq!(trie_index("dogs"), trie_index("dogged"));
        assert_ne!(trie_index("dog"), trie_index("dogs"));
    }

    #[test]
    fn classify_strip_lengths() {
        assert_eq!(classify("-80"), (TrieIndex(0), "-80"));
        assert_eq!(classify("954"), (TrieIndex(10), "54"));
        assert_eq!(classify("zoo"), (TrieIndex(36), "oo"));
        assert_eq!(classify("zzzy"), (TrieIndex(17612), "y"));
        // Suffix may be empty for exactly-prefix-plus-nothing cases.
        assert_eq!(classify("a"), (TrieIndex(11), ""));
        assert_eq!(classify("aaaa").1, "a");
    }

    #[test]
    fn multibyte_after_prefix_is_safe() {
        // Prefix stripping is byte-based; captured prefixes are always
        // ASCII so stripping never splits a UTF-8 sequence.
        let (idx, rest) = classify("zo\u{e9}");
        assert_eq!(idx, TrieIndex(36));
        assert_eq!(rest, "o\u{e9}");
        let (idx, rest) = classify("abc\u{e9}d");
        assert_eq!(idx.prefix(), "abc");
        assert_eq!(rest, "\u{e9}d");
    }

    #[test]
    fn all_indices_in_range() {
        // Fuzz a pile of short byte strings; every classification must be
        // within table bounds and prefix_len must not exceed term length.
        let alphabet = b"ab0-9z\xc3\xa9"; // includes bytes of 'é'
        let mut terms = Vec::new();
        for &a in alphabet {
            for &b in alphabet {
                for &c in alphabet {
                    if let Ok(s) = std::str::from_utf8(&[a, b, c]) {
                        terms.push(s.to_string());
                    }
                }
            }
        }
        for t in &terms {
            let idx = trie_index(t);
            assert!((idx.0 as usize) < TRIE_ENTRIES);
            assert!(idx.prefix_len() <= t.len());
        }
    }

    #[test]
    fn reference_classifier_agrees() {
        // The retained pre-optimization classifier and the byte-length one
        // must agree everywhere, including multibyte and 3/4-char edges.
        let mut terms: Vec<String> = vec![
            "", "a", "ab", "abc", "abcd", "ab\u{e9}", "abc\u{e9}", "\u{e9}abc",
            "a\u{f1}onuevo", "954", "3d", "-80", "zzzz", "zo\u{e9}",
        ]
        .into_iter()
        .map(str::to_string)
        .collect();
        let alphabet = b"ab0-9z\xc3\xa9";
        for &a in alphabet {
            for &b in alphabet {
                for &c in alphabet {
                    if let Ok(s) = std::str::from_utf8(&[a, b, c]) {
                        terms.push(s.to_string());
                        terms.push(format!("ab{s}"));
                    }
                }
            }
        }
        for t in &terms {
            assert_eq!(classify(t), classify_reference(t), "term {t:?}");
        }
    }
}
