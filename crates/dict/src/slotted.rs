//! Slotted-node B-tree — the dictionary insert/lookup hot path.
//!
//! The legacy path ([`crate::btree`], frozen as the differential-test
//! reference) stores each key's 4-byte string cache as `[u8; 4]` and walks
//! nodes with a branchy binary search that clones 512-byte nodes and
//! re-derives the probe's cache on every comparison. This module rewrites
//! the same degree-16 B-tree around a *slotted* node:
//!
//! * Each key slot holds a 4-byte order-preserving **head**: the first four
//!   bytes of the stored term, zero-padded, reinterpreted as a big-endian
//!   `u32`. Integer comparison of heads equals lexicographic comparison of
//!   the zero-padded prefixes (terms never contain NUL, so padding is
//!   unambiguous — the same argument as [`crate::node::BTreeNode::make_cache`]).
//! * Unused slots carry the sentinel [`HEAD_SENTINEL`] (`u32::MAX`, which
//!   no UTF-8 term can produce since `0xFF` never appears in UTF-8), so
//!   intra-node search is a **branch-free rank**: count the heads smaller
//!   than the probe across all 31 fixed slots. The loop has no data-
//!   dependent branches and autovectorizes.
//! * Keys live in parallel slot arrays (`heads` / `term_ptr` /
//!   `postings_ptr`), so the shift on leaf insert and the upper-half move
//!   on split are `memcpy`s of slot arrays, not per-entry element moves.
//! * A head tie is resolved by *remainder emptiness* before any string
//!   touch: if either side has no out-of-node remainder, the order is
//!   decided by length alone. Only a tie between two keys that both have
//!   remainders reads the string arena (the legacy path read it whenever
//!   caches tied, even when emptiness already decided — the "falls back to
//!   strings too eagerly" defect this module fixes).
//!
//! The insert algorithm itself is byte-for-byte the legacy CLRS preemptive
//! split (same node-allocation, string-allocation and postings-handle
//! order), so a slotted store converts to and from the legacy 512-byte
//! node layout losslessly: checkpoints keep the `IIPD` format and the
//! simulated GPU keeps operating on Table II nodes in device memory.

use crate::arena::StringArena;
use crate::btree::{BTree, BTreeStore, InsertOutcome};
use crate::node::{BTreeNode, MAX_KEYS, NULL};
use std::cmp::Ordering;

/// Head value of every unused slot. `u32::MAX` decodes to the byte string
/// `FF FF FF FF`, which no UTF-8 term prefix can equal; even for raw
/// non-UTF-8 probes the search stays correct because tie resolution never
/// looks past `count` valid slots.
pub const HEAD_SENTINEL: u32 = u32::MAX;

/// Encode a term's 4-byte order-preserving head: first four bytes,
/// zero-padded, as a big-endian `u32` (so integer order == byte order).
#[inline]
pub fn term_head(term: &[u8]) -> u32 {
    u32::from_be_bytes(BTreeNode::make_cache(term))
}

/// One slotted B-tree node: the same degree-16 shape as the legacy
/// [`BTreeNode`], laid out struct-of-arrays so intra-node search touches
/// only the head array and shifts/splits are slice copies.
#[derive(Clone, Debug)]
pub struct SlottedNode {
    /// Number of valid keys (0..=31).
    pub count: u32,
    /// 1 when the node is a leaf.
    pub leaf: u32,
    /// Big-endian-encoded 4-byte heads; [`HEAD_SENTINEL`] above `count`.
    pub heads: [u32; MAX_KEYS],
    /// String-arena offsets of each term's remainder (`NULL` when the term
    /// fits entirely in its head).
    pub term_ptr: [u32; MAX_KEYS],
    /// Postings-list handles, parallel to `heads`.
    pub postings_ptr: [u32; MAX_KEYS],
    /// Child node indices (`count + 1` valid when not a leaf).
    pub children: [u32; MAX_KEYS + 1],
}

impl Default for SlottedNode {
    fn default() -> Self {
        SlottedNode {
            count: 0,
            leaf: 1,
            heads: [HEAD_SENTINEL; MAX_KEYS],
            term_ptr: [NULL; MAX_KEYS],
            postings_ptr: [NULL; MAX_KEYS],
            children: [NULL; MAX_KEYS + 1],
        }
    }
}

impl SlottedNode {
    /// Is this node a leaf?
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.leaf != 0
    }

    /// Is the node full (must split before inserting below it)?
    #[inline]
    pub fn is_full(&self) -> bool {
        self.count as usize == MAX_KEYS
    }

    /// Convert a legacy 512-byte node. Slots at or above `count` are
    /// normalized to the canonical empty form regardless of any residue the
    /// legacy builder (CPU or GPU) left behind — residue is never read, so
    /// normalizing it cannot change behavior.
    pub fn from_legacy(n: &BTreeNode) -> SlottedNode {
        let count = (n.count as usize).min(MAX_KEYS);
        let mut s = SlottedNode { count: count as u32, leaf: n.leaf, ..SlottedNode::default() };
        for i in 0..count {
            s.heads[i] = u32::from_be_bytes(n.cache[i]);
            s.term_ptr[i] = n.term_ptr[i];
            s.postings_ptr[i] = n.postings_ptr[i];
        }
        if n.leaf == 0 {
            s.children[..=count].copy_from_slice(&n.children[..=count]);
        }
        s
    }

    /// Convert to the legacy 512-byte layout in canonical form (slots at or
    /// above `count` cleared), the shape checkpoints serialize and the
    /// simulated GPU uploads.
    pub fn to_legacy(&self) -> BTreeNode {
        let count = (self.count as usize).min(MAX_KEYS);
        let mut n = BTreeNode { count: self.count, leaf: self.leaf, ..BTreeNode::default() };
        for i in 0..count {
            n.cache[i] = self.heads[i].to_be_bytes();
            n.term_ptr[i] = self.term_ptr[i];
            n.postings_ptr[i] = self.postings_ptr[i];
        }
        if self.leaf == 0 {
            n.children[..=count].copy_from_slice(&self.children[..=count]);
        }
        n
    }
}

/// Branch-free lower bound over the fixed head array: the number of heads
/// strictly smaller than `probe`. Sentinel slots never count (no head is
/// smaller than a value only when `probe` exceeds it; `HEAD_SENTINEL` is
/// the maximum), so the rank lands on the first slot whose head is ≥
/// `probe` — the binary-search position without any data-dependent branch.
#[inline]
fn head_rank(heads: &[u32; MAX_KEYS], probe: u32) -> usize {
    let mut rank = 0usize;
    for &h in heads.iter() {
        rank += (h < probe) as usize;
    }
    rank
}

/// Backing storage for all slotted B-trees owned by one indexer: node
/// arena, string arena, postings-handle allocator and comparison counters.
/// The drop-in fast-path replacement for [`BTreeStore`]; identical insert
/// semantics (same handles, same structure) at a fraction of the cost.
#[derive(Clone, Debug, Default)]
pub struct SlottedStore {
    nodes: Vec<SlottedNode>,
    /// Term-remainder storage (same layout as the legacy store, so the
    /// bytes upload to the simulated GPU's string area unchanged).
    pub strings: StringArena,
    next_postings: u32,
    /// Node searches settled entirely by the 4-byte head array.
    pub cache_hits: u64,
    /// Remainder byte-comparisons (string-arena reads) during search.
    pub cache_misses: u64,
    /// B-TREE-SPLIT-CHILD invocations across all trees in the store.
    pub node_splits: u64,
    /// Head ties resolved by remainder *emptiness* without touching the
    /// string arena — each one was a full string comparison on the legacy
    /// path (the eager-fallback defect, fixed here).
    pub head_tie_breaks: u64,
}

impl SlottedStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a new empty tree (root is an empty leaf).
    pub fn new_tree(&mut self) -> BTree {
        BTree { root: self.alloc_node() }
    }

    /// Convert a legacy store (GPU download or checkpoint read) into
    /// slotted form. Handle assignment and structure carry over exactly.
    pub fn from_legacy(store: BTreeStore) -> SlottedStore {
        let next_postings = store.term_count();
        let nodes = store.nodes.nodes().iter().map(SlottedNode::from_legacy).collect();
        SlottedStore { nodes, strings: store.strings, next_postings, ..Default::default() }
    }

    /// Render every node in the legacy canonical 512-byte layout, for
    /// checkpoint serialization and GPU device upload.
    pub fn to_legacy_nodes(&self) -> Vec<BTreeNode> {
        self.nodes.iter().map(SlottedNode::to_legacy).collect()
    }

    /// Number of distinct terms ever inserted across all trees in the store
    /// (== number of postings handles issued).
    pub fn term_count(&self) -> u32 {
        self.next_postings
    }

    /// Number of nodes allocated.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Resident bytes of the store's arenas — slotted nodes plus the
    /// string-remainder arena — the dictionary's contribution to the
    /// pipeline memory governor's accounting.
    pub fn mem_bytes(&self) -> u64 {
        (self.nodes.len() * std::mem::size_of::<SlottedNode>()) as u64
            + self.strings.len_bytes() as u64
    }

    /// Shared access to a node.
    pub fn node(&self, idx: u32) -> &SlottedNode {
        &self.nodes[idx as usize]
    }

    /// Mutable access to a node (verification tests corrupt state with it).
    pub fn node_mut(&mut self, idx: u32) -> &mut SlottedNode {
        &mut self.nodes[idx as usize]
    }

    fn alloc_node(&mut self) -> u32 {
        let idx = self.nodes.len() as u32;
        assert!(idx != NULL, "node arena exhausted");
        self.nodes.push(SlottedNode::default());
        idx
    }

    /// Search `term` among the keys of `node_idx`. `Ok(slot)` when found,
    /// `Err(pos)` with the child/insert position otherwise. The head rank
    /// lands on the first slot whose head is ≥ the probe's; only the run of
    /// exact head ties after it is examined further, and only ties where
    /// both sides carry a remainder read the string arena.
    fn search_node(&mut self, node_idx: u32, probe: u32, term: &[u8]) -> Result<usize, usize> {
        let node = &self.nodes[node_idx as usize];
        let count = node.count as usize;
        let mut pos = head_rank(&node.heads, probe);
        let probe_rem: &[u8] = if term.len() > 4 { &term[4..] } else { b"" };
        let mut misses = 0u64;
        let mut ties = 0u64;
        let result = loop {
            if pos >= count || node.heads[pos] != probe {
                break Err(pos);
            }
            let key_rem_ptr = node.term_ptr[pos];
            if key_rem_ptr == NULL {
                if probe_rem.is_empty() {
                    break Ok(pos); // identical: same head, both in-head only
                }
                // Stored key is the probe's proper prefix: key < probe.
                ties += 1;
                pos += 1;
                continue;
            }
            if probe_rem.is_empty() {
                // Probe is the stored key's proper prefix: probe < key.
                ties += 1;
                break Err(pos);
            }
            misses += 1;
            match probe_rem.cmp(self.strings.get(key_rem_ptr)) {
                Ordering::Less => break Err(pos),
                Ordering::Equal => break Ok(pos),
                Ordering::Greater => pos += 1,
            }
        };
        if misses == 0 {
            self.cache_hits += 1;
        } else {
            self.cache_misses += misses;
        }
        self.head_tie_breaks += ties;
        result
    }

    /// Compare the probe against the single key `slot` of `node_idx` (the
    /// post-split median re-comparison). Same tie policy as full search.
    fn cmp_slot(&mut self, node_idx: u32, slot: usize, probe: u32, term: &[u8]) -> Ordering {
        let node = &self.nodes[node_idx as usize];
        let head = node.heads[slot];
        if probe != head {
            self.cache_hits += 1;
            return probe.cmp(&head);
        }
        let key_rem_ptr = node.term_ptr[slot];
        let probe_rem: &[u8] = if term.len() > 4 { &term[4..] } else { b"" };
        match (probe_rem.is_empty(), key_rem_ptr == NULL) {
            (true, true) => {
                self.cache_hits += 1;
                Ordering::Equal
            }
            (true, false) => {
                self.cache_hits += 1;
                self.head_tie_breaks += 1;
                Ordering::Less
            }
            (false, true) => {
                self.cache_hits += 1;
                self.head_tie_breaks += 1;
                Ordering::Greater
            }
            (false, false) => {
                self.cache_misses += 1;
                probe_rem.cmp(self.strings.get(key_rem_ptr))
            }
        }
    }

    /// Install `term` at `pos` of leaf `node_idx`, shifting the slot
    /// arrays right by one with slice copies.
    fn insert_at(&mut self, node_idx: u32, pos: usize, probe: u32, term: &[u8]) -> u32 {
        let rem_ptr = if term.len() > 4 { self.strings.alloc(&term[4..]) } else { NULL };
        let postings = self.next_postings;
        self.next_postings += 1;
        let node = &mut self.nodes[node_idx as usize];
        let count = node.count as usize;
        debug_assert!(count < MAX_KEYS);
        node.heads.copy_within(pos..count, pos + 1);
        node.term_ptr.copy_within(pos..count, pos + 1);
        node.postings_ptr.copy_within(pos..count, pos + 1);
        node.heads[pos] = probe;
        node.term_ptr[pos] = rem_ptr;
        node.postings_ptr[pos] = postings;
        node.count += 1;
        postings
    }

    /// Split the full child `ci` of `parent_idx` (CLRS B-TREE-SPLIT-CHILD).
    /// Upper-half and parent moves are slice copies; the vacated upper
    /// slots of the left node are reset to the canonical empty form so the
    /// sentinel discipline (and thus the branch-free rank) stays intact.
    fn split_child(&mut self, parent_idx: u32, ci: usize) {
        self.node_splits += 1;
        let left_idx = self.nodes[parent_idx as usize].children[ci] as usize;
        let right_idx = self.alloc_node() as usize;
        const MID: usize = MAX_KEYS / 2; // 15: median key index
        let (med_head, med_term, med_post) = {
            // right_idx is the freshly pushed last node, so the split
            // borrow below always places `left` before `right`.
            let (low, high) = self.nodes.split_at_mut(right_idx);
            let left = &mut low[left_idx];
            let right = &mut high[0];
            debug_assert!(left.is_full());
            right.leaf = left.leaf;
            right.count = (MAX_KEYS - MID - 1) as u32; // 15 keys
            right.heads[..MAX_KEYS - MID - 1].copy_from_slice(&left.heads[MID + 1..]);
            right.term_ptr[..MAX_KEYS - MID - 1].copy_from_slice(&left.term_ptr[MID + 1..]);
            right.postings_ptr[..MAX_KEYS - MID - 1]
                .copy_from_slice(&left.postings_ptr[MID + 1..]);
            if left.leaf == 0 {
                right.children[..MAX_KEYS - MID].copy_from_slice(&left.children[MID + 1..]);
            }
            let median = (left.heads[MID], left.term_ptr[MID], left.postings_ptr[MID]);
            left.count = MID as u32;
            left.heads[MID..].fill(HEAD_SENTINEL);
            left.term_ptr[MID..].fill(NULL);
            left.postings_ptr[MID..].fill(NULL);
            if left.leaf == 0 {
                left.children[MID + 1..].fill(NULL);
            }
            median
        };
        // Insert the median into the parent at slot ci.
        let parent = &mut self.nodes[parent_idx as usize];
        let pcount = parent.count as usize;
        debug_assert!(pcount < MAX_KEYS);
        parent.heads.copy_within(ci..pcount, ci + 1);
        parent.term_ptr.copy_within(ci..pcount, ci + 1);
        parent.postings_ptr.copy_within(ci..pcount, ci + 1);
        parent.children.copy_within(ci + 1..pcount + 1, ci + 2);
        parent.heads[ci] = med_head;
        parent.term_ptr[ci] = med_term;
        parent.postings_ptr[ci] = med_post;
        parent.children[ci + 1] = right_idx as u32;
        parent.count += 1;
    }

    /// Insert `term` (already trie-prefix-stripped) into `tree`, returning
    /// its postings handle and whether it is new. Allocation order (nodes,
    /// string remainders, postings handles) is identical to the legacy
    /// path, which is what keeps checkpoints and GPU interop byte-stable.
    pub fn insert(&mut self, tree: &mut BTree, term: &[u8]) -> InsertOutcome {
        let probe = term_head(term);
        if self.nodes[tree.root as usize].is_full() {
            let new_root = self.alloc_node();
            {
                let nr = &mut self.nodes[new_root as usize];
                nr.leaf = 0;
                nr.children[0] = tree.root;
            }
            self.split_child(new_root, 0);
            tree.root = new_root;
        }
        self.insert_nonfull(tree.root, probe, term)
    }

    fn insert_nonfull(&mut self, mut node_idx: u32, probe: u32, term: &[u8]) -> InsertOutcome {
        loop {
            match self.search_node(node_idx, probe, term) {
                Ok(slot) => {
                    return InsertOutcome {
                        postings: self.nodes[node_idx as usize].postings_ptr[slot],
                        is_new: false,
                    };
                }
                Err(pos) => {
                    let node = &self.nodes[node_idx as usize];
                    if node.is_leaf() {
                        let postings = self.insert_at(node_idx, pos, probe, term);
                        return InsertOutcome { postings, is_new: true };
                    }
                    let child = node.children[pos];
                    if self.nodes[child as usize].is_full() {
                        self.split_child(node_idx, pos);
                        // The median moved up into `pos`; re-compare.
                        match self.cmp_slot(node_idx, pos, probe, term) {
                            Ordering::Equal => {
                                return InsertOutcome {
                                    postings: self.nodes[node_idx as usize].postings_ptr[pos],
                                    is_new: false,
                                };
                            }
                            Ordering::Greater => {
                                node_idx = self.nodes[node_idx as usize].children[pos + 1]
                            }
                            Ordering::Less => {
                                node_idx = self.nodes[node_idx as usize].children[pos]
                            }
                        }
                    } else {
                        node_idx = child;
                    }
                }
            }
        }
    }

    /// Look up `term`, returning its postings handle if present.
    pub fn get(&mut self, tree: &BTree, term: &[u8]) -> Option<u32> {
        let probe = term_head(term);
        let mut node_idx = tree.root;
        loop {
            match self.search_node(node_idx, probe, term) {
                Ok(slot) => return Some(self.nodes[node_idx as usize].postings_ptr[slot]),
                Err(pos) => {
                    let node = &self.nodes[node_idx as usize];
                    if node.is_leaf() {
                        return None;
                    }
                    node_idx = node.children[pos];
                }
            }
        }
    }

    /// Reconstruct the full stored term at `slot` of node `node_idx`.
    pub fn full_term(&self, node_idx: u32, slot: usize) -> Vec<u8> {
        let node = &self.nodes[node_idx as usize];
        let head = node.heads[slot].to_be_bytes();
        let head_len = head.iter().position(|&b| b == 0).unwrap_or(4);
        let mut out = head[..head_len].to_vec();
        if node.term_ptr[slot] != NULL {
            out.extend_from_slice(self.strings.get(node.term_ptr[slot]));
        }
        out
    }

    /// In-order traversal: `(term, postings handle)` in lexicographic order.
    pub fn iter_terms(&self, tree: &BTree) -> Vec<(Vec<u8>, u32)> {
        let mut out = Vec::new();
        self.walk(tree.root, &mut out);
        out
    }

    fn walk(&self, node_idx: u32, out: &mut Vec<(Vec<u8>, u32)>) {
        let node = &self.nodes[node_idx as usize];
        let count = node.count as usize;
        for i in 0..count {
            if node.leaf == 0 {
                self.walk(node.children[i], out);
            }
            out.push((self.full_term(node_idx, i), node.postings_ptr[i]));
        }
        if node.leaf == 0 && count > 0 {
            self.walk(node.children[count], out);
        }
    }

    /// Height of the tree (number of levels; 1 for a lone leaf).
    pub fn depth(&self, tree: &BTree) -> usize {
        let mut d = 1;
        let mut idx = tree.root;
        while self.nodes[idx as usize].leaf == 0 {
            idx = self.nodes[idx as usize].children[0];
            d += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn fresh() -> (SlottedStore, BTree) {
        let mut s = SlottedStore::new();
        let t = s.new_tree();
        (s, t)
    }

    fn legacy_fresh() -> (BTreeStore, BTree) {
        let mut s = BTreeStore::new();
        let t = s.new_tree();
        (s, t)
    }

    #[test]
    fn term_head_preserves_order() {
        let mut terms: Vec<&[u8]> = vec![b"", b"a", b"ab", b"abcd", b"abce", b"b", b"zzzz"];
        terms.sort();
        let heads: Vec<u32> = terms.iter().map(|t| term_head(t)).collect();
        let mut sorted = heads.clone();
        sorted.sort_unstable();
        assert_eq!(heads, sorted);
        // Heads of 4-byte-prefix-equal terms tie; longer terms never sort
        // below their prefix.
        assert_eq!(term_head(b"abcd"), term_head(b"abcdzzz"));
        assert!(term_head(b"abc") < term_head(b"abcd"));
    }

    #[test]
    fn insert_get_and_duplicates() {
        let (mut s, mut t) = fresh();
        let a = s.insert(&mut t, b"lication");
        assert!(a.is_new);
        let b = s.insert(&mut t, b"le");
        assert!(b.is_new);
        let a2 = s.insert(&mut t, b"lication");
        assert!(!a2.is_new);
        assert_eq!(a2.postings, a.postings);
        assert_eq!(s.get(&t, b"lication"), Some(a.postings));
        assert_eq!(s.get(&t, b"le"), Some(b.postings));
        assert_eq!(s.get(&t, b"missing"), None);
        assert_eq!(s.get(&t, b""), None);
    }

    #[test]
    fn empty_term_is_a_valid_key() {
        let (mut s, mut t) = fresh();
        let e = s.insert(&mut t, b"");
        assert!(e.is_new);
        let x = s.insert(&mut t, b"x");
        assert_eq!(s.get(&t, b""), Some(e.postings));
        assert_eq!(s.get(&t, b"x"), Some(x.postings));
        assert_eq!(s.iter_terms(&t)[0].0, b"");
    }

    #[test]
    fn matches_legacy_store_handle_for_handle() {
        // The load-bearing identity: same stream in, same outcome stream,
        // same structure, same canonical node bytes out.
        let mut keys: Vec<String> = (0..800)
            .map(|i| match i % 5 {
                0 => format!("k{i:05}"),
                1 => format!("shared-prefix-{:03}", i % 97),
                2 => format!("{:02}", i % 50),
                3 => format!("x{}", "y".repeat(i % 9)),
                _ => format!("unicode-é火-{i}"),
            })
            .collect();
        keys.shuffle(&mut StdRng::seed_from_u64(42));
        let (mut s, mut t) = fresh();
        let (mut ls, mut lt) = legacy_fresh();
        for k in &keys {
            let a = s.insert(&mut t, k.as_bytes());
            let b = ls.insert(&mut lt, k.as_bytes());
            assert_eq!(a, b, "outcome diverged on {k}");
        }
        assert_eq!(t.root, lt.root);
        assert_eq!(s.term_count(), ls.term_count());
        assert_eq!(s.iter_terms(&t), ls.iter_terms(&lt));
        assert_eq!(s.depth(&t), ls.depth(&lt));
        assert_eq!(s.strings.as_bytes(), ls.strings.as_bytes());
        // Canonical legacy rendering matches node-for-node in the fields
        // that carry information (slots < count plus live children).
        let rendered = s.to_legacy_nodes();
        assert_eq!(rendered.len(), ls.nodes.len());
        for (idx, (a, b)) in rendered.iter().zip(ls.nodes.nodes()).enumerate() {
            assert_eq!(a.count, b.count, "count differs at node {idx}");
            assert_eq!(a.leaf, b.leaf, "leaf differs at node {idx}");
            let c = a.count as usize;
            assert_eq!(a.cache[..c], b.cache[..c], "caches differ at node {idx}");
            assert_eq!(a.term_ptr[..c], b.term_ptr[..c], "term ptrs differ at node {idx}");
            assert_eq!(
                a.postings_ptr[..c],
                b.postings_ptr[..c],
                "postings differ at node {idx}"
            );
            if a.leaf == 0 {
                assert_eq!(
                    a.children[..=c],
                    b.children[..=c],
                    "children differ at node {idx}"
                );
            }
        }
    }

    #[test]
    fn legacy_roundtrip_preserves_structure_and_handles() {
        let (mut s, mut t) = fresh();
        let mut keys: Vec<String> = (0..300).map(|i| format!("key{i:04}")).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(7));
        for k in &keys {
            s.insert(&mut t, k.as_bytes());
        }
        let legacy = BTreeStore::from_parts(
            crate::arena::NodeArena::from_nodes(s.to_legacy_nodes()),
            StringArena::from_bytes(s.strings.as_bytes().to_vec()),
            s.term_count(),
        );
        let mut back = SlottedStore::from_legacy(legacy);
        assert_eq!(back.term_count(), s.term_count());
        assert_eq!(back.iter_terms(&t), s.iter_terms(&t));
        // Continued inserts allocate the same handles in both stores.
        let mut t2 = t;
        let a = s.insert(&mut t, b"after-roundtrip");
        let b = back.insert(&mut t2, b"after-roundtrip");
        assert_eq!(a, b);
        assert_eq!(t.root, t2.root);
    }

    #[test]
    fn head_distinguishable_ties_never_touch_strings() {
        // Satellite regression for the eager-fallback fix: every key pair
        // here is distinguished by (head, remainder-emptiness) alone, so
        // the slotted path must do ZERO string comparisons while the legacy
        // path (which read the arena on every cache tie) does many.
        let heads = ["aaaa", "abab", "baba", "bbbb", "cccc", "dddd", "eeee", "ffff"];
        let (mut s, mut t) = fresh();
        let (mut ls, mut lt) = legacy_fresh();
        for h in heads {
            for k in [h.to_string(), format!("{h}tail")] {
                s.insert(&mut t, k.as_bytes());
                ls.insert(&mut lt, k.as_bytes());
            }
        }
        // Probe the short (in-head-only) variants repeatedly: each probe
        // ties with its `…tail` sibling but emptiness decides the order.
        for _ in 0..10 {
            for h in heads {
                assert!(s.get(&t, h.as_bytes()).is_some());
                assert!(ls.get(&lt, h.as_bytes()).is_some());
            }
        }
        assert_eq!(s.cache_misses, 0, "slotted path read the string arena needlessly");
        assert!(s.head_tie_breaks > 0, "ties should be resolved by emptiness");
        assert!(
            ls.cache_misses > 0,
            "reference path is expected to fall back eagerly on this workload"
        );
    }

    #[test]
    fn splits_keep_sentinel_discipline() {
        let (mut s, mut t) = fresh();
        let mut keys: Vec<String> = (0..500).map(|i| format!("w{i:04}")).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(3));
        for k in &keys {
            s.insert(&mut t, k.as_bytes());
        }
        assert!(s.node_splits > 0);
        for idx in 0..s.num_nodes() as u32 {
            let n = s.node(idx);
            for slot in n.count as usize..MAX_KEYS {
                assert_eq!(n.heads[slot], HEAD_SENTINEL, "stale head at {idx}/{slot}");
                assert_eq!(n.term_ptr[slot], NULL);
                assert_eq!(n.postings_ptr[slot], NULL);
            }
        }
    }

    #[test]
    fn separate_trees_in_one_store_are_independent() {
        let mut s = SlottedStore::new();
        let mut t1 = s.new_tree();
        let mut t2 = s.new_tree();
        s.insert(&mut t1, b"alpha");
        s.insert(&mut t2, b"beta");
        assert!(s.get(&t1, b"beta").is_none());
        assert!(s.get(&t2, b"alpha").is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_legacy_on_arbitrary_streams(
            keys in proptest::collection::vec("[a-f]{0,10}", 1..300)
        ) {
            let (mut s, mut t) = fresh();
            let (mut ls, mut lt) = legacy_fresh();
            for k in &keys {
                let a = s.insert(&mut t, k.as_bytes());
                let b = ls.insert(&mut lt, k.as_bytes());
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(t.root, lt.root);
            prop_assert_eq!(s.iter_terms(&t), ls.iter_terms(&lt));
            for k in &keys {
                prop_assert_eq!(s.get(&t, k.as_bytes()), ls.get(&lt, k.as_bytes()));
            }
        }

        #[test]
        fn prop_head_collision_streams_stay_sorted(
            tails in proptest::collection::vec("[a-c]{0,6}", 1..120)
        ) {
            // Adversarial: every key shares the head "wxyz", so ordering is
            // decided entirely by tie resolution.
            let (mut s, mut t) = fresh();
            let mut model = std::collections::BTreeMap::new();
            for tail in &tails {
                let key = format!("wxyz{tail}");
                let out = s.insert(&mut t, key.as_bytes());
                let expect_new = !model.contains_key(key.as_bytes());
                prop_assert_eq!(out.is_new, expect_new);
                model.entry(key.into_bytes()).or_insert(out.postings);
            }
            let got = s.iter_terms(&t);
            let want: Vec<(Vec<u8>, u32)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
