//! The 512-byte B-tree node (paper Table II).
//!
//! Degree-16 B-tree: up to 31 terms per node, chosen to match the CUDA warp
//! size so one warp can compare a probe term against every key in a node in
//! parallel. Variable-length term strings cannot live inside a fixed node,
//! so each key slot holds a 4-byte *string cache* (the first four bytes of
//! the stored, trie-prefix-stripped term) plus a pointer to the remainder in
//! a string arena. Short terms (≤ 4 bytes) live entirely in the cache.
//!
//! The layout is `#[repr(C)]` and exactly 512 bytes, and the same bytes are
//! what the simulated GPU's device memory holds — the CUDA indexer reads
//! nodes as raw 32-bit words at the offsets exported below.

/// Maximum keys per node (2·t − 1 with degree t = 16).
pub const MAX_KEYS: usize = 31;
/// Minimum keys in a non-root node (t − 1).
pub const MIN_KEYS: usize = 15;
/// B-tree degree.
pub const DEGREE: usize = 16;
/// Node size in bytes.
pub const NODE_BYTES: usize = 512;
/// Null pointer sentinel for arena offsets / node indices.
pub const NULL: u32 = u32::MAX;

/// Byte offset of the valid-term count.
pub const OFF_COUNT: usize = 0;
/// Byte offset of the 31 term-string pointers.
pub const OFF_TERM_PTR: usize = 4;
/// Byte offset of the leaf indicator.
pub const OFF_LEAF: usize = 128;
/// Byte offset of the 31 postings-list pointers.
pub const OFF_POSTINGS: usize = 132;
/// Byte offset of the 32 child pointers.
pub const OFF_CHILDREN: usize = 256;
/// Byte offset of the 31 four-byte string caches.
pub const OFF_CACHE: usize = 384;

/// One B-tree node, laid out exactly as Table II specifies.
#[repr(C)]
#[derive(Clone, Debug)]
pub struct BTreeNode {
    /// Number of valid terms (0..=31).
    pub count: u32,
    /// String-arena offsets of each term's remainder (`NULL` when the term
    /// fits entirely in its cache).
    pub term_ptr: [u32; MAX_KEYS],
    /// 1 when the node is a leaf.
    pub leaf: u32,
    /// Postings-list handles, parallel to `term_ptr`.
    pub postings_ptr: [u32; MAX_KEYS],
    /// Child node indices (count + 1 valid when not a leaf).
    pub children: [u32; MAX_KEYS + 1],
    /// First four bytes of each stored term, zero-padded. Terms never
    /// contain NUL, so padding is unambiguous.
    pub cache: [[u8; 4]; MAX_KEYS],
    /// Explicit padding to 512 bytes (Table II's final row).
    pub _pad: u32,
}

// The GPU indexer depends on this exact size and field placement.
const _: () = assert!(std::mem::size_of::<BTreeNode>() == NODE_BYTES);
const _: () = assert!(std::mem::align_of::<BTreeNode>() == 4);

impl Default for BTreeNode {
    fn default() -> Self {
        BTreeNode {
            count: 0,
            term_ptr: [NULL; MAX_KEYS],
            leaf: 1,
            postings_ptr: [NULL; MAX_KEYS],
            children: [NULL; MAX_KEYS + 1],
            cache: [[0; 4]; MAX_KEYS],
            _pad: 0,
        }
    }
}

impl BTreeNode {
    /// Is this node a leaf?
    pub fn is_leaf(&self) -> bool {
        self.leaf != 0
    }

    /// Is the node full (must split before inserting below it)?
    pub fn is_full(&self) -> bool {
        self.count as usize == MAX_KEYS
    }

    /// Serialize to the exact on-device byte layout.
    pub fn to_bytes(&self) -> [u8; NODE_BYTES] {
        let mut out = [0u8; NODE_BYTES];
        out[OFF_COUNT..OFF_COUNT + 4].copy_from_slice(&self.count.to_le_bytes());
        for (i, p) in self.term_ptr.iter().enumerate() {
            out[OFF_TERM_PTR + 4 * i..OFF_TERM_PTR + 4 * i + 4]
                .copy_from_slice(&p.to_le_bytes());
        }
        out[OFF_LEAF..OFF_LEAF + 4].copy_from_slice(&self.leaf.to_le_bytes());
        for (i, p) in self.postings_ptr.iter().enumerate() {
            out[OFF_POSTINGS + 4 * i..OFF_POSTINGS + 4 * i + 4]
                .copy_from_slice(&p.to_le_bytes());
        }
        for (i, p) in self.children.iter().enumerate() {
            out[OFF_CHILDREN + 4 * i..OFF_CHILDREN + 4 * i + 4]
                .copy_from_slice(&p.to_le_bytes());
        }
        for (i, c) in self.cache.iter().enumerate() {
            out[OFF_CACHE + 4 * i..OFF_CACHE + 4 * i + 4].copy_from_slice(c);
        }
        out
    }

    /// Deserialize from the on-device byte layout.
    pub fn from_bytes(b: &[u8; NODE_BYTES]) -> Self {
        let rd = |off: usize| u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]]);
        let mut n = BTreeNode {
            count: rd(OFF_COUNT),
            leaf: rd(OFF_LEAF),
            ..BTreeNode::default()
        };
        for i in 0..MAX_KEYS {
            n.term_ptr[i] = rd(OFF_TERM_PTR + 4 * i);
            n.postings_ptr[i] = rd(OFF_POSTINGS + 4 * i);
            n.cache[i].copy_from_slice(&b[OFF_CACHE + 4 * i..OFF_CACHE + 4 * i + 4]);
        }
        for i in 0..=MAX_KEYS {
            n.children[i] = rd(OFF_CHILDREN + 4 * i);
        }
        n
    }

    /// Build the 4-byte cache for a term: first four bytes, zero-padded.
    pub fn make_cache(term: &[u8]) -> [u8; 4] {
        let mut c = [0u8; 4];
        let n = term.len().min(4);
        c[..n].copy_from_slice(&term[..n]);
        c
    }
}

/// Table II as data, for the `table2_node` report binary and its test.
pub const TABLE_II: &[(&str, usize, usize)] = &[
    ("Valid term number", 1, 4),
    ("Pointer to term string", 31, 124),
    ("Leaf indicator", 1, 4),
    ("Pointer to postings lists", 31, 124),
    ("Pointer to children", 32, 128),
    ("4-Byte Cache for term string", 31, 124),
    ("Padding", 1, 4),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem::offset_of;

    #[test]
    fn node_is_exactly_512_bytes() {
        assert_eq!(std::mem::size_of::<BTreeNode>(), 512);
    }

    #[test]
    fn field_offsets_match_table_ii() {
        assert_eq!(offset_of!(BTreeNode, count), OFF_COUNT);
        assert_eq!(offset_of!(BTreeNode, term_ptr), OFF_TERM_PTR);
        assert_eq!(offset_of!(BTreeNode, leaf), OFF_LEAF);
        assert_eq!(offset_of!(BTreeNode, postings_ptr), OFF_POSTINGS);
        assert_eq!(offset_of!(BTreeNode, children), OFF_CHILDREN);
        assert_eq!(offset_of!(BTreeNode, cache), OFF_CACHE);
    }

    #[test]
    fn table_ii_rows_sum_to_512() {
        let total: usize = TABLE_II.iter().map(|(_, _, sz)| sz).sum();
        assert_eq!(total, 512);
    }

    #[test]
    fn byte_roundtrip() {
        let mut n = BTreeNode { count: 3, leaf: 0, ..BTreeNode::default() };
        n.term_ptr[0] = 42;
        n.postings_ptr[2] = 7;
        n.children[3] = 9;
        n.cache[1] = *b"lica";
        let b = n.to_bytes();
        let m = BTreeNode::from_bytes(&b);
        assert_eq!(m.count, 3);
        assert_eq!(m.leaf, 0);
        assert_eq!(m.term_ptr[0], 42);
        assert_eq!(m.term_ptr[1], NULL);
        assert_eq!(m.postings_ptr[2], 7);
        assert_eq!(m.children[3], 9);
        assert_eq!(m.cache[1], *b"lica");
    }

    #[test]
    fn make_cache_pads_with_zeros() {
        assert_eq!(BTreeNode::make_cache(b""), [0, 0, 0, 0]);
        assert_eq!(BTreeNode::make_cache(b"ab"), [b'a', b'b', 0, 0]);
        assert_eq!(BTreeNode::make_cache(b"lication"), *b"lica");
    }

    #[test]
    fn default_node_is_empty_leaf() {
        let n = BTreeNode::default();
        assert!(n.is_leaf());
        assert!(!n.is_full());
        assert_eq!(n.count, 0);
        assert!(n.term_ptr.iter().all(|&p| p == NULL));
    }
}
