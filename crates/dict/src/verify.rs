//! Structural verification of B-trees.
//!
//! The GPU indexer builds B-trees in device memory with warp-parallel
//! shifts and splits; after download they must be *structurally* valid,
//! not merely return correct lookups. This module checks every CLRS
//! B-tree invariant over the shared 512-byte node layout:
//!
//! 1. keys within each node are strictly increasing;
//! 2. every non-root node holds ≥ MIN_KEYS keys, every node ≤ MAX_KEYS;
//! 3. all leaves sit at the same depth;
//! 4. subtree key ranges respect separator keys;
//! 5. postings handles are unique across the tree;
//! 6. string-cache contents match the first bytes of the stored term.

use crate::btree::{BTree, BTreeStore};
use crate::node::{MAX_KEYS, MIN_KEYS, NULL};

/// A violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BTreeViolation {
    /// Node key count outside the allowed band.
    BadCount {
        /// Node index.
        node: u32,
        /// Observed key count.
        count: u32,
    },
    /// Keys not strictly increasing within a node or across a separator.
    OutOfOrder {
        /// Node index.
        node: u32,
        /// Slot where order breaks.
        slot: usize,
    },
    /// Leaves at differing depths.
    UnevenLeaves {
        /// Depth of the offending leaf.
        found: usize,
        /// Depth of the first leaf seen.
        expected: usize,
    },
    /// A postings handle appears twice.
    DuplicateHandle {
        /// The repeated handle.
        handle: u32,
    },
    /// A child pointer is NULL where one is required.
    MissingChild {
        /// Node index.
        node: u32,
        /// Child slot.
        slot: usize,
    },
}

/// Check every invariant of `tree`; returns all violations found.
pub fn verify_btree(store: &BTreeStore, tree: &BTree) -> Vec<BTreeViolation> {
    let mut violations = Vec::new();
    let mut leaf_depth: Option<usize> = None;
    let mut seen_handles = std::collections::HashSet::new();
    let mut last_key: Option<Vec<u8>> = None;
    walk(
        store,
        tree.root,
        true,
        1,
        &mut leaf_depth,
        &mut seen_handles,
        &mut last_key,
        &mut violations,
    );
    violations
}

#[allow(clippy::too_many_arguments)]
fn walk(
    store: &BTreeStore,
    node_idx: u32,
    is_root: bool,
    depth: usize,
    leaf_depth: &mut Option<usize>,
    seen: &mut std::collections::HashSet<u32>,
    last_key: &mut Option<Vec<u8>>,
    out: &mut Vec<BTreeViolation>,
) {
    let node = store.nodes.get(node_idx);
    let count = node.count as usize;
    let min = if is_root { 0 } else { MIN_KEYS };
    if count > MAX_KEYS || count < min {
        out.push(BTreeViolation::BadCount { node: node_idx, count: node.count });
    }
    if node.is_leaf() {
        match *leaf_depth {
            None => *leaf_depth = Some(depth),
            Some(expected) if expected != depth => {
                out.push(BTreeViolation::UnevenLeaves { found: depth, expected });
            }
            _ => {}
        }
    }
    for slot in 0..count {
        if !node.is_leaf() {
            let child = node.children[slot];
            if child == NULL {
                out.push(BTreeViolation::MissingChild { node: node_idx, slot });
            } else {
                walk(store, child, false, depth + 1, leaf_depth, seen, last_key, out);
            }
        }
        // In-order position: this key must be strictly greater than every
        // key seen so far (global order implies in-node + separator order).
        let key = store.full_term(node, slot);
        if let Some(prev) = last_key.as_ref() {
            if *prev >= key {
                out.push(BTreeViolation::OutOfOrder { node: node_idx, slot });
            }
        }
        *last_key = Some(key);
        let handle = node.postings_ptr[slot];
        if !seen.insert(handle) {
            out.push(BTreeViolation::DuplicateHandle { handle });
        }
    }
    if !node.is_leaf() && count > 0 {
        let child = node.children[count];
        if child == NULL {
            out.push(BTreeViolation::MissingChild { node: node_idx, slot: count });
        } else {
            walk(store, child, false, depth + 1, leaf_depth, seen, last_key, out);
        }
    }
}

/// A violated invariant of the combined [`GlobalDictionary`].
///
/// [`GlobalDictionary`]: crate::dictionary::GlobalDictionary
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalViolation {
    /// Entries not strictly sorted by `(trie_index, suffix)` — implies a
    /// duplicate or misordered term.
    EntriesOutOfOrder {
        /// Index of the offending entry (the later of the pair).
        index: usize,
    },
    /// The same `(indexer, postings)` handle is claimed by two terms.
    DuplicatePostings {
        /// Owning indexer.
        indexer: u32,
        /// The repeated postings handle.
        postings: u32,
    },
}

/// Verify the combined dictionary: entries strictly sorted and unique by
/// `(trie_index, suffix)`, and every `(indexer, postings)` handle claimed
/// by exactly one term. Returns all violations found.
pub fn verify_global(dict: &crate::dictionary::GlobalDictionary) -> Vec<GlobalViolation> {
    let mut out = Vec::new();
    let entries = dict.entries();
    for (i, w) in entries.windows(2).enumerate() {
        let a = (w[0].trie_index, w[0].suffix.as_slice());
        let b = (w[1].trie_index, w[1].suffix.as_slice());
        if a >= b {
            out.push(GlobalViolation::EntriesOutOfOrder { index: i + 1 });
        }
    }
    let mut seen = std::collections::HashSet::new();
    for e in entries {
        if !seen.insert((e.indexer, e.postings)) {
            out.push(GlobalViolation::DuplicatePostings {
                indexer: e.indexer,
                postings: e.postings,
            });
        }
    }
    out
}

/// Verify every tree of a dictionary shard; returns `(trie index,
/// violations)` for trees with problems.
pub fn verify_shard(dict: &crate::dictionary::PartialDictionary) -> Vec<(u32, Vec<BTreeViolation>)> {
    let mut out = Vec::new();
    for ti in dict.trie_indices() {
        let tree = dict.tree(ti).expect("listed tree");
        let v = verify_btree(&dict.store, &tree);
        if !v.is_empty() {
            out.push((ti, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn healthy_tree_verifies_clean() {
        let mut store = BTreeStore::new();
        let mut tree = store.new_tree();
        let mut keys: Vec<String> = (0..500).map(|i| format!("k{i:04}")).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(1));
        for k in &keys {
            store.insert(&mut tree, k.as_bytes());
        }
        assert_eq!(verify_btree(&store, &tree), vec![]);
    }

    #[test]
    fn empty_and_tiny_trees_verify() {
        let mut store = BTreeStore::new();
        let tree = store.new_tree();
        assert_eq!(verify_btree(&store, &tree), vec![]);
        let mut t2 = store.new_tree();
        store.insert(&mut t2, b"only");
        assert_eq!(verify_btree(&store, &t2), vec![]);
    }

    #[test]
    fn corruption_is_detected() {
        let mut store = BTreeStore::new();
        let mut tree = store.new_tree();
        for i in 0..100 {
            // Distinct 4-byte caches so a cache swap breaks key order.
            store.insert(&mut tree, format!("{i:04}").as_bytes());
        }
        // Swap two caches in the root to break ordering.
        let root = store.nodes.get_mut(tree.root);
        root.cache.swap(0, 1);
        let violations = verify_btree(&store, &tree);
        assert!(
            violations.iter().any(|v| matches!(v, BTreeViolation::OutOfOrder { .. })),
            "expected OutOfOrder, got {violations:?}"
        );
    }

    #[test]
    fn duplicate_handles_detected() {
        let mut store = BTreeStore::new();
        let mut tree = store.new_tree();
        store.insert(&mut tree, b"aa");
        store.insert(&mut tree, b"bb");
        let root = store.nodes.get_mut(tree.root);
        root.postings_ptr[1] = root.postings_ptr[0];
        let violations = verify_btree(&store, &tree);
        assert!(violations
            .iter()
            .any(|v| matches!(v, BTreeViolation::DuplicateHandle { .. })));
    }

    #[test]
    fn global_dictionary_verifies_and_detects_duplicates() {
        let mut a = crate::dictionary::PartialDictionary::new(0);
        for t in ["alpha", "beta", "gamma"] {
            crate::dictionary::insert_surface(&mut a, t);
        }
        let dict = crate::dictionary::GlobalDictionary::combine(&[a]);
        assert_eq!(verify_global(&dict), vec![]);
        // Two shards sharing indexer_id 0 collide on postings handles —
        // exactly the corruption verify_global must catch.
        let mut b = crate::dictionary::PartialDictionary::new(0);
        let mut c = crate::dictionary::PartialDictionary::new(0);
        crate::dictionary::insert_surface(&mut b, "delta");
        crate::dictionary::insert_surface(&mut c, "omega");
        let bad = crate::dictionary::GlobalDictionary::combine(&[b, c]);
        assert!(verify_global(&bad)
            .iter()
            .any(|v| matches!(v, GlobalViolation::DuplicatePostings { .. })));
    }

    #[test]
    fn undercount_detected() {
        let mut store = BTreeStore::new();
        let mut tree = store.new_tree();
        // Force a split so there are non-root nodes.
        for i in 0..64 {
            store.insert(&mut tree, format!("{i:04}").as_bytes());
        }
        // Truncate a child below MIN_KEYS.
        let child = store.nodes.get(tree.root).children[0];
        store.nodes.get_mut(child).count = 1;
        let violations = verify_btree(&store, &tree);
        assert!(violations.iter().any(|v| matches!(v, BTreeViolation::BadCount { .. })));
    }
}
