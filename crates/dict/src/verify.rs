//! Structural verification of B-trees.
//!
//! The GPU indexer builds B-trees in device memory with warp-parallel
//! shifts and splits, and the CPU hot path builds slotted-node trees with
//! branch-free head search; after either, the trees must be *structurally*
//! valid, not merely return correct lookups. This module checks every CLRS
//! B-tree invariant over both node layouts:
//!
//! 1. keys within each node are strictly increasing (slot order = key
//!    order);
//! 2. every non-root node holds ≥ MIN_KEYS keys, every node ≤ MAX_KEYS;
//! 3. all leaves sit at the same depth;
//! 4. subtree key ranges respect separator keys;
//! 5. postings handles are unique across the tree;
//! 6. string-cache / head contents match the first bytes of the stored
//!    term;
//! 7. (slotted only) slots at or above `count` hold the canonical empty
//!    form — [`HEAD_SENTINEL`] heads and `NULL` pointers — since the
//!    branch-free rank depends on the sentinel discipline.

use crate::btree::{BTree, BTreeStore};
use crate::node::{MAX_KEYS, MIN_KEYS, NULL};
use crate::slotted::{term_head, SlottedStore, HEAD_SENTINEL};

/// A violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BTreeViolation {
    /// Node key count outside the allowed band.
    BadCount {
        /// Node index.
        node: u32,
        /// Observed key count.
        count: u32,
    },
    /// Keys not strictly increasing within a node or across a separator.
    OutOfOrder {
        /// Node index.
        node: u32,
        /// Slot where order breaks.
        slot: usize,
    },
    /// Leaves at differing depths.
    UnevenLeaves {
        /// Depth of the offending leaf.
        found: usize,
        /// Depth of the first leaf seen.
        expected: usize,
    },
    /// A postings handle appears twice.
    DuplicateHandle {
        /// The repeated handle.
        handle: u32,
    },
    /// A child pointer is NULL where one is required.
    MissingChild {
        /// Node index.
        node: u32,
        /// Child slot.
        slot: usize,
    },
    /// A slot's 4-byte head does not encode the first bytes of its term.
    HeadMismatch {
        /// Node index.
        node: u32,
        /// Offending slot.
        slot: usize,
    },
    /// A slot at or above `count` is not in the canonical empty form
    /// (sentinel head, NULL pointers) — stale data that would corrupt the
    /// branch-free head rank.
    StaleSlot {
        /// Node index.
        node: u32,
        /// Offending slot.
        slot: usize,
    },
}

/// Check every invariant of a legacy-layout `tree`; returns all violations
/// found.
pub fn verify_btree(store: &BTreeStore, tree: &BTree) -> Vec<BTreeViolation> {
    let mut violations = Vec::new();
    let mut leaf_depth: Option<usize> = None;
    let mut seen_handles = std::collections::HashSet::new();
    let mut last_key: Option<Vec<u8>> = None;
    walk(
        store,
        tree.root,
        true,
        1,
        &mut leaf_depth,
        &mut seen_handles,
        &mut last_key,
        &mut violations,
    );
    violations
}

#[allow(clippy::too_many_arguments)]
fn walk(
    store: &BTreeStore,
    node_idx: u32,
    is_root: bool,
    depth: usize,
    leaf_depth: &mut Option<usize>,
    seen: &mut std::collections::HashSet<u32>,
    last_key: &mut Option<Vec<u8>>,
    out: &mut Vec<BTreeViolation>,
) {
    let node = store.nodes.get(node_idx);
    let count = node.count as usize;
    let min = if is_root { 0 } else { MIN_KEYS };
    if count > MAX_KEYS || count < min {
        out.push(BTreeViolation::BadCount { node: node_idx, count: node.count });
    }
    if node.is_leaf() {
        match *leaf_depth {
            None => *leaf_depth = Some(depth),
            Some(expected) if expected != depth => {
                out.push(BTreeViolation::UnevenLeaves { found: depth, expected });
            }
            _ => {}
        }
    }
    for slot in 0..count {
        if !node.is_leaf() {
            let child = node.children[slot];
            if child == NULL {
                out.push(BTreeViolation::MissingChild { node: node_idx, slot });
            } else {
                walk(store, child, false, depth + 1, leaf_depth, seen, last_key, out);
            }
        }
        // In-order position: this key must be strictly greater than every
        // key seen so far (global order implies in-node + separator order).
        let key = store.full_term(node, slot);
        if let Some(prev) = last_key.as_ref() {
            if *prev >= key {
                out.push(BTreeViolation::OutOfOrder { node: node_idx, slot });
            }
        }
        *last_key = Some(key);
        let handle = node.postings_ptr[slot];
        if !seen.insert(handle) {
            out.push(BTreeViolation::DuplicateHandle { handle });
        }
    }
    if !node.is_leaf() && count > 0 {
        let child = node.children[count];
        if child == NULL {
            out.push(BTreeViolation::MissingChild { node: node_idx, slot: count });
        } else {
            walk(store, child, false, depth + 1, leaf_depth, seen, last_key, out);
        }
    }
}

/// Check every invariant of a slotted-layout `tree`, including the two the
/// slotted hot path adds: head consistency (each slot's head encodes the
/// first bytes of its full term) and the sentinel discipline for slots at
/// or above `count`. Returns all violations found.
pub fn verify_slotted(store: &SlottedStore, tree: &BTree) -> Vec<BTreeViolation> {
    let mut violations = Vec::new();
    let mut leaf_depth: Option<usize> = None;
    let mut seen_handles = std::collections::HashSet::new();
    let mut last_key: Option<Vec<u8>> = None;
    walk_slotted(
        store,
        tree.root,
        true,
        1,
        &mut leaf_depth,
        &mut seen_handles,
        &mut last_key,
        &mut violations,
    );
    violations
}

#[allow(clippy::too_many_arguments)]
fn walk_slotted(
    store: &SlottedStore,
    node_idx: u32,
    is_root: bool,
    depth: usize,
    leaf_depth: &mut Option<usize>,
    seen: &mut std::collections::HashSet<u32>,
    last_key: &mut Option<Vec<u8>>,
    out: &mut Vec<BTreeViolation>,
) {
    let node = store.node(node_idx);
    let count = (node.count as usize).min(MAX_KEYS);
    let min = if is_root { 0 } else { MIN_KEYS };
    if node.count as usize > MAX_KEYS || (node.count as usize) < min {
        out.push(BTreeViolation::BadCount { node: node_idx, count: node.count });
    }
    if node.is_leaf() {
        match *leaf_depth {
            None => *leaf_depth = Some(depth),
            Some(expected) if expected != depth => {
                out.push(BTreeViolation::UnevenLeaves { found: depth, expected });
            }
            _ => {}
        }
    }
    for slot in 0..count {
        if !node.is_leaf() {
            let child = node.children[slot];
            if child == NULL {
                out.push(BTreeViolation::MissingChild { node: node_idx, slot });
            } else {
                walk_slotted(store, child, false, depth + 1, leaf_depth, seen, last_key, out);
            }
        }
        let key = store.full_term(node_idx, slot);
        if node.heads[slot] != term_head(&key) {
            out.push(BTreeViolation::HeadMismatch { node: node_idx, slot });
        }
        if let Some(prev) = last_key.as_ref() {
            if *prev >= key {
                out.push(BTreeViolation::OutOfOrder { node: node_idx, slot });
            }
        }
        *last_key = Some(key);
        let handle = node.postings_ptr[slot];
        if !seen.insert(handle) {
            out.push(BTreeViolation::DuplicateHandle { handle });
        }
    }
    // Sentinel discipline above `count`: a stale head below the sentinel
    // would inflate the branch-free rank past `count` and corrupt inserts.
    for slot in count..MAX_KEYS {
        if node.heads[slot] != HEAD_SENTINEL
            || node.term_ptr[slot] != NULL
            || node.postings_ptr[slot] != NULL
        {
            out.push(BTreeViolation::StaleSlot { node: node_idx, slot });
        }
    }
    if !node.is_leaf() && count > 0 {
        let child = node.children[count];
        if child == NULL {
            out.push(BTreeViolation::MissingChild { node: node_idx, slot: count });
        } else {
            walk_slotted(store, child, false, depth + 1, leaf_depth, seen, last_key, out);
        }
    }
}

/// A violated invariant of the combined [`GlobalDictionary`].
///
/// [`GlobalDictionary`]: crate::dictionary::GlobalDictionary
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalViolation {
    /// Entries not strictly sorted by `(trie_index, suffix)` — implies a
    /// duplicate or misordered term.
    EntriesOutOfOrder {
        /// Index of the offending entry (the later of the pair).
        index: usize,
    },
    /// The same `(indexer, postings)` handle is claimed by two terms.
    DuplicatePostings {
        /// Owning indexer.
        indexer: u32,
        /// The repeated postings handle.
        postings: u32,
    },
}

/// Verify the combined dictionary: entries strictly sorted and unique by
/// `(trie_index, suffix)`, and every `(indexer, postings)` handle claimed
/// by exactly one term. Returns all violations found.
pub fn verify_global(dict: &crate::dictionary::GlobalDictionary) -> Vec<GlobalViolation> {
    let mut out = Vec::new();
    let entries = dict.entries();
    for (i, w) in entries.windows(2).enumerate() {
        let a = (w[0].trie_index, w[0].suffix.as_slice());
        let b = (w[1].trie_index, w[1].suffix.as_slice());
        if a >= b {
            out.push(GlobalViolation::EntriesOutOfOrder { index: i + 1 });
        }
    }
    let mut seen = std::collections::HashSet::new();
    for e in entries {
        if !seen.insert((e.indexer, e.postings)) {
            out.push(GlobalViolation::DuplicatePostings {
                indexer: e.indexer,
                postings: e.postings,
            });
        }
    }
    out
}

/// Verify every tree of a dictionary shard (slotted layout, including head
/// consistency and fill bounds); returns `(trie index, violations)` for
/// trees with problems.
pub fn verify_shard(dict: &crate::dictionary::PartialDictionary) -> Vec<(u32, Vec<BTreeViolation>)> {
    let mut out = Vec::new();
    for ti in dict.trie_indices() {
        let tree = dict.tree(ti).expect("listed tree");
        let v = verify_slotted(&dict.store, &tree);
        if !v.is_empty() {
            out.push((ti, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn healthy_tree_verifies_clean() {
        let mut store = BTreeStore::new();
        let mut tree = store.new_tree();
        let mut keys: Vec<String> = (0..500).map(|i| format!("k{i:04}")).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(1));
        for k in &keys {
            store.insert(&mut tree, k.as_bytes());
        }
        assert_eq!(verify_btree(&store, &tree), vec![]);
    }

    #[test]
    fn healthy_slotted_tree_verifies_clean() {
        let mut store = SlottedStore::new();
        let mut tree = store.new_tree();
        let mut keys: Vec<String> = (0..500).map(|i| format!("k{i:04}")).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(1));
        for k in &keys {
            store.insert(&mut tree, k.as_bytes());
        }
        assert_eq!(verify_slotted(&store, &tree), vec![]);
    }

    #[test]
    fn empty_and_tiny_trees_verify() {
        let mut store = BTreeStore::new();
        let tree = store.new_tree();
        assert_eq!(verify_btree(&store, &tree), vec![]);
        let mut t2 = store.new_tree();
        store.insert(&mut t2, b"only");
        assert_eq!(verify_btree(&store, &t2), vec![]);
        let mut slotted = SlottedStore::new();
        let st = slotted.new_tree();
        assert_eq!(verify_slotted(&slotted, &st), vec![]);
        let mut st2 = slotted.new_tree();
        slotted.insert(&mut st2, b"only");
        assert_eq!(verify_slotted(&slotted, &st2), vec![]);
    }

    #[test]
    fn corruption_is_detected() {
        let mut store = BTreeStore::new();
        let mut tree = store.new_tree();
        for i in 0..100 {
            // Distinct 4-byte caches so a cache swap breaks key order.
            store.insert(&mut tree, format!("{i:04}").as_bytes());
        }
        // Swap two caches in the root to break ordering.
        let root = store.nodes.get_mut(tree.root);
        root.cache.swap(0, 1);
        let violations = verify_btree(&store, &tree);
        assert!(
            violations.iter().any(|v| matches!(v, BTreeViolation::OutOfOrder { .. })),
            "expected OutOfOrder, got {violations:?}"
        );
    }

    #[test]
    fn slotted_head_corruption_detected() {
        let mut store = SlottedStore::new();
        let mut tree = store.new_tree();
        for i in 0..100 {
            store.insert(&mut tree, format!("term{i:04}x").as_bytes());
        }
        // A zero-padded (short) head on a slot that still points at a
        // remainder is incoherent: the reconstructed term's first bytes no
        // longer match the stored head.
        let root = tree.root;
        store.node_mut(root).heads[0] = term_head(b"t");
        let violations = verify_slotted(&store, &tree);
        assert!(
            violations.iter().any(|v| matches!(v, BTreeViolation::HeadMismatch { .. })),
            "expected HeadMismatch, got {violations:?}"
        );
    }

    #[test]
    fn slotted_stale_slot_detected() {
        let mut store = SlottedStore::new();
        let mut tree = store.new_tree();
        store.insert(&mut tree, b"aa");
        store.insert(&mut tree, b"bb");
        // A head below the sentinel in an unused slot corrupts the rank.
        store.node_mut(tree.root).heads[5] = 0;
        let violations = verify_slotted(&store, &tree);
        assert!(
            violations.iter().any(|v| matches!(v, BTreeViolation::StaleSlot { slot: 5, .. })),
            "expected StaleSlot, got {violations:?}"
        );
    }

    #[test]
    fn duplicate_handles_detected() {
        let mut store = BTreeStore::new();
        let mut tree = store.new_tree();
        store.insert(&mut tree, b"aa");
        store.insert(&mut tree, b"bb");
        let root = store.nodes.get_mut(tree.root);
        root.postings_ptr[1] = root.postings_ptr[0];
        let violations = verify_btree(&store, &tree);
        assert!(violations
            .iter()
            .any(|v| matches!(v, BTreeViolation::DuplicateHandle { .. })));
    }

    #[test]
    fn slotted_duplicate_handles_detected() {
        let mut store = SlottedStore::new();
        let mut tree = store.new_tree();
        store.insert(&mut tree, b"aa");
        store.insert(&mut tree, b"bb");
        let root = store.node_mut(tree.root);
        root.postings_ptr[1] = root.postings_ptr[0];
        let violations = verify_slotted(&store, &tree);
        assert!(violations
            .iter()
            .any(|v| matches!(v, BTreeViolation::DuplicateHandle { .. })));
    }

    #[test]
    fn global_dictionary_verifies_and_detects_duplicates() {
        let mut a = crate::dictionary::PartialDictionary::new(0);
        for t in ["alpha", "beta", "gamma"] {
            crate::dictionary::insert_surface(&mut a, t);
        }
        let dict = crate::dictionary::GlobalDictionary::combine(&[a]);
        assert_eq!(verify_global(&dict), vec![]);
        // Two shards sharing indexer_id 0 collide on postings handles —
        // exactly the corruption verify_global must catch.
        let mut b = crate::dictionary::PartialDictionary::new(0);
        let mut c = crate::dictionary::PartialDictionary::new(0);
        crate::dictionary::insert_surface(&mut b, "delta");
        crate::dictionary::insert_surface(&mut c, "omega");
        let bad = crate::dictionary::GlobalDictionary::combine(&[b, c]);
        assert!(verify_global(&bad)
            .iter()
            .any(|v| matches!(v, GlobalViolation::DuplicatePostings { .. })));
    }

    #[test]
    fn undercount_detected() {
        let mut store = BTreeStore::new();
        let mut tree = store.new_tree();
        // Force a split so there are non-root nodes.
        for i in 0..64 {
            store.insert(&mut tree, format!("{i:04}").as_bytes());
        }
        // Truncate a child below MIN_KEYS.
        let child = store.nodes.get(tree.root).children[0];
        store.nodes.get_mut(child).count = 1;
        let violations = verify_btree(&store, &tree);
        assert!(violations.iter().any(|v| matches!(v, BTreeViolation::BadCount { .. })));
    }

    #[test]
    fn slotted_undercount_detected() {
        let mut store = SlottedStore::new();
        let mut tree = store.new_tree();
        for i in 0..64 {
            store.insert(&mut tree, format!("{i:04}").as_bytes());
        }
        let child = store.node(tree.root).children[0];
        store.node_mut(child).count = 1;
        let violations = verify_slotted(&store, &tree);
        assert!(violations.iter().any(|v| matches!(v, BTreeViolation::BadCount { .. })));
    }

    #[test]
    fn verify_shard_runs_slotted_checks() {
        let mut d = crate::dictionary::PartialDictionary::new(0);
        for t in ["alpha", "beta", "gamma", "delta"] {
            crate::dictionary::insert_surface(&mut d, t);
        }
        assert_eq!(verify_shard(&d), vec![]);
        // Corrupt one tree's root head: verify_shard must flag that trie.
        let ti = d.trie_indices().next().unwrap();
        let root = d.tree(ti).unwrap().root;
        d.store.node_mut(root).heads[0] ^= 0xFF;
        let bad = verify_shard(&d);
        assert!(bad.iter().any(|(t, vs)| {
            *t == ti && vs.iter().any(|v| matches!(v, BTreeViolation::HeadMismatch { .. }))
        }));
    }
}
