//! Frozen reference dictionary — the pre-slotted insert path, kept
//! byte-for-byte for differential testing and as the honest yardstick for
//! the `dict_hotpath` bench (the PR 4 `classify_reference` pattern, applied
//! to the whole shard).
//!
//! [`ReferenceDictionary`] is exactly what [`PartialDictionary`] was before
//! the slotted-node rewrite: a [`BTreeStore`] (binary search over `[u8; 4]`
//! caches, per-visit node clones, eager string fallback) plus a `HashMap`
//! from trie index to tree root. Do not optimize it — its value is that it
//! stays the old code. The differential suite in `tests/tests/dict_diff.rs`
//! drives arbitrary term streams through both paths and requires identical
//! outcomes, handles, and combined output.
//!
//! [`PartialDictionary`]: crate::dictionary::PartialDictionary

use crate::btree::{BTree, BTreeStore, InsertOutcome};
use crate::dictionary::{DictEntry, GlobalDictionary};
use std::collections::HashMap;

/// The pre-slotted dictionary shard, frozen as the differential reference.
#[derive(Clone, Debug, Default)]
pub struct ReferenceDictionary {
    /// Identifier of the owning indexer (used in postings locations).
    pub indexer_id: u32,
    /// Shared arenas for all this indexer's B-trees (legacy layout).
    pub store: BTreeStore,
    trees: HashMap<u32, BTree>,
}

impl ReferenceDictionary {
    /// Create an empty reference shard for `indexer_id`.
    pub fn new(indexer_id: u32) -> Self {
        ReferenceDictionary { indexer_id, ..Default::default() }
    }

    /// Insert a prefix-stripped term into the B-tree of `trie_idx`
    /// (created lazily) — the frozen legacy insert path.
    pub fn insert_reference(&mut self, trie_idx: u32, suffix: &[u8]) -> InsertOutcome {
        let store = &mut self.store;
        let tree = self.trees.entry(trie_idx).or_insert_with(|| store.new_tree());
        store.insert(tree, suffix)
    }

    /// Look up a prefix-stripped term — the frozen legacy lookup path.
    pub fn lookup_reference(&mut self, trie_idx: u32, suffix: &[u8]) -> Option<u32> {
        let tree = *self.trees.get(&trie_idx)?;
        self.store.get(&tree, suffix)
    }

    /// The B-tree handle for a trie collection, if any terms were inserted.
    pub fn tree(&self, trie_idx: u32) -> Option<BTree> {
        self.trees.get(&trie_idx).copied()
    }

    /// Trie collections present in this shard.
    pub fn trie_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.trees.keys().copied()
    }

    /// Number of distinct terms in the shard.
    pub fn term_count(&self) -> u32 {
        self.store.term_count()
    }
}

/// Combine reference shards into a [`GlobalDictionary`] — the frozen
/// legacy combine (gather tree by tree, then global sort).
pub fn combine_reference(parts: &[ReferenceDictionary]) -> GlobalDictionary {
    let mut entries = Vec::new();
    for p in parts {
        let mut idxs: Vec<u32> = p.trie_indices().collect();
        idxs.sort_unstable();
        for ti in idxs {
            let tree = p.tree(ti).expect("listed index has a tree");
            for (suffix, postings) in p.store.iter_terms(&tree) {
                entries.push(DictEntry {
                    trie_index: ti,
                    suffix,
                    indexer: p.indexer_id,
                    postings,
                });
            }
        }
    }
    entries.sort_by(|a, b| {
        (a.trie_index, a.suffix.as_slice()).cmp(&(b.trie_index, b.suffix.as_slice()))
    });
    GlobalDictionary::from_entries(entries)
}

/// Insert a *surface* term (classified internally) into a reference shard.
pub fn insert_surface_reference(
    dict: &mut ReferenceDictionary,
    term: &str,
) -> InsertOutcome {
    let (idx, suffix) = crate::trie::classify(term);
    dict.insert_reference(idx.0, suffix.as_bytes())
}

/// Look up a surface term in a reference shard.
pub fn lookup_surface_reference(dict: &mut ReferenceDictionary, term: &str) -> Option<u32> {
    let idx = crate::trie::trie_index(term);
    let suffix = &term[idx.prefix_len()..];
    dict.lookup_reference(idx.0, suffix.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_insert_and_lookup() {
        let mut d = ReferenceDictionary::new(0);
        let a = insert_surface_reference(&mut d, "application");
        assert!(a.is_new);
        let b = insert_surface_reference(&mut d, "application");
        assert!(!b.is_new);
        assert_eq!(b.postings, a.postings);
        assert_eq!(lookup_surface_reference(&mut d, "application"), Some(a.postings));
        assert_eq!(lookup_surface_reference(&mut d, "apple"), None);
        assert_eq!(d.term_count(), 1);
    }

    #[test]
    fn combine_reference_matches_new_path() {
        use crate::dictionary::{insert_surface, PartialDictionary};
        let terms =
            ["apple", "applesauce", "zebra", "zeal", "954", "-80", "a", "apple", "zebra"];
        let mut rd = ReferenceDictionary::new(3);
        let mut nd = PartialDictionary::new(3);
        for t in terms {
            let a = insert_surface_reference(&mut rd, t);
            let b = insert_surface(&mut nd, t);
            assert_eq!(a, b, "outcome diverged on {t}");
        }
        let g_ref = combine_reference(&[rd]);
        let g_new = GlobalDictionary::combine(&[nd]);
        assert_eq!(g_ref, g_new);
        let mut a = Vec::new();
        let mut b = Vec::new();
        g_ref.write_to(&mut a).unwrap();
        g_new.write_to(&mut b).unwrap();
        assert_eq!(a, b, "serialized dictionaries must be byte-identical");
    }
}
