//! Deterministic pipeline simulation (paper Fig 9 dataflow).
//!
//! Because parsers take files in static round-robin order, the disk is a
//! FIFO resource, buffers are bounded, and the indexing stage consumes
//! batches in strict global file order, the whole pipeline reduces to a
//! per-file recurrence over completion times — a discrete-event simulation
//! without an event queue:
//!
//! ```text
//! read_start[f]  = max(parser_free[p], disk_free, slot_free)
//! batch_ready[f] = read_end[f] + t_decompress + t_parse
//! index_start[f] = max(index_free, batch_ready[f])
//! index_free     = index_start[f] + t_index[f]
//! ```
//!
//! where `slot_free` is the back-pressure from the parser's bounded output
//! buffer (its k-th batch needs batch k - depth to have entered indexing).

use crate::model::{CollectionModel, PlatformModel, Scenario};

/// Per-parser buffer capacity (batches), as in the functional pipeline.
pub const BUFFER_DEPTH: usize = 2;

/// Outcome of a pipeline simulation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// End-to-end seconds (last batch fully indexed; parser-only scenarios
    /// end at the last batch parsed).
    pub total_seconds: f64,
    /// Completion time of the parsing stage (last batch ready).
    pub parser_stage_seconds: f64,
    /// Busy seconds of the indexing stage (sum of service times).
    pub indexing_busy_seconds: f64,
    /// Seconds the indexing stage waited on parsers.
    pub indexer_wait_seconds: f64,
    /// Pre-processing (GPU transfer) seconds, serialized per batch.
    pub pre_processing_seconds: f64,
    /// Post-processing (flush/compress/write) seconds, serialized.
    pub post_processing_seconds: f64,
    /// Per-file indexing throughput, MB/s (Fig 11 series).
    pub per_file_throughput: Vec<f64>,
    /// Overall throughput (uncompressed MB / total seconds).
    pub throughput_mb_s: f64,
}

/// Service time of the indexing stage for one batch of `mb` uncompressed
/// megabytes under `scenario`, ignoring the per-file multiplier.
fn index_service_base(p: &PlatformModel, s: &Scenario, c: &CollectionModel, mb: f64) -> f64 {
    let mb = mb * c.density_factor();
    match (s.cpu_indexers, s.gpu_indexers) {
        (0, 0) => 0.0,
        (n, 0) => mb / p.cpu_aggregate(n, p.cpu_index_all_mb_s),
        (0, g) => mb / (p.gpu_index_all_mb_s * g as f64),
        (n, g) => {
            let cpu_mb = mb * c.popular_token_share;
            let gpu_mb = mb - cpu_mb;
            let t_cpu = cpu_mb / p.cpu_aggregate(n, p.cpu_index_popular_mb_s);
            let t_gpu = gpu_mb / (p.gpu_index_unpopular_mb_s * g as f64)
                * (1.0 + p.gpu_transfer_overhead);
            t_cpu.max(t_gpu)
        }
    }
}

/// Simulate the pipeline for one scenario over one collection.
pub fn simulate(p: &PlatformModel, c: &CollectionModel, s: &Scenario) -> SimReport {
    assert!(s.parsers >= 1, "need at least one parser");
    assert!(
        s.parsers + s.cpu_indexers <= p.cores,
        "parsers + CPU indexers exceed the {} cores",
        p.cores
    );
    let n = c.num_files;
    let t_read = c.compressed_mb_per_file / p.disk_mb_s;
    let t_dec = c.compressed_mb_per_file / p.decompress_mb_s;
    let t_parse = c.uncompressed_mb_per_file * c.density_factor() / p.parse_mb_s;
    let has_indexers = s.cpu_indexers + s.gpu_indexers > 0;

    let mut parser_free = vec![0.0f64; s.parsers];
    let mut disk_free = 0.0f64;
    let mut index_free = 0.0f64;
    let mut batch_ready = vec![0.0f64; n];
    let mut index_start = vec![0.0f64; n];
    let mut indexing_busy = 0.0;
    let mut indexer_wait = 0.0;
    let mut per_file_throughput = Vec::with_capacity(n);

    // The platform's per-indexer rates are calibrated from the paper's
    // whole-collection timings, i.e. they already average over B-tree
    // depth growth. The per-file multiplier therefore only shapes the
    // Fig 11 series and must be mean-normalized to keep totals calibrated.
    let mixed = s.cpu_indexers > 0 && s.gpu_indexers > 0;
    let raw_mult: Vec<f64> =
        (0..n).map(|f| c.service_multiplier_for(p, f, mixed)).collect();
    let mean_mult = raw_mult.iter().sum::<f64>() / n.max(1) as f64;

    for f in 0..n {
        let parser = f % s.parsers;
        // Back-pressure: this parser's batch f needs batch f - M*depth to
        // have entered the indexing stage so a buffer slot is free.
        let slot_free = if has_indexers {
            let dep = f.checked_sub(s.parsers * BUFFER_DEPTH);
            dep.map_or(0.0, |d| index_start[d])
        } else {
            0.0
        };
        let read_start = parser_free[parser].max(disk_free).max(slot_free);
        let read_end = read_start + t_read;
        disk_free = read_end;
        let ready = read_end + t_dec + t_parse;
        batch_ready[f] = ready;
        parser_free[parser] = ready;

        if has_indexers {
            let mult = raw_mult[f] / mean_mult;
            let service =
                index_service_base(p, s, c, c.uncompressed_mb_per_file) * mult;
            let start = index_free.max(ready);
            indexer_wait += (ready - index_free).max(0.0);
            index_start[f] = start;
            index_free = start + service;
            indexing_busy += service;
            per_file_throughput.push(c.uncompressed_mb_per_file / service);
        } else {
            index_start[f] = ready;
        }
    }

    let parser_stage_seconds = batch_ready.iter().copied().fold(0.0, f64::max);
    // Pre/post-processing are serialized around indexing (paper Fig 8):
    // model them as fixed fractions of the moved data.
    let total_unc = c.total_uncompressed_mb();
    let pre = if s.gpu_indexers > 0 {
        // Parsed stream ≈ 35% of the uncompressed bytes crosses PCIe at
        // 5 GB/s, serialized once per run.
        total_unc * 0.35 * (1.0 - c.popular_token_share) / 5000.0
    } else {
        0.0
    };
    // Postings flush + varbyte encode + write: proportional to output size
    // (~8% of uncompressed at ~300 MB/s effective).
    let post = total_unc * 0.08 / 300.0;
    let total_seconds = if has_indexers {
        index_free + pre + post
    } else {
        parser_stage_seconds
    };
    SimReport {
        total_seconds,
        parser_stage_seconds,
        indexing_busy_seconds: indexing_busy,
        indexer_wait_seconds: indexer_wait,
        pre_processing_seconds: pre,
        post_processing_seconds: post,
        per_file_throughput,
        throughput_mb_s: total_unc / total_seconds,
    }
}

/// §IV.A intake-bandwidth model: reading + decompressing compressed files.
///
/// *Folded* decompression starts while data streams in, hiding part of the
/// decompression behind the read but holding the disk for the whole
/// (read ∥ decompress) span. *Separate* decompression releases the disk
/// after the raw read; with `p` parsers the decompression overlaps other
/// parsers' reads. Returns (folded MB/s, separate MB/s) of *uncompressed*
/// intake at `parsers` parallel parsers.
pub fn intake_bandwidth(
    p: &PlatformModel,
    c: &CollectionModel,
    parsers: usize,
) -> (f64, f64) {
    let t_read = c.compressed_mb_per_file / p.disk_mb_s;
    let t_dec = c.compressed_mb_per_file / p.decompress_mb_s;
    // Folded: decompression starts as data arrives but the file-access
    // right is held until both complete; the paper measures 3.8 s for a
    // 1.6 s read + 3.2 s decompress, i.e. ~69% of the decompression is
    // exposed behind the read.
    let folded = c.uncompressed_mb_per_file / (t_read + 0.69 * t_dec);
    // Separate: the paper's own formula — "the average time to read a
    // compressed file is (1.6 + 3.2/p) seconds where p is the number of
    // parallel parsers" (§IV.A), giving 469 MB/s at p = 6.
    let separate =
        c.uncompressed_mb_per_file / (t_read + t_dec / parsers as f64);
    (folded, separate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> (PlatformModel, CollectionModel) {
        (PlatformModel::c1060_xeon(), CollectionModel::clueweb09())
    }

    #[test]
    fn parser_only_scales_nearly_linearly_until_disk() {
        let (p, c) = paper();
        let mut prev = 0.0;
        for m in 1..=5 {
            let r = simulate(&p, &c, &Scenario::new(m, 0, 0));
            assert!(r.throughput_mb_s > prev, "parsers={m}");
            prev = r.throughput_mb_s;
        }
        // Near-linear: 4 parsers at least 3x of 1 parser.
        let t1 = simulate(&p, &c, &Scenario::new(1, 0, 0)).throughput_mb_s;
        let t4 = simulate(&p, &c, &Scenario::new(4, 0, 0)).throughput_mb_s;
        assert!(t4 > 3.0 * t1, "t1={t1} t4={t4}");
    }

    #[test]
    fn full_config_hits_paper_ballpark() {
        // 6 parsers + 2 CPU + 2 GPU gave the paper 262.76 MB/s overall;
        // the model must land in that neighbourhood.
        let (p, c) = paper();
        let r = simulate(&p, &c, &Scenario::new(6, 2, 2));
        assert!(
            (230.0..300.0).contains(&r.throughput_mb_s),
            "throughput {}",
            r.throughput_mb_s
        );
    }

    #[test]
    fn without_gpu_is_slower_but_close_to_paper() {
        // Paper: 204.32 MB/s without GPUs (6 parsers, 2 CPU indexers).
        let (p, c) = paper();
        let r = simulate(&p, &c, &Scenario::new(6, 2, 0));
        assert!(
            (175.0..235.0).contains(&r.throughput_mb_s),
            "throughput {}",
            r.throughput_mb_s
        );
        let with = simulate(&p, &c, &Scenario::new(6, 2, 2));
        assert!(with.throughput_mb_s > r.throughput_mb_s);
    }

    #[test]
    fn gpu_only_is_the_slowest_indexing_config() {
        let (p, c) = paper();
        let gpu_only = simulate(&p, &c, &Scenario::new(6, 0, 2));
        let one_cpu = simulate(&p, &c, &Scenario::new(6, 1, 0));
        let two_cpu = simulate(&p, &c, &Scenario::new(6, 2, 0));
        assert!(gpu_only.throughput_mb_s < one_cpu.throughput_mb_s);
        assert!(one_cpu.throughput_mb_s < two_cpu.throughput_mb_s);
    }

    #[test]
    fn superlinear_combination() {
        // Table IV: CPU+GPU indexing throughput exceeds the sum of parts.
        // Compare pure indexing rates (busy time basis).
        let (p, c) = paper();
        let mb = c.total_uncompressed_mb();
        let rate = |s: Scenario| {
            let r = simulate(&p, &c, &s);
            mb / r.indexing_busy_seconds
        };
        let cpu2 = rate(Scenario::new(6, 2, 0));
        let gpu2 = rate(Scenario::new(6, 0, 2));
        let both = rate(Scenario::new(6, 2, 2));
        assert!(
            both > (cpu2 + gpu2) * 0.98,
            "expected ~superlinear: {both} vs {cpu2} + {gpu2}"
        );
    }

    #[test]
    fn per_file_throughput_declines_with_depth_and_shift() {
        let (p, c) = paper();
        let r = simulate(&p, &c, &Scenario::new(6, 2, 2));
        let tp = &r.per_file_throughput;
        assert!(tp[5] > tp[600], "early files faster");
        // Decline flattens.
        let d_early = tp[5] - tp[300];
        let d_late = tp[700] - tp[1100];
        assert!(d_early > d_late);
        // Sharp drop at the shift point (~file 1194).
        assert!(tp[1150] > tp[1250] * 1.3, "{} vs {}", tp[1150], tp[1250]);
    }

    #[test]
    fn intake_separate_beats_folded_at_6_parsers() {
        // §IV.A: folded ≈ 263 MB/s, separate at p=6 ≈ 469 MB/s.
        let (p, c) = paper();
        let (folded, separate) = intake_bandwidth(&p, &c, 6);
        assert!((folded - 263.0).abs() < 45.0, "folded {folded}");
        assert!((separate - 469.0).abs() < 140.0, "separate {separate}");
        assert!(separate > folded * 1.5);
        // With one parser, separate loses its advantage.
        let (_, sep1) = intake_bandwidth(&p, &c, 1);
        assert!(sep1 < folded);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn core_budget_enforced() {
        let (p, c) = paper();
        simulate(&p, &c, &Scenario::new(7, 2, 0));
    }

    #[test]
    fn indexer_wait_shrinks_with_more_parsers() {
        let (p, c) = paper();
        let w2 = simulate(&p, &c, &Scenario::new(2, 2, 2)).indexer_wait_seconds;
        let w6 = simulate(&p, &c, &Scenario::new(6, 2, 2)).indexer_wait_seconds;
        assert!(w6 < w2, "more parsers feed indexers better: {w6} vs {w2}");
    }
}
