//! Platform and workload models (calibration constants).
//!
//! The paper's own sub-measurements (§IV.A, Table IV-VI) pin down the
//! per-stage costs of their platform: reading a ~160 MB compressed
//! ClueWeb09 file takes 1.6 s over 1 Gb/s, decompressing it ~3.2 s on one
//! core, six parsers sustain the pipeline, one CPU indexer consumes
//! ~126 MB/s of uncompressed input, two GPUs alone ~75 MB/s, and the
//! popular/unpopular split gives the CPU ~44% of the tokens (Table V).
//! `PlatformModel::c1060_xeon()` encodes exactly these constants; the
//! simulator then *derives* the Fig 10 curves, Table IV timings and the
//! scenario crossovers from them.

/// Per-stage rates of the modeled platform. All rates are in MB/s of
/// *uncompressed* collection data unless noted.
#[derive(Clone, Copy, Debug)]
pub struct PlatformModel {
    /// Physical CPU cores (parsers + CPU indexers must fit).
    pub cores: usize,
    /// Serialized compressed-read bandwidth (MB/s of *compressed* data).
    pub disk_mb_s: f64,
    /// Decompression rate per core (MB/s of compressed data).
    pub decompress_mb_s: f64,
    /// Parse rate per parser core (tokenize+stem+stop+regroup).
    pub parse_mb_s: f64,
    /// One CPU indexer consuming the full collection (no split).
    pub cpu_index_all_mb_s: f64,
    /// One CPU indexer on popular-only collections (cache-friendly).
    pub cpu_index_popular_mb_s: f64,
    /// One GPU consuming the full collection (including cache-friendly
    /// popular collections it is bad at).
    pub gpu_index_all_mb_s: f64,
    /// One GPU on unpopular-only collections (its strength).
    pub gpu_index_unpopular_mb_s: f64,
    /// Efficiency loss per additional CPU indexer (load imbalance between
    /// popular sets; paper: 2 indexers → 1.77x, i.e. ~11.5% loss).
    pub cpu_imbalance_per_extra: f64,
    /// Host→device + device→host per-batch overhead as a fraction of GPU
    /// indexing time (pre/post-processing serialization).
    pub gpu_transfer_overhead: f64,
    /// Per-file indexing slowdown parameters: service multiplier is
    /// `1 + depth_slowdown * (btree_depth(file) - 1)` (Fig 11's decline).
    pub depth_slowdown: f64,
}

impl PlatformModel {
    /// The paper's platform: two Xeon X5560 quad-cores + two Tesla C1060.
    pub fn c1060_xeon() -> Self {
        PlatformModel {
            cores: 8,
            disk_mb_s: 100.0,            // 160 MB in 1.6 s over 1 Gb/s
            decompress_mb_s: 50.0,       // 160 MB in 3.2 s
            parse_mb_s: 59.0,            // derived from 6-parser stage time
            cpu_index_all_mb_s: 126.5,   // Table IV: 1422 GB / 11243 s
            cpu_index_popular_mb_s: 149.0,
            gpu_index_all_mb_s: 36.8,    // Table IV: (1422 GB / 19313 s)/2
            gpu_index_unpopular_mb_s: 86.0, // Table IV config (iv) GPU share
            cpu_imbalance_per_extra: 0.115, // 1.77x at 2 indexers
            gpu_transfer_overhead: 0.03,
            depth_slowdown: 0.18,
        }
    }

    /// Effective aggregate rate of `n` CPU indexers at per-indexer `rate`.
    pub fn cpu_aggregate(&self, n: usize, rate: f64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let eff = (1.0 - self.cpu_imbalance_per_extra * (n as f64 - 1.0)).max(0.3);
        rate * n as f64 * eff
    }
}

/// The modeled collection (paper Table III shapes).
#[derive(Clone, Copy, Debug)]
pub struct CollectionModel {
    /// Number of ~equal container files.
    pub num_files: usize,
    /// Compressed MB per file.
    pub compressed_mb_per_file: f64,
    /// Uncompressed MB per file.
    pub uncompressed_mb_per_file: f64,
    /// Fraction of tokens living in popular trie collections (Table V:
    /// 14.46G / 32.64G ≈ 0.443 on ClueWeb09).
    pub popular_token_share: f64,
    /// Fraction of the file sequence after which the content distribution
    /// shifts (ClueWeb09's Wikipedia tail at ~file 1200/1492).
    pub shift_at: Option<f64>,
    /// Service-time multiplier applied in the shifted region (new-term
    /// burst: deeper inserts, mistuned sampling parameters).
    pub shift_penalty: f64,
    /// Extra multiplier in the shifted region when BOTH device classes are
    /// active: the popular/unpopular split was tuned on a whole-collection
    /// sample, so a distribution shift mistunes it and "the combined CPU
    /// and GPU solution is especially affected" (paper §IV.B).
    pub shift_mixed_penalty: f64,
    /// Heaps-law exponent controlling vocabulary (and thus B-tree depth)
    /// growth over the file sequence.
    pub heaps_beta: f64,
    /// Distinct terms (millions) at end of collection, for depth modeling.
    pub total_terms_m: f64,
    /// Token density (tokens per uncompressed MB). Parsing and indexing
    /// are largely token-bound, so per-MB stage costs scale with density
    /// relative to the ClueWeb09 calibration basis (Table III: pure-text
    /// Wikipedia carries ~5x the tokens per byte of HTML crawls, which is
    /// why its MB/s throughput is far lower at similar token speed).
    pub tokens_per_mb: f64,
}

/// Token density of the ClueWeb09 calibration basis (32.64e9 tokens /
/// 1.422e6 MB).
pub const REF_TOKENS_PER_MB: f64 = 32_644_508_255.0 / 1_422_000.0;

/// Fraction of parse/index cost that is per-token (the rest is per-byte
/// scanning and I/O-adjacent work).
pub const TOKEN_COST_BLEND: f64 = 0.7;

impl CollectionModel {
    /// Multiplier on per-MB parse/index costs from token density.
    pub fn density_factor(&self) -> f64 {
        (1.0 - TOKEN_COST_BLEND) + TOKEN_COST_BLEND * self.tokens_per_mb / REF_TOKENS_PER_MB
    }
}

impl CollectionModel {
    /// ClueWeb09 first English segment (230 GB compressed / 1422 GB
    /// uncompressed in 1492 files).
    pub fn clueweb09() -> Self {
        CollectionModel {
            num_files: 1492,
            compressed_mb_per_file: 230_000.0 / 1492.0,
            uncompressed_mb_per_file: 1_422_000.0 / 1492.0,
            popular_token_share: 0.443,
            shift_at: Some(1200.0 / 1492.0),
            shift_penalty: 1.55,
            shift_mixed_penalty: 1.25,
            heaps_beta: 0.55,
            total_terms_m: 84.8,
            tokens_per_mb: REF_TOKENS_PER_MB,
        }
    }

    /// Wikipedia 01-07 (29 GB / 79 GB, pure text).
    pub fn wikipedia() -> Self {
        CollectionModel {
            num_files: 79,
            compressed_mb_per_file: 29_000.0 / 79.0,
            uncompressed_mb_per_file: 1000.0,
            popular_token_share: 0.50,
            shift_at: None,
            shift_penalty: 1.0,
            shift_mixed_penalty: 1.0,
            heaps_beta: 0.5,
            total_terms_m: 9.4,
            tokens_per_mb: 9_375_229_726.0 / 79_000.0,
        }
    }

    /// Library of Congress (96 GB / 507 GB).
    pub fn congress() -> Self {
        CollectionModel {
            num_files: 507,
            compressed_mb_per_file: 96_000.0 / 507.0,
            uncompressed_mb_per_file: 1000.0,
            popular_token_share: 0.47,
            shift_at: None,
            shift_penalty: 1.0,
            shift_mixed_penalty: 1.0,
            heaps_beta: 0.45,
            total_terms_m: 7.5,
            tokens_per_mb: 16_865_180_093.0 / 507_000.0,
        }
    }

    /// Total uncompressed MB.
    pub fn total_uncompressed_mb(&self) -> f64 {
        self.num_files as f64 * self.uncompressed_mb_per_file
    }

    /// Modeled B-tree depth after `file_idx` files: vocabulary follows
    /// Heaps' law, a degree-16 B-tree holding V terms across ~17k trie
    /// collections has depth ~ log_16(V / 17_613 / 2) clamped to >= 1.
    pub fn btree_depth(&self, file_idx: usize) -> f64 {
        let frac = (file_idx as f64 + 1.0) / self.num_files as f64;
        let vocab = self.total_terms_m * 1e6 * frac.powf(self.heaps_beta);
        let per_collection = (vocab / 17_613.0).max(1.0);
        (per_collection / 2.0).max(1.0).log(16.0).max(0.0) + 1.0
    }

    /// Is `file_idx` past the distribution shift?
    pub fn is_shifted(&self, file_idx: usize) -> bool {
        self.shift_at
            .is_some_and(|at| (file_idx as f64) >= at * self.num_files as f64)
    }

    /// Per-file service multiplier combining depth growth and the
    /// distribution shift. `mixed` marks configurations running both CPU
    /// and GPU indexers, whose sampled split the shift mistunes.
    pub fn service_multiplier_for(
        &self,
        platform: &PlatformModel,
        file_idx: usize,
        mixed: bool,
    ) -> f64 {
        let depth = self.btree_depth(file_idx);
        let mut m = 1.0 + platform.depth_slowdown * (depth - 1.0);
        if self.is_shifted(file_idx) {
            m *= self.shift_penalty;
            if mixed {
                m *= self.shift_mixed_penalty;
            }
        }
        m
    }

    /// Per-file service multiplier for a CPU-or-GPU-only configuration.
    pub fn service_multiplier(&self, platform: &PlatformModel, file_idx: usize) -> f64 {
        self.service_multiplier_for(platform, file_idx, false)
    }
}

/// An execution scenario: how many of each worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Parallel parser threads.
    pub parsers: usize,
    /// CPU indexer threads.
    pub cpu_indexers: usize,
    /// GPU indexers.
    pub gpu_indexers: usize,
}

impl Scenario {
    /// Convenience constructor.
    pub fn new(parsers: usize, cpu_indexers: usize, gpu_indexers: usize) -> Self {
        Scenario { parsers, cpu_indexers, gpu_indexers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_reproduce_sub_measurements() {
        let m = PlatformModel::c1060_xeon();
        let c = CollectionModel::clueweb09();
        // 1.6 s to read a compressed file.
        let t_read = c.compressed_mb_per_file / m.disk_mb_s;
        assert!((t_read - 1.54).abs() < 0.15, "read {t_read}");
        // 3.2 s to decompress.
        let t_dec = c.compressed_mb_per_file / m.decompress_mb_s;
        assert!((t_dec - 3.08).abs() < 0.3, "dec {t_dec}");
    }

    #[test]
    fn cpu_aggregate_matches_177x() {
        let m = PlatformModel::c1060_xeon();
        let one = m.cpu_aggregate(1, m.cpu_index_all_mb_s);
        let two = m.cpu_aggregate(2, m.cpu_index_all_mb_s);
        let speedup = two / one;
        assert!((speedup - 1.77).abs() < 0.01, "2-indexer speedup {speedup}");
        assert_eq!(m.cpu_aggregate(0, 100.0), 0.0);
    }

    #[test]
    fn depth_grows_then_flattens() {
        let c = CollectionModel::clueweb09();
        let early = c.btree_depth(10);
        let mid = c.btree_depth(700);
        let late = c.btree_depth(1400);
        assert!(early < mid && mid < late);
        // Late growth is much slower than early growth.
        assert!((late - mid) < (mid - early));
    }

    #[test]
    fn shift_multiplier_applies_only_after_cut() {
        let p = PlatformModel::c1060_xeon();
        let c = CollectionModel::clueweb09();
        let before = c.service_multiplier(&p, 1100);
        let after = c.service_multiplier(&p, 1250);
        assert!(after > before * 1.3, "{before} -> {after}");
        let w = CollectionModel::wikipedia();
        assert!(w.service_multiplier(&p, 70) < 2.0);
    }
}
