//! Scenario sweeps and configuration search over the platform model.
//!
//! The paper's §IV.A/§IV.B methodology is a parameter search: sweep the
//! parser count under different indexer mixes, find where the parsing and
//! indexing stages balance, and pick the best split of the 8 cores. This
//! module packages that methodology so harnesses (and users porting the
//! system to a different platform model) can run the same search
//! programmatically.

use crate::model::{CollectionModel, PlatformModel, Scenario};
use crate::sim::{simulate, SimReport};

/// One sweep row: a scenario and its simulated outcome.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The configuration simulated.
    pub scenario: Scenario,
    /// Its simulated outcome.
    pub report: SimReport,
}

/// Fig 10's family of curves: for each parser count `1..=max_parsers`
/// (bounded by the core budget), simulate `cpu_of(m)` CPU indexers and
/// `gpus` GPU indexers.
pub fn sweep_parsers(
    p: &PlatformModel,
    c: &CollectionModel,
    gpus: usize,
    cpu_of: impl Fn(usize) -> usize,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for m in 1..p.cores {
        let cpus = cpu_of(m);
        if m + cpus > p.cores {
            continue;
        }
        let scenario = Scenario::new(m, cpus, gpus);
        out.push(SweepPoint { report: simulate(p, c, &scenario), scenario });
    }
    out
}

/// Exhaustive search over all (parsers, cpu indexers) splits of the core
/// budget with a fixed GPU count; returns the throughput-optimal scenario.
pub fn best_configuration(
    p: &PlatformModel,
    c: &CollectionModel,
    gpus: usize,
) -> SweepPoint {
    let mut best: Option<SweepPoint> = None;
    for parsers in 1..p.cores {
        for cpus in 0..=(p.cores - parsers) {
            if cpus == 0 && gpus == 0 {
                continue; // no indexers at all
            }
            let scenario = Scenario::new(parsers, cpus, gpus);
            let report = simulate(p, c, &scenario);
            if best
                .as_ref()
                .is_none_or(|b| report.throughput_mb_s > b.report.throughput_mb_s)
            {
                best = Some(SweepPoint { scenario, report });
            }
        }
    }
    best.expect("non-empty search space")
}

/// The parser count at which the indexing stage stops keeping up with the
/// parsing stage (indexer wait ≈ 0 switches to parser-bound ≈ 0): the
/// pipeline's balance point, the quantity §IV.A tunes for. Returns the
/// largest parser count whose indexing stage still waits on parsers.
pub fn balance_point(
    p: &PlatformModel,
    c: &CollectionModel,
    gpus: usize,
    cpu_of: impl Fn(usize) -> usize,
) -> usize {
    let sweep = sweep_parsers(p, c, gpus, cpu_of);
    sweep
        .iter()
        .filter(|pt| {
            // Indexers starved: they spend meaningful time waiting.
            pt.report.indexer_wait_seconds > 0.05 * pt.report.total_seconds
        })
        .map(|pt| pt.scenario.parsers)
        .max()
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> (PlatformModel, CollectionModel) {
        (PlatformModel::c1060_xeon(), CollectionModel::clueweb09())
    }

    #[test]
    fn sweep_respects_core_budget() {
        let (p, c) = paper();
        let rows = sweep_parsers(&p, &c, 2, |m| 8 - m);
        assert_eq!(rows.len(), 7); // M = 1..=7
        for r in &rows {
            assert!(r.scenario.parsers + r.scenario.cpu_indexers <= p.cores);
        }
    }

    #[test]
    fn best_configuration_with_gpus_beats_without() {
        let (p, c) = paper();
        let with = best_configuration(&p, &c, 2);
        let without = best_configuration(&p, &c, 0);
        assert!(with.report.throughput_mb_s > without.report.throughput_mb_s);
        // The paper's finding: best CPU-only split is 5 parsers / 3 indexers.
        assert_eq!(without.scenario.parsers, 5, "{:?}", without.scenario);
        assert_eq!(without.scenario.cpu_indexers, 3);
        // With GPUs, most cores go to parsing (the paper ran 6).
        assert!(with.scenario.parsers >= 6, "{:?}", with.scenario);
    }

    #[test]
    fn balance_point_matches_fig10() {
        // Without GPUs the indexers keep up to ~5 parsers (Fig 10: curves
        // coincide through 5, diverge after).
        let (p, c) = paper();
        let bp = balance_point(&p, &c, 0, |m| 8 - m);
        assert!((4..=6).contains(&bp), "balance point {bp}");
    }

    #[test]
    fn gpu_count_scaling_saturates() {
        // Throughput grows with GPU count but with diminishing returns:
        // once the parser stage binds, more GPUs buy nothing.
        let (p, c) = paper();
        let t = |g| best_configuration(&p, &c, g).report.throughput_mb_s;
        let t0 = t(0);
        let t2 = t(2);
        let t8 = t(8);
        assert!(t2 > t0);
        assert!(t8 >= t2);
        let marginal_first = t2 - t0;
        let marginal_later = (t8 - t2) / 3.0;
        assert!(
            marginal_later < marginal_first,
            "diminishing returns: {marginal_first} vs {marginal_later}"
        );
    }
}
