//! # ii-platsim — discrete-event model of the paper's platform
//!
//! This host has a single CPU core and no GPU, so wall-clock runs cannot
//! exhibit the paper's 8-core + 2-GPU pipeline behaviour. `ii-platsim`
//! reproduces the performance *shape* experiments instead: per-stage costs
//! are pinned by the paper's own sub-measurements (read/decompress times,
//! per-indexer rates, Table V token shares) and by microbenchmarks of the
//! functional crates, and a deterministic pipeline recurrence derives the
//! Fig 10 scaling curves, Table IV/VI timing breakdowns, Fig 11 per-file
//! series and the Fig 12 cluster comparison.

#![warn(missing_docs)]

pub mod cluster;
pub mod model;
pub mod sim;
pub mod sweep;

pub use cluster::ClusterModel;
pub use model::{CollectionModel, PlatformModel, Scenario};
pub use sim::{intake_bandwidth, simulate, SimReport, BUFFER_DEPTH};
pub use sweep::{balance_point, best_configuration, sweep_parsers, SweepPoint};
