//! Cluster-throughput projections for the Fig 12 comparison.
//!
//! The paper compares its single heterogeneous node against Ivory
//! MapReduce (99 Hadoop nodes, 198 cores) on ClueWeb09 and Single-Pass
//! MapReduce (8 nodes, 24 usable cores) on .GOV2. We cannot run Hadoop
//! clusters here; instead `ii-baselines` implements both algorithms on an
//! in-process MapReduce runtime, the Fig 12 harness *measures* their
//! per-core throughput on synthetic data, and this module projects the
//! cluster-scale numbers: per-core rate × cores × framework efficiency.

/// A modeled cluster running a MapReduce indexing job.
#[derive(Clone, Copy, Debug)]
pub struct ClusterModel {
    /// Nodes in the cluster.
    pub nodes: usize,
    /// Worker cores per node available to the job.
    pub cores_per_node: usize,
    /// Single-core indexing throughput of the algorithm (MB/s of
    /// uncompressed input), measured from the `ii-baselines`
    /// implementation.
    pub per_core_mb_s: f64,
    /// Fraction of linear scaling retained at cluster scale (shuffle,
    /// stragglers, HDFS, JVM): Hadoop-era jobs typically kept 40-70%.
    pub framework_efficiency: f64,
}

impl ClusterModel {
    /// Ivory MapReduce's platform (Table VII): 99 nodes × 2 cores.
    pub fn ivory(per_core_mb_s: f64) -> Self {
        ClusterModel {
            nodes: 99,
            cores_per_node: 2,
            per_core_mb_s,
            framework_efficiency: 0.55,
        }
    }

    /// Single-Pass MapReduce's platform (Table VII): 8 nodes × 3 usable
    /// cores (one reserved for HDFS).
    pub fn single_pass(per_core_mb_s: f64) -> Self {
        ClusterModel {
            nodes: 8,
            cores_per_node: 3,
            per_core_mb_s,
            framework_efficiency: 0.65,
        }
    }

    /// Projected cluster throughput in MB/s.
    pub fn throughput_mb_s(&self) -> f64 {
        self.nodes as f64
            * self.cores_per_node as f64
            * self.per_core_mb_s
            * self.framework_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_is_linear_in_inputs() {
        let a = ClusterModel::ivory(1.0).throughput_mb_s();
        let b = ClusterModel::ivory(2.0).throughput_mb_s();
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_shapes_hold_for_plausible_rates() {
        // With Hadoop-era per-core rates around 1-2 MB/s, the 99-node
        // cluster lands near but below the paper's 262 MB/s single node —
        // Fig 12's qualitative claim.
        let ivory = ClusterModel::ivory(1.6).throughput_mb_s();
        assert!((100.0..262.0).contains(&ivory), "ivory {ivory}");
        let sp = ClusterModel::single_pass(1.6).throughput_mb_s();
        assert!(sp < ivory / 3.0, "small cluster far below: {sp}");
    }
}
