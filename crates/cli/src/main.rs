//! `ii` — command-line front end for the heterogeneous indexing system.
//!
//! ```text
//! ii generate <dir> [--preset clueweb|wikipedia|congress|tiny] [--scale F] [--seed N]
//! ii build    <collection-dir> <index-dir> [--parsers N] [--cpu N] [--gpus N] [--popular N]
//!             [--codec varbyte|gamma|golomb|bp128|pfor|ef|auto]
//!             [--max-retries N] [--on-fault fail|skip] [--checkpoint-every N] [--resume]
//!             [--mem-budget BYTES] [--stats] [--stats-json] [--stats-out stats.json]
//!             [--trace trace.json] [--strict] [--metrics-addr HOST:PORT]
//!             [--metrics-out metrics.prom] [--chaos-kill CLASS:INDEX:BATCH]
//! ii top      <host:port | metrics.prom> [--iters N] [--interval-ms MS] [--check]
//! ii postmortem <bundle.json | index-dir>
//! ii trace    report <trace.json> [--check]
//! ii verify   <index-dir>
//! ii repair   <index-dir>
//! ii downgrade <index-dir> <out-dir>
//! ii query    <index-dir> <terms...>
//! ii postings <index-dir> <term> [--range LO HI]
//! ii stats    <collection-dir | index-dir>
//! ii simulate [--parsers N] [--cpu N] [--gpus N] [--collection clueweb|wikipedia|congress]
//! ```

use ii_core::corpus::{CollectionSpec, DocId, StoredCollection};
use ii_core::pipeline::{FaultAction, WorkerClass, WorkerFaultPlan};
use ii_core::postings::Codec;
use ii_core::platsim::{simulate, CollectionModel, PlatformModel, Scenario};
use ii_core::{Index, IndexBuilder};
use ii_obs::openmetrics::MetricPoint;
use ii_obs::{Trace, TraceReport};
use std::io::IsTerminal;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    // Exit quietly when stdout is closed early (`ii postings ... | head`).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().map(String::as_str).unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        default_hook(info);
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("repair") => cmd_repair(&args[1..]),
        Some("downgrade") => cmd_downgrade(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("postings") => cmd_postings(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("postmortem") => cmd_postmortem(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("help") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try 'ii help')")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "ii — fast inverted-file construction on heterogeneous platforms\n\n\
         commands:\n  \
         generate <dir> [--preset P] [--scale F] [--seed N]   synthesize a collection\n  \
         build <coll-dir> <index-dir> [--parsers N] [--cpu N] [--gpus N] [--popular N]\n        \
         [--codec varbyte|gamma|golomb|bp128|pfor|ef|auto] postings codec; auto (default)\n        \
         picks per list length: varbyte short, PForDelta medium, BP128 long\n        \
         [--max-retries N] [--on-fault fail|skip]      fail aborts on a corrupt file (default);\n        \
         skip quarantines it and indexes the rest\n        \
         [--checkpoint-every N] commits a resumable checkpoint every N runs (default 8)\n        \
         [--resume] continues an interrupted build from its last checkpoint\n        \
         [--mem-budget BYTES] hard memory budget; under pressure the build degrades\n        \
         deterministically (backpressure, early flushes, GPU shedding); 0 = unlimited\n        \
         [--stats] prints the per-stage breakdown; [--stats-json] the raw snapshot\n        \
         [--stats-out F] writes the JSON snapshot to F (atomic temp+fsync+rename)\n        \
         [--strict] exits non-zero if any document was quarantined or any worker died\n        \
         [--trace trace.json] records per-worker event timelines\n        \
         (Chrome/Perfetto format; inspect with 'ii trace report')\n        \
         [--metrics-addr H:P] serves a live OpenMetrics endpoint for the whole build\n        \
         (watch with 'ii top H:P'); [--metrics-out F] writes the final exposition to F\n        \
         [--chaos-kill CLASS:INDEX:BATCH] seeded worker kill (parser|cpu|gpu) for\n        \
         forensics drills — the build survives and cuts a post-mortem bundle\n  \
         top <host:port | metrics.prom> [--iters N] [--interval-ms MS] [--check]\n        \
         live build monitor: per-stage MB/s, queue depths, worker liveness,\n        \
         memory-vs-budget, ETA; --check lints the exposition and exits non-zero\n  \
         postmortem <bundle.json | index-dir>                 render a post-mortem bundle:\n        \
         cause attribution, supervision ledger, flight-recorder timeline\n  \
         trace report <trace.json> [--check]                  per-worker utilization, stall\n        \
         attribution, and an ASCII timeline from a recorded trace; --check\n        \
         additionally enforces the trace invariants and exits non-zero on failure\n  \
         verify <index-dir>                                   checksum + dictionary invariants\n  \
         repair <index-dir>                                   salvage intact artifacts, report losses\n  \
         downgrade <index-dir> <out-dir>                      re-encode as a legacy v1 index\n        \
         (whole-list varbyte runs, v1 manifest) for format-interop testing\n  \
         query <index-dir> <terms...>                         conjunctive search\n  \
         postings <index-dir> <term> [--range LO HI]          dump a postings list\n  \
         stats <dir>                                          collection or index stats\n  \
         simulate [--parsers N] [--cpu N] [--gpus N] [--collection C]  platsim projection"
    );
}

/// Pull `--flag value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn flag_usize(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag(args, name) {
        Some(v) => v.parse().map_err(|_| format!("{name} expects an integer, got '{v}'")),
        None => Ok(default),
    }
}

/// Flags that take no value (everything else consumes the next argument).
const BOOL_FLAGS: &[&str] = &["--stats", "--stats-json", "--resume", "--check", "--strict"];

fn bool_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Reject any `--flag` the command does not understand. Silently ignoring
/// unknown flags hid typos like `--parser 8` (which ran a 2-parser build
/// and skewed every number derived from it), so each command declares its
/// flag set and anything else is an error.
fn check_flags(args: &[String], allowed: &[&str]) -> Result<(), String> {
    for a in args {
        if a.starts_with("--") && !allowed.contains(&a.as_str()) {
            return Err(format!(
                "unknown flag '{a}'{}",
                if allowed.is_empty() {
                    " (this command takes no flags)".to_string()
                } else {
                    format!(" (expected one of: {})", allowed.join(", "))
                }
            ));
        }
    }
    Ok(())
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !BOOL_FLAGS.contains(&a.as_str());
            continue;
        }
        out.push(a);
    }
    out
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    check_flags(args, &["--preset", "--scale", "--seed"])?;
    let pos = positional(args);
    let dir = pos.first().ok_or("generate: missing <dir>")?;
    let scale: f64 = flag(args, "--scale").map_or(Ok(0.5), |v| {
        v.parse().map_err(|_| format!("--scale expects a number, got '{v}'"))
    })?;
    let seed = flag_usize(args, "--seed", 42)? as u64;
    let preset = flag(args, "--preset").unwrap_or_else(|| "wikipedia".into());
    let mut spec = match preset.as_str() {
        "clueweb" => CollectionSpec::clueweb_like(scale),
        "wikipedia" => CollectionSpec::wikipedia_like(scale),
        "congress" => CollectionSpec::congress_like(scale),
        "tiny" => CollectionSpec::tiny(seed),
        other => return Err(format!("unknown preset '{other}'")),
    };
    spec.seed = seed;
    let stored = StoredCollection::generate(spec, Path::new(dir))
        .map_err(|e| format!("generate failed: {e}"))?;
    let s = &stored.manifest.stats;
    println!(
        "generated '{preset}' collection in {dir}: {} files, {} docs, {} tokens, {:.1} MB ({:.1} MB compressed)",
        stored.num_files(),
        s.documents,
        s.tokens,
        s.uncompressed_bytes as f64 / 1e6,
        s.compressed_bytes as f64 / 1e6
    );
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    check_flags(
        args,
        &[
            "--parsers",
            "--cpu",
            "--gpus",
            "--codec",
            "--popular",
            "--max-retries",
            "--on-fault",
            "--checkpoint-every",
            "--resume",
            "--mem-budget",
            "--stats",
            "--stats-json",
            "--stats-out",
            "--trace",
            "--strict",
            "--metrics-addr",
            "--metrics-out",
            "--chaos-kill",
        ],
    )?;
    let pos = positional(args);
    let [coll_dir, index_dir] = pos.as_slice() else {
        return Err("build: need <collection-dir> <index-dir>".into());
    };
    let parsers = flag_usize(args, "--parsers", 2)?;
    let cpu = flag_usize(args, "--cpu", 1)?;
    let gpus = flag_usize(args, "--gpus", 1)?;
    let codec = match flag(args, "--codec").as_deref() {
        // Auto picks per list-length class: varbyte / PForDelta / Elias-Fano.
        None | Some("auto") => Codec::Auto,
        Some("varbyte") => Codec::VarByte,
        Some("gamma") => Codec::Gamma,
        // A fixed mid-range Golomb parameter; per-list tuning is the
        // ablation harness's job (`ablate_codecs`), not the build path's.
        Some("golomb") => Codec::Golomb(64),
        Some("bp128") => Codec::Bp128,
        Some("pfor") => Codec::PFor,
        Some("ef") => Codec::EliasFano,
        Some(other) => {
            return Err(format!(
                "--codec expects varbyte|gamma|golomb|bp128|pfor|ef|auto, got '{other}'"
            ))
        }
    };
    let popular = flag_usize(args, "--popular", 40)?;
    let max_retries = flag_usize(args, "--max-retries", 3)? as u32;
    let on_fault = match flag(args, "--on-fault").as_deref() {
        None | Some("fail") => FaultAction::FailFast,
        Some("skip") => FaultAction::SkipFile,
        Some(other) => return Err(format!("--on-fault expects 'fail' or 'skip', got '{other}'")),
    };
    let checkpoint_every = flag_usize(args, "--checkpoint-every", 8)?;
    // Absent: the library's sane default budget. Present: the given hard
    // budget, with 0 meaning explicitly unlimited.
    let mem_budget: Option<u64> = match flag(args, "--mem-budget") {
        Some(v) => {
            Some(v.parse().map_err(|_| format!("--mem-budget expects bytes, got '{v}'"))?)
        }
        None => None,
    };
    let resume = bool_flag(args, "--resume");
    let trace_path = flag(args, "--trace");
    let metrics_addr = flag(args, "--metrics-addr");
    let metrics_out = flag(args, "--metrics-out");
    let stats_out = flag(args, "--stats-out");
    let chaos_kill = flag(args, "--chaos-kill");
    // The build itself is durable: sealed runs, the doc map, and indexer
    // dictionary shards are committed atomically every `checkpoint_every`
    // runs, and the final index commit replaces the checkpoint — so a
    // crashed build is always `--resume`-able, never garbage.
    let mut builder = IndexBuilder::small()
        .parsers(parsers)
        .cpu_indexers(cpu)
        .gpus(gpus)
        .codec(codec)
        .popular_count(popular)
        .max_retries(max_retries)
        .on_fault(on_fault)
        .tracing(trace_path.is_some());
    if let Some(bytes) = mem_budget {
        builder = builder.mem_budget(bytes);
    }
    if let Some(addr) = &metrics_addr {
        builder = builder.metrics_addr(addr.clone());
    }
    if let Some(spec) = &chaos_kill {
        let (class, idx, at) = parse_chaos_kill(spec)?;
        builder = builder
            .supervised(true)
            .worker_faults(WorkerFaultPlan::none().kill(class, idx, at));
    }
    let index = builder
        .build_dir_durable(Path::new(coll_dir), Path::new(index_dir), checkpoint_every, resume)
        .map_err(|e| {
            // A failed build leaves its forensics behind: point at the
            // freshest post-mortem bundle if one was cut.
            let pm = Path::new(index_dir).join("postmortem");
            match ii_core::pipeline::list_bundles(&pm) {
                Ok(bundles) if !bundles.is_empty() => format!(
                    "build failed: {e}\npost-mortem bundle: {} (inspect with 'ii postmortem')",
                    bundles.last().unwrap().display()
                ),
                _ => format!("build failed: {e}"),
            }
        })?;
    let r = &index.report;
    println!(
        "indexed {} docs -> {} terms in {:.2}s ({:.2} MB/s on this host)",
        r.docs,
        index.num_terms(),
        r.total_seconds,
        r.throughput_mb_s()
    );
    println!(
        "stage seconds: sampling {:.2}, parser busy {:.2}, indexing {:.2}, post {:.2}, dict {:.3}+{:.3}",
        r.sampling_seconds,
        r.parser_busy_seconds,
        r.indexing_seconds,
        r.post_processing_seconds,
        r.dict_combine_seconds,
        r.dict_write_seconds
    );
    println!("faults: {}", r.faults.summary());
    for q in &r.faults.quarantined {
        println!("  quarantined {q}");
    }
    println!("workers: {}", r.supervision.summary());
    for d in &r.supervision.deaths {
        println!("  {d}");
    }
    for l in &r.supervision.lossy_incidents {
        println!("  LOSSY {l}");
    }
    for b in &r.postmortem_bundles {
        println!("post-mortem bundle: {} (inspect with 'ii postmortem')", b.display());
    }
    if r.stages.gauge("governor.budget_bytes") > 0 {
        println!(
            "memory: budget {:.1} MB, high water {:.1} MB, {} credit waits, \
             {} early flushes, {} gpu sheds",
            r.stages.gauge("governor.budget_bytes") as f64 / 1e6,
            r.stages.gauge("governor.high_water_bytes") as f64 / 1e6,
            r.stages.counter("governor.credit_waits"),
            r.stages.counter("governor.early_flushes"),
            r.stages.counter("governor.gpu_sheds"),
        );
    }
    if bool_flag(args, "--stats") {
        println!("\nper-stage breakdown (Table V / Fig 9):");
        print!("{}", r.stages.render_table());
        let queue_wait: f64 = r.per_file.iter().map(|f| f.queue_wait_seconds).sum();
        println!(
            "indexer queue wait: {queue_wait:.3}s across {} files (driver idle on parsers)",
            r.per_file.len()
        );
    }
    if bool_flag(args, "--stats-json") {
        println!("{}", r.stages.snapshot.to_json());
    }
    if let Some(path) = &stats_out {
        write_durable(Path::new(path), r.stages.snapshot.to_json().as_bytes())?;
        println!("stats: JSON snapshot written to {path}");
    }
    if let Some(path) = &metrics_out {
        let exposition = ii_obs::openmetrics::render(&r.stages.snapshot);
        write_durable(Path::new(path), exposition.as_bytes())?;
        println!("metrics: OpenMetrics exposition written to {path}");
    }
    if let Some(path) = &trace_path {
        let tr = r.trace.as_ref().ok_or("build finished without a trace (internal error)")?;
        write_durable(Path::new(path), tr.to_chrome_json().as_bytes())?;
        println!(
            "trace: {} events from {} workers written to {path} ({} dropped)",
            tr.num_events(),
            tr.workers.len(),
            tr.dropped
        );
    }
    println!("index written to {index_dir}");
    // Strict builds refuse degradation: the index above is complete and
    // committed, but any quarantined document or dead worker means it was
    // produced in a degraded mode — exit non-zero so CI notices.
    if bool_flag(args, "--strict") {
        let deaths = r.supervision.deaths.len();
        let quarantined = r.faults.quarantined.len();
        if deaths > 0 || quarantined > 0 {
            return Err(format!(
                "--strict: build degraded ({deaths} worker deaths, \
                 {quarantined} quarantined files) — {}",
                r.supervision.summary()
            ));
        }
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("report") => cmd_trace_report(&args[1..]),
        Some(other) => Err(format!("unknown trace subcommand '{other}' (try 'ii trace report')")),
        None => Err("trace: need a subcommand — ii trace report <trace.json> [--check]".into()),
    }
}

fn cmd_trace_report(args: &[String]) -> Result<(), String> {
    check_flags(args, &["--check"])?;
    let pos = positional(args);
    let path = pos.first().ok_or("trace report: missing <trace.json>")?;
    let text = std::fs::read_to_string(path.as_str())
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = Trace::from_chrome_json(&text)?;
    let report = TraceReport::from_trace(&trace);
    print!("{}", report.render(&trace, 100));
    if bool_flag(args, "--check") {
        report.check(&trace).map_err(|e| format!("trace check failed: {e}"))?;
        println!("trace check passed: spans well-formed, attribution sums to wall");
    }
    Ok(())
}

fn open_index(dir: &str) -> Result<Index, String> {
    Index::open(&PathBuf::from(dir)).map_err(|e| format!("cannot open index {dir}: {e}"))
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    check_flags(args, &[])?;
    let pos = positional(args);
    let dir = pos.first().ok_or("verify: missing <index-dir>")?;
    let statuses = Index::verify_dir(Path::new(dir.as_str()))
        .map_err(|e| format!("cannot verify {dir}: {e}"))?;
    let mut bad = 0usize;
    for s in &statuses {
        if s.ok {
            println!("  ok      {:<24} {} bytes", s.name, s.len);
        } else {
            bad += 1;
            println!("  FAILED  {:<24} {}", s.name, s.detail);
        }
    }
    // The manifest pass proves the bytes are what was committed; the
    // dictionary invariant pass proves the committed bytes make sense.
    match Index::open(Path::new(dir.as_str())) {
        Ok(index) => {
            let violations = ii_core::dict::verify_global(&index.dictionary);
            for v in &violations {
                bad += 1;
                println!("  FAILED  dictionary invariant: {v:?}");
            }
        }
        Err(e) => {
            bad += 1;
            println!("  FAILED  open: {e}");
        }
    }
    if bad > 0 {
        return Err(format!("{bad} of {} artifact checks failed in {dir}", statuses.len() + 1));
    }
    println!("verified {dir}: {} artifacts clean", statuses.len());
    Ok(())
}

/// Re-encode a blocked (v2) index in the legacy v1 wire format: whole-list
/// varbyte runs, version-1 manifest with no postings metadata. Exercises
/// the backward-compat read path end to end — CI builds a fresh index,
/// downgrades it, and requires `verify` to pass on both.
fn cmd_downgrade(args: &[String]) -> Result<(), String> {
    use ii_core::postings::{Posting, PostingsList, RunFile, RunSet};
    use ii_core::store::{Manifest, MANIFEST_NAME};
    check_flags(args, &[])?;
    let pos = positional(args);
    let src = pos.first().ok_or("downgrade: missing <index-dir>")?;
    let dst = pos.get(1).ok_or("downgrade: missing <out-dir>")?;
    let idx =
        Index::open(Path::new(src.as_str())).map_err(|e| format!("cannot open {src}: {e}"))?;
    let mut runs = 0usize;
    let mut legacy_sets: std::collections::HashMap<u32, RunSet> = std::collections::HashMap::new();
    for (&indexer, set) in &idx.run_sets {
        for run in set.runs() {
            let lists: Vec<(u32, PostingsList)> = run
                .entries
                .iter()
                .map(|e| {
                    let mut l = PostingsList::new();
                    for p in run
                        .decode_entry(e)
                        .map_err(|err| format!("run {} handle {}: {err}", run.run_id, e.handle))?
                    {
                        l.push(Posting { doc: p.doc, tf: p.tf });
                    }
                    Ok((e.handle, l))
                })
                .collect::<Result<_, String>>()?;
            let mut it = lists.iter().map(|(h, l)| (*h, l));
            legacy_sets
                .entry(indexer)
                .or_default()
                .push(RunFile::build_legacy(run.run_id, indexer, &mut it, Codec::VarByte));
            runs += 1;
        }
    }
    let legacy = Index {
        dictionary: idx.dictionary,
        run_sets: legacy_sets,
        doc_map: idx.doc_map,
        report: Default::default(),
        obs: std::sync::Arc::new(ii_core::obs::Registry::new()),
    };
    let out = Path::new(dst.as_str());
    legacy.save(out).map_err(|e| format!("cannot save {dst}: {e}"))?;
    // Rewrite the manifest as a v1 writer produced it: version 1, no
    // postings metadata. Artifact bytes are untouched, so CRCs hold.
    let mut m = Manifest::load(out).map_err(|e| format!("manifest reload: {e}"))?;
    m.version = 1;
    for a in &mut m.artifacts {
        a.postings = None;
    }
    std::fs::write(out.join(MANIFEST_NAME), m.to_bytes())
        .map_err(|e| format!("manifest rewrite: {e}"))?;
    println!("downgraded {src} -> {dst}: {runs} runs re-encoded in the legacy v1 format");
    Ok(())
}

fn cmd_repair(args: &[String]) -> Result<(), String> {
    check_flags(args, &[])?;
    let pos = positional(args);
    let dir = pos.first().ok_or("repair: missing <index-dir>")?;
    let report = Index::repair(Path::new(dir.as_str()))
        .map_err(|e| format!("cannot repair {dir}: {e}"))?;
    for name in &report.kept {
        println!("  kept  {name}");
    }
    for (name, why) in &report.lost {
        println!("  LOST  {name}: {why}");
    }
    println!(
        "repaired {dir}: {} artifacts kept, {} lost (manifest generation {})",
        report.kept.len(),
        report.lost.len(),
        report.generation
    );
    if !report.lost.is_empty() {
        return Err(format!(
            "{} artifacts were unrecoverable — rebuild to restore full coverage",
            report.lost.len()
        ));
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    check_flags(args, &[])?;
    let pos = positional(args);
    let (dir, terms) = pos.split_first().ok_or("query: need <index-dir> <terms...>")?;
    if terms.is_empty() {
        return Err("query: need at least one term".into());
    }
    let index = open_index(dir)?;
    let q = terms.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(" ");
    let hits = index.search(&q);
    println!("{} hits for '{q}'", hits.len());
    for (doc, score) in hits.iter().take(20) {
        println!("  doc {doc:>8}  score {score}");
    }
    Ok(())
}

fn cmd_postings(args: &[String]) -> Result<(), String> {
    check_flags(args, &["--range"])?;
    let pos = positional(args);
    let [dir, term] = pos.as_slice() else {
        return Err("postings: need <index-dir> <term>".into());
    };
    let index = open_index(dir)?;
    let range = flag(args, "--range");
    if let Some(r) = range {
        let (lo, hi) = r
            .split_once(',')
            .or_else(|| r.split_once(':'))
            .ok_or("--range expects LO,HI")?;
        let lo: u32 = lo.parse().map_err(|_| "bad LO")?;
        let hi: u32 = hi.parse().map_err(|_| "bad HI")?;
        let posts = index.postings_in_range(term, DocId(lo), DocId(hi));
        println!("{} postings for '{term}' in docs [{lo}, {hi}]", posts.len());
        for p in posts.iter().take(50) {
            println!("  doc {:>8}  tf {}", p.doc, p.tf);
        }
    } else {
        match index.postings(term) {
            Some(list) => {
                println!("{} postings for '{term}' (total tf {})", list.len(), list.total_tf());
                for p in list.postings().iter().take(50) {
                    println!("  doc {:>8}  tf {}", p.doc, p.tf);
                }
            }
            None => println!("'{term}' not in the dictionary"),
        }
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    check_flags(args, &[])?;
    let pos = positional(args);
    let dir = pos.first().ok_or("stats: missing <dir>")?;
    let path = Path::new(dir.as_str());
    if path.join("manifest.json").exists() {
        let c = StoredCollection::open(path).map_err(|e| e.to_string())?;
        let s = &c.manifest.stats;
        println!("collection '{}':", c.manifest.spec.name);
        println!("  files:        {}", c.num_files());
        println!("  documents:    {}", s.documents);
        println!("  tokens:       {}", s.tokens);
        println!("  terms:        {}", s.distinct_terms);
        println!("  uncompressed: {:.2} MB", s.uncompressed_bytes as f64 / 1e6);
        println!("  compressed:   {:.2} MB", s.compressed_bytes as f64 / 1e6);
    } else if path.join("dictionary.bin").exists() {
        let index = open_index(dir)?;
        let runs: usize = index.run_sets.values().map(|s| s.runs().len()).sum();
        println!("index at {dir}:");
        println!("  terms:    {}", index.num_terms());
        println!("  indexers: {}", index.run_sets.len());
        println!("  runs:     {runs}");
        let heaviest = index
            .dictionary
            .entries()
            .iter()
            .max_by_key(|e| index.run_sets[&e.indexer].fetch(e.postings).len());
        if let Some(e) = heaviest {
            let l = index.run_sets[&e.indexer].fetch(e.postings);
            println!("  busiest term: '{}' in {} docs", e.full_term(), l.len());
        }
    } else {
        return Err(format!("{dir} is neither a collection nor an index"));
    }
    Ok(())
}

/// Crash-safe file write — ii-store's write-temp → fsync → atomic-rename,
/// so an interrupted `ii build` can't leave a truncated JSON / exposition
/// artifact behind.
fn write_durable(path: &Path, bytes: &[u8]) -> Result<(), String> {
    ii_core::store::write_file_durable(&ii_core::store::RealVfs, path, bytes)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// `--chaos-kill parser|cpu|gpu:INDEX:BATCH` — a seeded worker kill.
fn parse_chaos_kill(spec: &str) -> Result<(WorkerClass, usize, usize), String> {
    let bad = || format!("--chaos-kill expects CLASS:INDEX:BATCH (e.g. gpu:0:2), got '{spec}'");
    let parts: Vec<&str> = spec.split(':').collect();
    let [class, idx, at] = parts.as_slice() else {
        return Err(bad());
    };
    let class = match *class {
        "parser" => WorkerClass::Parser,
        "cpu" => WorkerClass::CpuIndexer,
        "gpu" => WorkerClass::GpuIndexer,
        other => {
            return Err(format!("--chaos-kill class must be parser|cpu|gpu, got '{other}'"))
        }
    };
    Ok((class, idx.parse().map_err(|_| bad())?, at.parse().map_err(|_| bad())?))
}

fn cmd_postmortem(args: &[String]) -> Result<(), String> {
    check_flags(args, &[])?;
    let pos = positional(args);
    let target = pos.first().ok_or("postmortem: need <bundle.json | index-dir>")?;
    let path = Path::new(target.as_str());
    let bundle = if path.is_dir() {
        // An index dir (or its postmortem/ subdir): render the newest
        // bundle and list any others.
        let dir = if path.join(ii_core::pipeline::POSTMORTEM_DIR).is_dir() {
            path.join(ii_core::pipeline::POSTMORTEM_DIR)
        } else {
            path.to_path_buf()
        };
        let bundles = ii_core::pipeline::list_bundles(&dir)
            .map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let Some(newest) = bundles.last().cloned() else {
            return Err(format!("no post-mortem bundles in {}", dir.display()));
        };
        if bundles.len() > 1 {
            println!("{} bundles in {} (rendering the newest):", bundles.len(), dir.display());
            for b in &bundles {
                println!("  {}", b.display());
            }
            println!();
        }
        newest
    } else {
        path.to_path_buf()
    };
    let text = std::fs::read_to_string(&bundle)
        .map_err(|e| format!("cannot read {}: {e}", bundle.display()))?;
    let report = ii_core::pipeline::render_bundle_report(&text)
        .map_err(|e| format!("{}: {e}", bundle.display()))?;
    print!("{report}");
    Ok(())
}

/// One exposition sample by family name + identifying label.
fn top_value(points: &[MetricPoint], family: &str, key: &str, label: &str) -> Option<f64> {
    points.iter().find(|p| p.name == family && p.label(key) == Some(label)).map(|p| p.value)
}

/// State carried between `ii top` frames so rates are computed over the
/// actual scrape interval rather than cumulative averages.
struct TopState {
    t: Instant,
    files_done: f64,
    stage_bytes: Vec<(String, f64)>,
}

fn render_top_frame(points: &[MetricPoint], prev: Option<&TopState>) -> (String, TopState) {
    let now = Instant::now();
    let dt = prev.map(|p| now.duration_since(p.t).as_secs_f64()).filter(|d| *d > 1e-3);
    let gauge = |name: &str| top_value(points, "ii_gauge", "name", name);
    let counter = |name: &str| top_value(points, "ii_counter_total", "name", name);
    let mut o = String::new();
    let done = gauge("pipeline.files_done").unwrap_or(0.0);
    let total = gauge("pipeline.files_total").unwrap_or(0.0);
    if total > 0.0 {
        o.push_str(&format!("files {done:.0}/{total:.0} ({:.0}%)", 100.0 * done / total));
        if let (Some(dt), Some(p)) = (dt, prev) {
            let rate = (done - p.files_done) / dt;
            if done >= total {
                o.push_str("  done");
            } else if rate > 0.0 {
                o.push_str(&format!("  ETA {:.0}s", (total - done) / rate));
            }
        }
        if let Some(docs) = counter("pipeline.docs") {
            o.push_str(&format!("  docs {docs:.0}"));
        }
        o.push('\n');
    }
    let stage_names: Vec<String> = points
        .iter()
        .filter(|p| p.name == "ii_stage_wall_seconds")
        .filter_map(|p| p.label("stage").map(str::to_string))
        .collect();
    let mut stage_bytes: Vec<(String, f64)> = Vec::new();
    if !stage_names.is_empty() {
        o.push_str(&format!("{:<16} {:>9} {:>12} {:>10}\n", "stage", "MB/s", "items", "MB"));
    }
    for name in stage_names {
        let bytes = top_value(points, "ii_stage_bytes_total", "stage", &name).unwrap_or(0.0);
        let items = top_value(points, "ii_stage_items_total", "stage", &name).unwrap_or(0.0);
        let wall = top_value(points, "ii_stage_wall_seconds", "stage", &name).unwrap_or(0.0);
        // Live rate over the scrape interval when a previous frame exists,
        // else the cumulative average.
        let prev_bytes = prev.and_then(|p| p.stage_bytes.iter().find(|(n, _)| *n == name));
        let rate = match (dt, prev_bytes) {
            (Some(dt), Some((_, pb))) => (bytes - pb) / dt / 1e6,
            _ if wall > 0.0 => bytes / wall / 1e6,
            _ => 0.0,
        };
        o.push_str(&format!("{name:<16} {rate:>9.2} {items:>12.0} {:>10.1}\n", bytes / 1e6));
        stage_bytes.push((name, bytes));
    }
    let queues: Vec<String> = points
        .iter()
        .filter(|p| p.name == "ii_gauge")
        .filter_map(|p| {
            let n = p.label("name")?;
            if !(n.starts_with("queue.") || n.starts_with("recycler.")) {
                return None;
            }
            let short = n.trim_start_matches("queue.").trim_end_matches(".depth");
            Some(format!("{short} {:.0}", p.value))
        })
        .collect();
    if !queues.is_empty() {
        o.push_str(&format!("queues: {}\n", queues.join("  ")));
    }
    let resident = gauge("governor.dict_bytes").unwrap_or(0.0)
        + gauge("governor.postings_bytes").unwrap_or(0.0)
        + gauge("governor.device_bytes").unwrap_or(0.0);
    let budget = gauge("governor.budget_bytes").unwrap_or(0.0);
    let high = gauge("governor.high_water_bytes").unwrap_or(0.0);
    if budget > 0.0 {
        let frac = (resident / budget).clamp(0.0, 1.0);
        let filled = (frac * 20.0).round() as usize;
        o.push_str(&format!(
            "memory: [{}{}] {:.1}/{:.1} MB ({:.0}%), high water {:.1} MB\n",
            "#".repeat(filled),
            ".".repeat(20 - filled),
            resident / 1e6,
            budget / 1e6,
            frac * 100.0,
            high / 1e6
        ));
    } else if resident > 0.0 || high > 0.0 {
        o.push_str(&format!(
            "memory: resident {:.1} MB, high water {:.1} MB (no budget)\n",
            resident / 1e6,
            high / 1e6
        ));
    }
    let workers: Vec<String> = points
        .iter()
        .filter(|p| p.name == "ii_gauge")
        .filter_map(|p| {
            let w = p.label("name")?.strip_prefix("worker.")?.strip_suffix(".idle_ms")?;
            Some(format!("{w} {:.0}", p.value))
        })
        .collect();
    if !workers.is_empty() {
        o.push_str(&format!("workers (idle ms): {}\n", workers.join("  ")));
    }
    (o, TopState { t: now, files_done: done, stage_bytes })
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    check_flags(args, &["--iters", "--interval-ms", "--check"])?;
    let pos = positional(args);
    let target = pos.first().ok_or("top: need <host:port | exposition-file>")?.as_str();
    let check = bool_flag(args, "--check");
    let is_file = Path::new(target).is_file();
    // Files render once; live endpoints poll until the endpoint goes away
    // (build finished) or --iters frames have been shown.
    let iters = flag_usize(args, "--iters", if is_file { 1 } else { 0 })?;
    let interval = Duration::from_millis(flag_usize(args, "--interval-ms", 500)? as u64);
    let mut prev: Option<TopState> = None;
    let mut frame = 0usize;
    loop {
        let text = if is_file {
            std::fs::read_to_string(target).map_err(|e| format!("cannot read {target}: {e}"))?
        } else {
            match ii_obs::http::fetch(target, Duration::from_secs(2)) {
                Ok(t) => t,
                Err(e) if frame > 0 => {
                    println!("endpoint {target} gone ({e}) — build finished");
                    return Ok(());
                }
                Err(e) => return Err(format!("cannot scrape {target}: {e}")),
            }
        };
        if check {
            ii_obs::openmetrics::lint(&text)
                .map_err(|e| format!("exposition lint failed: {e}"))?;
        }
        let points = ii_obs::openmetrics::parse(&text)
            .map_err(|e| format!("cannot parse exposition: {e}"))?;
        let (rendered, state) = render_top_frame(&points, prev.as_ref());
        if frame > 0 && std::io::stdout().is_terminal() {
            // Redraw in place on a live terminal; plain scrolling frames
            // otherwise (pipes, CI logs).
            print!("\x1b[2J\x1b[H");
        }
        println!("ii top — {target}{}", if check { " [lint OK]" } else { "" });
        print!("{rendered}");
        prev = Some(state);
        frame += 1;
        if is_file || (iters > 0 && frame >= iters) {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    check_flags(args, &["--parsers", "--cpu", "--gpus", "--collection"])?;
    let parsers = flag_usize(args, "--parsers", 6)?;
    let cpu = flag_usize(args, "--cpu", 2)?;
    let gpus = flag_usize(args, "--gpus", 2)?;
    let coll = flag(args, "--collection").unwrap_or_else(|| "clueweb".into());
    let c = match coll.as_str() {
        "clueweb" => CollectionModel::clueweb09(),
        "wikipedia" => CollectionModel::wikipedia(),
        "congress" => CollectionModel::congress(),
        other => return Err(format!("unknown collection '{other}'")),
    };
    let p = PlatformModel::c1060_xeon();
    let r = simulate(&p, &c, &Scenario::new(parsers, cpu, gpus));
    println!("platsim projection on the paper's platform (8-core Xeon + Tesla C1060s):");
    println!("  scenario:   {parsers} parsers, {cpu} CPU indexers, {gpus} GPUs on '{coll}'");
    println!("  total:      {:.0} s", r.total_seconds);
    println!("  parser stage ends at {:.0} s; indexing busy {:.0} s (waits {:.0} s)",
        r.parser_stage_seconds, r.indexing_busy_seconds, r.indexer_wait_seconds);
    println!("  throughput: {:.1} MB/s of uncompressed input", r.throughput_mb_s);
    Ok(())
}
