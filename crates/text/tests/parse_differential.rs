//! Differential property tests for the zero-allocation parse hot path.
//!
//! The optimization contract is *byte identity*: the scratch-based parser
//! ([`parse_documents_into`]), the copy-on-write stemmer
//! ([`porter::stem_into`]), and the byte-class tokenizer must produce
//! exactly what the retained naive reference implementations produce, on
//! arbitrary Unicode input, including when one scratch is reused across
//! many batches (the pipeline's steady state).

use ii_text::porter::{self, reference, StemBuf};
use ii_text::tokenize::{tokens, tokens_reference};
use ii_text::{
    parse_documents_into, parse_documents_reference, stopwords::STOP_WORDS, ParseScratch,
};
use ii_corpus::doc::RawDocument;
use proptest::prelude::*;

/// Document bodies that mix ASCII prose, punctuation, numbers (with the
/// '-' prefix rule), HTML-ish markup, and arbitrary Unicode. The vendored
/// proptest has no alternation, so a selector byte picks the flavour.
fn body_strategy() -> impl Strategy<Value = String> {
    (any::<u8>(), "[a-zA-Z -]{0,60}", "[a-zA-Z0-9<>/&; .,-]{0,60}", ".{0,40}")
        .prop_map(|(sel, prose, markup, unicode)| match sel % 4 {
            // ASCII prose with stop words and stemmable suffixes.
            0 => format!("the running ponies {prose} x86 -42 caresses"),
            // HTML fragments (exercised in html=true mode).
            1 => format!("<p>{prose}</p>{markup}&amp; &lt;"),
            2 => format!("a<script>{prose}</script>b<style>{markup}</style>{prose}"),
            // Arbitrary Unicode.
            _ => unicode,
        })
}

fn docs_strategy() -> impl Strategy<Value = Vec<RawDocument>> {
    proptest::collection::vec(
        ("[a-z0-9]{0,6}", body_strategy())
            .prop_map(|(url, body)| RawDocument { url, body }),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimized parser's ParsedBatch — groups, term_bytes, positions,
    /// doc table, stats — is byte-identical to the naive reference, with
    /// one scratch reused across every batch of the proptest run (each
    /// case parses twice, so stale-state bugs between batches surface).
    #[test]
    fn parsed_batch_is_byte_identical(
        batches in proptest::collection::vec((docs_strategy(), any::<bool>()), 1..4)
    ) {
        let mut scratch = ParseScratch::new();
        for (file_idx, (docs, html)) in batches.iter().enumerate() {
            let reference = parse_documents_reference(docs, *html, file_idx);
            let optimized = parse_documents_into(&mut scratch, docs, *html, file_idx);
            prop_assert_eq!(&optimized, &reference);
            // Recycle as the pipeline consumer does, then parse again into
            // the recycled buffers.
            scratch.recycle(optimized);
            let again = parse_documents_into(&mut scratch, docs, *html, file_idx);
            prop_assert_eq!(&again, &reference);
            scratch.recycle(again);
        }
    }

    /// stem_into agrees with the naive stemmer on fuzzed ASCII words
    /// (including non-lowercase passthrough cases), and the Cow wrapper
    /// agrees content-wise.
    #[test]
    fn stem_into_matches_reference_on_fuzzed_words(word in "[a-zA-Z0-9-]{0,20}") {
        let mut buf = StemBuf::new();
        let expect = reference::stem(&word);
        let got = porter::stem_into(&word, &mut buf);
        prop_assert_eq!(got, expect.as_ref());
        let cow = porter::stem(&word);
        prop_assert_eq!(cow.as_ref(), expect.as_ref());
    }

    /// Long lowercase words exercise the buffer-growth path.
    #[test]
    fn stem_into_matches_reference_on_long_words(word in "[a-z]{200,300}") {
        let mut buf = StemBuf::new();
        let expect = reference::stem(&word);
        let got = porter::stem_into(&word, &mut buf);
        prop_assert_eq!(got, expect.as_ref());
    }

    /// The byte-class tokenizer yields the identical token sequence to the
    /// char-wise reference scanner on arbitrary Unicode input.
    #[test]
    fn tokenizer_matches_reference(text in ".{0,120}") {
        let fast = tokens(&text).collect_all();
        let naive = tokens_reference(&text).collect_all();
        prop_assert_eq!(fast, naive);
    }
}

/// stem_into agrees with the naive stemmer on every stop-list word (the
/// exact set the ISSUE calls out), reusing one buffer throughout.
#[test]
fn stem_into_matches_reference_on_stop_list() {
    let mut buf = StemBuf::new();
    for w in STOP_WORDS {
        assert_eq!(
            porter::stem_into(w, &mut buf),
            reference::stem(w).as_ref(),
            "stop word {w:?}"
        );
    }
}
