//! Stop-word removal (parser Step 4).
//!
//! The paper removes stop words *after* stemming (§III.C Step 3 then
//! Step 4), so the filter must recognize both surface forms ("this") and
//! their stems ("thi"). We build one sorted table containing the classic
//! stop list plus the Porter stem of every entry, and answer membership by
//! binary search.
//!
//! Because this runs once per kept token, the lookup front-loads two cheap
//! rejects — a length cap (no stop word exceeds [`max_stop_len`]) and a
//! (first letter, length) bucket — so the common case (a content word)
//! usually exits before any string comparison, and a hit scans at most a
//! handful of same-length candidates.

use crate::porter;
use std::sync::OnceLock;

/// The classic SMART-derived stop list (surface forms).
pub const STOP_WORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "cannot", "could", "did", "do", "does", "doing", "down", "during", "each",
    "few", "for", "from", "further", "had", "has", "have", "having", "he", "her", "here",
    "hers", "herself", "him", "himself", "his", "how", "i", "if", "in", "into", "is", "it",
    "its", "itself", "me", "more", "most", "my", "myself", "no", "nor", "not", "of", "off",
    "on", "once", "only", "or", "other", "ought", "our", "ours", "ourselves", "out", "over",
    "own", "same", "she", "should", "so", "some", "such", "than", "that", "the", "their",
    "theirs", "them", "themselves", "then", "there", "these", "they", "this", "those",
    "through", "to", "too", "under", "until", "up", "very", "was", "we", "were", "what",
    "when", "where", "which", "while", "who", "whom", "why", "with", "would", "you", "your",
    "yours", "yourself", "yourselves",
];

struct StopTable {
    /// All surface forms plus their stems, deduped and sorted by
    /// (first letter, length, bytes) so each bucket is a contiguous run.
    words: Vec<&'static str>,
    /// Half-open `words` range per (first letter, length) pair, indexed by
    /// `(letter - 'a') * (max_len + 1) + len`. Every entry starts with a
    /// lowercase letter, so one byte plus the length picks a slice of at
    /// most a handful of candidates.
    buckets: Vec<(u16, u16)>,
    /// Length of the longest entry — anything longer is never a stop word.
    max_len: usize,
    /// The same entries sorted lexicographically, for the retained
    /// pre-optimization lookup ([`is_stop_word_reference`]).
    sorted: Vec<&'static str>,
}

fn table() -> &'static StopTable {
    static TABLE: OnceLock<StopTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut v: Vec<&'static str> = Vec::with_capacity(STOP_WORDS.len() * 2);
        v.extend_from_slice(STOP_WORDS);
        for w in STOP_WORDS {
            let stemmed = porter::stem(w);
            if stemmed != *w {
                // Leak is bounded and one-time: a few dozen short strings.
                v.push(Box::leak(stemmed.into_owned().into_boxed_str()));
            }
        }
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        v.sort_unstable_by_key(|w| (w.as_bytes()[0], w.len(), *w));
        v.dedup();
        let max_len = v.iter().map(|w| w.len()).max().unwrap_or(0);
        let mut buckets = vec![(0u16, 0u16); 26 * (max_len + 1)];
        let mut i = 0;
        while i < v.len() {
            let key = bucket_index(v[i].as_bytes()[0], v[i].len(), max_len);
            let start = i;
            while i < v.len()
                && bucket_index(v[i].as_bytes()[0], v[i].len(), max_len) == key
            {
                i += 1;
            }
            buckets[key] = (start as u16, i as u16);
        }
        StopTable { words: v, buckets, max_len, sorted }
    })
}

#[inline]
fn bucket_index(first: u8, len: usize, max_len: usize) -> usize {
    (first - b'a') as usize * (max_len + 1) + len
}

/// Longest stop word (surface or stemmed) in the table.
pub fn max_stop_len() -> usize {
    table().max_len
}

/// Is `term` (surface or stemmed form) a stop word?
pub fn is_stop_word(term: &str) -> bool {
    let t = table();
    let b = term.as_bytes();
    if b.is_empty() || b.len() > t.max_len || !b[0].is_ascii_lowercase() {
        return false;
    }
    let (start, end) = t.buckets[bucket_index(b[0], b.len(), t.max_len)];
    t.words[start as usize..end as usize]
        .iter()
        .any(|w| w.as_bytes() == b)
}

/// The pre-optimization lookup, retained verbatim as the differential and
/// benchmark baseline: a plain binary search over the full sorted table,
/// with no length or first-letter rejects. Must agree with
/// [`is_stop_word`] on every input.
pub fn is_stop_word_reference(term: &str) -> bool {
    table().sorted.binary_search(&term).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_lookup_agrees() {
        let t = table();
        for w in t.words.iter().chain(
            ["computer", "index", "the", "thi", "954", "", "-80", "zzzz"].iter(),
        ) {
            assert_eq!(is_stop_word(w), is_stop_word_reference(w), "word {w:?}");
        }
    }

    #[test]
    fn classic_stop_words_match() {
        for w in ["the", "to", "and", "of", "a", "is"] {
            assert!(is_stop_word(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn stemmed_forms_match() {
        // Porter: this -> thi, because -> becaus, having -> have, etc.
        assert!(is_stop_word("thi"));
        assert!(is_stop_word("becaus"));
        assert!(is_stop_word("onc"));
        assert!(is_stop_word("veri"));
    }

    #[test]
    fn content_words_pass() {
        for w in ["computer", "index", "parallel", "gpu", "zebra", "954", "", "-80", "\u{e9}"] {
            assert!(!is_stop_word(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn table_is_sorted_and_deduped() {
        let t = table();
        for w in t.words.windows(2) {
            let ka = (w[0].as_bytes()[0], w[0].len(), w[0]);
            let kb = (w[1].as_bytes()[0], w[1].len(), w[1]);
            assert!(ka < kb, "table must be strictly sorted by bucket key: {w:?}");
        }
    }

    #[test]
    fn buckets_cover_whole_table() {
        // Every table entry must be reachable through its bucket, i.e. the
        // fast-path lookup agrees with a plain full-table binary search.
        let t = table();
        for w in &t.words {
            assert!(is_stop_word(w), "{w} lost by bucketed lookup");
        }
        assert!(t.max_len >= 10, "ourselves/themselves are 9-10 chars");
    }
}
