//! Stop-word removal (parser Step 4).
//!
//! The paper removes stop words *after* stemming (§III.C Step 3 then
//! Step 4), so the filter must recognize both surface forms ("this") and
//! their stems ("thi"). We build one sorted table containing the classic
//! stop list plus the Porter stem of every entry, and answer membership by
//! binary search.

use crate::porter;
use std::sync::OnceLock;

/// The classic SMART-derived stop list (surface forms).
pub const STOP_WORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "cannot", "could", "did", "do", "does", "doing", "down", "during", "each",
    "few", "for", "from", "further", "had", "has", "have", "having", "he", "her", "here",
    "hers", "herself", "him", "himself", "his", "how", "i", "if", "in", "into", "is", "it",
    "its", "itself", "me", "more", "most", "my", "myself", "no", "nor", "not", "of", "off",
    "on", "once", "only", "or", "other", "ought", "our", "ours", "ourselves", "out", "over",
    "own", "same", "she", "should", "so", "some", "such", "than", "that", "the", "their",
    "theirs", "them", "themselves", "then", "there", "these", "they", "this", "those",
    "through", "to", "too", "under", "until", "up", "very", "was", "we", "were", "what",
    "when", "where", "which", "while", "who", "whom", "why", "with", "would", "you", "your",
    "yours", "yourself", "yourselves",
];

fn table() -> &'static Vec<&'static str> {
    static TABLE: OnceLock<Vec<&'static str>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut v: Vec<&'static str> = Vec::with_capacity(STOP_WORDS.len() * 2);
        v.extend_from_slice(STOP_WORDS);
        for w in STOP_WORDS {
            let stemmed = porter::stem(w);
            if stemmed != *w {
                // Leak is bounded and one-time: a few dozen short strings.
                v.push(Box::leak(stemmed.into_owned().into_boxed_str()));
            }
        }
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// Is `term` (surface or stemmed form) a stop word?
pub fn is_stop_word(term: &str) -> bool {
    table().binary_search(&term).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_stop_words_match() {
        for w in ["the", "to", "and", "of", "a", "is"] {
            assert!(is_stop_word(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn stemmed_forms_match() {
        // Porter: this -> thi, because -> becaus, having -> have, etc.
        assert!(is_stop_word("thi"));
        assert!(is_stop_word("becaus"));
        assert!(is_stop_word("onc"));
        assert!(is_stop_word("veri"));
    }

    #[test]
    fn content_words_pass() {
        for w in ["computer", "index", "parallel", "gpu", "zebra", "954"] {
            assert!(!is_stop_word(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn table_is_sorted_and_deduped() {
        let t = table();
        for w in t.windows(2) {
            assert!(w[0] < w[1], "table must be strictly sorted: {w:?}");
        }
    }
}
