//! The parser pipeline stage (paper §III.C, Fig 3).
//!
//! Steps 2-5 of one parser thread: tokenization (with trie-index
//! classification), Porter stemming, stop-word removal, and the *regrouping*
//! step that rearranges terms so all terms of one trie collection are
//! contiguous with their trie-captured prefix removed. Step 1 (disk read,
//! decompression, local doc-ID assignment) lives in `ii-pipeline`, which
//! models its cost separately.
//!
//! Output layout matches what the GPU indexer consumes (Fig 6): each
//! group's terms are a contiguous byte buffer of length-prefixed strings
//! (one length byte, then the bytes), organized per document:
//! `(Doc_ID1, term1, term2, ...), (Doc_ID2, ...)` with *local* doc IDs.

use crate::html::strip_tags;
use crate::porter::stem;
use crate::stopwords::is_stop_word;
use crate::tokenize::tokens;
use ii_corpus::doc::{DocId, RawDocument};
use ii_dict::trie::{classify, TrieIndex};
use std::collections::HashMap;

/// Longest stored term suffix; the paper assumes one length byte suffices.
pub const MAX_TERM_BYTES: usize = 255;

/// The terms one document contributed to one trie group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DocSpan {
    /// Local document ID (within the parser batch).
    pub doc: DocId,
    /// Start byte of this doc's terms in the group's `term_bytes`.
    pub byte_start: u32,
    /// Length in bytes of this doc's term region.
    pub byte_len: u32,
    /// Number of terms in the region.
    pub n_terms: u32,
}

/// All parsed terms of one trie collection, prefix-stripped and packed in
/// the Fig 6 length-prefixed layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrieGroup {
    /// Which trie collection this is.
    pub trie_index: u32,
    /// Document regions, in local-doc-ID order.
    pub docs: Vec<DocSpan>,
    /// Length-prefixed term strings.
    pub term_bytes: Vec<u8>,
    /// In-document token positions, one per term in emission order (the
    /// "possibly other information" of §II; consumed by the positional
    /// index extension, ignored by the paper's non-positional indexers).
    pub positions: Vec<u32>,
}

impl TrieGroup {
    /// Iterate `(local doc id, term bytes)` pairs in stream order.
    pub fn iter_terms(&self) -> impl Iterator<Item = (DocId, &[u8])> + '_ {
        self.docs.iter().flat_map(move |span| {
            TermBytesIter {
                buf: &self.term_bytes
                    [span.byte_start as usize..(span.byte_start + span.byte_len) as usize],
            }
            .map(move |t| (span.doc, t))
        })
    }

    /// Total number of terms in the group.
    pub fn total_terms(&self) -> u64 {
        self.docs.iter().map(|d| d.n_terms as u64).sum()
    }

    /// Iterate `(local doc id, term bytes, in-doc token position)`.
    pub fn iter_terms_with_positions(
        &self,
    ) -> impl Iterator<Item = (DocId, &[u8], u32)> + '_ {
        self.iter_terms()
            .zip(self.positions.iter())
            .map(|((d, t), &p)| (d, t, p))
    }
}

/// Iterator over a length-prefixed term byte buffer.
pub struct TermBytesIter<'a> {
    buf: &'a [u8],
}

impl<'a> TermBytesIter<'a> {
    /// Iterate the terms of a raw Fig 6 buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        TermBytesIter { buf }
    }
}

impl<'a> Iterator for TermBytesIter<'a> {
    type Item = &'a [u8];
    fn next(&mut self) -> Option<&'a [u8]> {
        let (&len, rest) = self.buf.split_first()?;
        let len = len as usize;
        let (term, rest) = rest.split_at(len.min(rest.len()));
        self.buf = rest;
        Some(term)
    }
}

/// Counters the pipeline and the Table V workload report consume.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Tokens produced by tokenization (before stop-word removal).
    pub tokens: u64,
    /// Terms surviving stop-word removal (what indexers receive).
    pub terms_kept: u64,
    /// Bytes of term suffixes handed to indexers.
    pub chars: u64,
}

/// One parser's output for one batch (container file) of documents.
#[derive(Clone, Debug, Default)]
pub struct ParsedBatch {
    /// Index of the source container file.
    pub file_idx: usize,
    /// Number of documents parsed (local doc IDs are `0..num_docs`).
    pub num_docs: u32,
    /// `<doc ID, document location>` table built in Step 1.
    pub doc_table: Vec<(DocId, String)>,
    /// Non-empty trie groups, sorted by trie index.
    pub groups: Vec<TrieGroup>,
    /// Parse counters.
    pub stats: ParseStats,
}

impl ParsedBatch {
    /// Total uncompressed input size this batch represents (for throughput
    /// accounting).
    pub fn group(&self, trie_index: u32) -> Option<&TrieGroup> {
        self.groups
            .binary_search_by_key(&trie_index, |g| g.trie_index)
            .ok()
            .map(|i| &self.groups[i])
    }
}

struct GroupBuilder {
    docs: Vec<DocSpan>,
    term_bytes: Vec<u8>,
    positions: Vec<u32>,
}

impl GroupBuilder {
    fn push(&mut self, doc: DocId, term: &[u8], position: u32) {
        let start_new = match self.docs.last() {
            Some(span) => span.doc != doc,
            None => true,
        };
        if start_new {
            self.docs.push(DocSpan {
                doc,
                byte_start: self.term_bytes.len() as u32,
                byte_len: 0,
                n_terms: 0,
            });
        }
        let term = &term[..term.len().min(MAX_TERM_BYTES)];
        self.term_bytes.push(term.len() as u8);
        self.term_bytes.extend_from_slice(term);
        let span = self.docs.last_mut().unwrap();
        span.byte_len += 1 + term.len() as u32;
        span.n_terms += 1;
        self.positions.push(position);
    }
}

/// Run parser Steps 2-5 over one batch of documents.
///
/// `html` selects tag stripping (web-crawl collections). Local doc IDs are
/// assigned in input order starting at 0, matching Step 1's doc table.
pub fn parse_documents(docs: &[RawDocument], html: bool, file_idx: usize) -> ParsedBatch {
    let mut builders: HashMap<u32, GroupBuilder> = HashMap::new();
    let mut stats = ParseStats::default();
    let mut doc_table = Vec::with_capacity(docs.len());
    for (local, d) in docs.iter().enumerate() {
        let doc_id = DocId(local as u32);
        doc_table.push((doc_id, d.url.clone()));
        let text: std::borrow::Cow<'_, str> =
            if html { strip_tags(&d.body).into() } else { (&d.body).into() };
        let mut it = tokens(&text);
        let mut token_pos = 0u32;
        while let Some(tok) = it.next_token() {
            stats.tokens += 1;
            let position = token_pos;
            token_pos += 1;
            // Step 3: stemming.
            let stemmed = stem(tok);
            // Step 4: stop-word removal (post-stem, as in the paper).
            if is_stop_word(&stemmed) {
                continue;
            }
            // Step 5 classification: trie index + prefix strip. The paper
            // computes the index during tokenization as a byproduct; we
            // classify the stemmed form for exactness (stemming a 4-letter
            // word down to 3 letters would otherwise change its category).
            let (idx, suffix) = classify(&stemmed);
            stats.terms_kept += 1;
            stats.chars += suffix.len() as u64;
            builders
                .entry(idx.0)
                .or_insert_with(|| GroupBuilder {
                    docs: Vec::new(),
                    term_bytes: Vec::new(),
                    positions: Vec::new(),
                })
                .push(doc_id, suffix.as_bytes(), position);
        }
    }
    let mut groups: Vec<TrieGroup> = builders
        .into_iter()
        .map(|(trie_index, b)| TrieGroup {
            trie_index,
            docs: b.docs,
            term_bytes: b.term_bytes,
            positions: b.positions,
        })
        .collect();
    groups.sort_unstable_by_key(|g| g.trie_index);
    ParsedBatch { file_idx, num_docs: docs.len() as u32, doc_table, groups, stats }
}

/// Parse without regrouping: emit a single flat `(doc, term)` stream in
/// document order. This is the ablation baseline for the paper's claim that
/// regrouping yields ~15x faster serial indexing via cache locality; the
/// suffixes here keep their full term text (no trie prefix strip) because
/// without grouping there is no shared prefix to remove.
pub fn parse_documents_flat(
    docs: &[RawDocument],
    html: bool,
) -> (Vec<(DocId, TrieIndex, String)>, ParseStats) {
    let mut out = Vec::new();
    let mut stats = ParseStats::default();
    for (local, d) in docs.iter().enumerate() {
        let doc_id = DocId(local as u32);
        let text: std::borrow::Cow<'_, str> =
            if html { strip_tags(&d.body).into() } else { (&d.body).into() };
        let mut it = tokens(&text);
        while let Some(tok) = it.next_token() {
            stats.tokens += 1;
            let stemmed = stem(tok);
            if is_stop_word(&stemmed) {
                continue;
            }
            let (idx, suffix) = classify(&stemmed);
            stats.terms_kept += 1;
            stats.chars += suffix.len() as u64;
            out.push((doc_id, idx, suffix.to_string()));
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_dict::trie::trie_index;

    fn doc(body: &str) -> RawDocument {
        RawDocument { url: format!("u{}", body.len()), body: body.into() }
    }

    #[test]
    fn groups_are_sorted_and_contiguous() {
        let docs = vec![doc("apple banana apple cherry"), doc("banana date")];
        let b = parse_documents(&docs, false, 0);
        let idxs: Vec<u32> = b.groups.iter().map(|g| g.trie_index).collect();
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(idxs, sorted);
        assert_eq!(b.num_docs, 2);
        assert_eq!(b.doc_table.len(), 2);
    }

    #[test]
    fn stop_words_removed_and_stemming_applied() {
        let docs = vec![doc("the running dogs are hopping")];
        let b = parse_documents(&docs, false, 0);
        let all: Vec<(DocId, Vec<u8>)> = b
            .groups
            .iter()
            .flat_map(|g| g.iter_terms().map(|(d, t)| (d, t.to_vec())))
            .collect();
        // "the"/"are" removed; run(ning)->run, dogs->dog, hopping->hop.
        let mut terms: Vec<String> =
            all.iter().map(|(_, t)| String::from_utf8(t.clone()).unwrap()).collect();
        terms.sort();
        // Terms are prefix-stripped: run->(cat 'r', strip 1)->"un",
        // dog->"og", hop->"op".
        assert_eq!(terms, ["og", "op", "un"]);
    }

    #[test]
    fn prefix_stripping_matches_trie() {
        let docs = vec![doc("application")];
        let b = parse_documents(&docs, false, 0);
        assert_eq!(b.groups.len(), 1);
        let g = &b.groups[0];
        assert_eq!(g.trie_index, trie_index("applic").0); // stemmed form
        let (_, t) = g.iter_terms().next().unwrap();
        assert_eq!(t, b"lic"); // "applic" minus "app"
    }

    #[test]
    fn doc_spans_track_local_ids() {
        let docs = vec![doc("zebra zebra"), doc("zebra"), doc("quilt")];
        let b = parse_documents(&docs, false, 0);
        let zg = b.group(trie_index("zebra").0).unwrap();
        assert_eq!(zg.docs.len(), 2);
        assert_eq!(zg.docs[0].doc, DocId(0));
        assert_eq!(zg.docs[0].n_terms, 2);
        assert_eq!(zg.docs[1].doc, DocId(1));
        assert_eq!(zg.docs[1].n_terms, 1);
    }

    #[test]
    fn html_mode_strips_tags() {
        let docs = vec![RawDocument {
            url: "u".into(),
            body: "<p>zebra</p><script>junkword()</script>".into(),
        }];
        let with_html = parse_documents(&docs, true, 0);
        let terms: Vec<String> = with_html
            .groups
            .iter()
            .flat_map(|g| g.iter_terms().map(|(_, t)| String::from_utf8(t.to_vec()).unwrap()))
            .collect();
        assert_eq!(terms, ["ra"]); // "zebra" -> collection "zeb", stored suffix "ra"
    }

    #[test]
    fn stats_counted() {
        let docs = vec![doc("the cat sat on the mat")];
        let b = parse_documents(&docs, false, 0);
        assert_eq!(b.stats.tokens, 6);
        // "the" x2, "on" removed -> cat, sat, mat kept.
        assert_eq!(b.stats.terms_kept, 3);
        assert!(b.stats.chars > 0);
    }

    #[test]
    fn flat_parse_agrees_with_grouped() {
        let docs = vec![doc("alpha beta gamma alpha"), doc("delta beta")];
        let grouped = parse_documents(&docs, false, 0);
        let (flat, stats) = parse_documents_flat(&docs, false);
        assert_eq!(stats, grouped.stats);
        // Same multiset of (doc, trie, term).
        let mut a: Vec<(u32, u32, Vec<u8>)> = grouped
            .groups
            .iter()
            .flat_map(|g| g.iter_terms().map(move |(d, t)| (d.0, g.trie_index, t.to_vec())))
            .collect();
        let mut b: Vec<(u32, u32, Vec<u8>)> =
            flat.into_iter().map(|(d, i, t)| (d.0, i.0, t.into_bytes())).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn term_bytes_iter_roundtrip() {
        let mut buf = Vec::new();
        for t in [&b"ab"[..], b"", b"xyz"] {
            buf.push(t.len() as u8);
            buf.extend_from_slice(t);
        }
        let got: Vec<&[u8]> = TermBytesIter::new(&buf).collect();
        assert_eq!(got, vec![&b"ab"[..], b"", b"xyz"]);
    }

    #[test]
    fn very_long_tokens_truncated() {
        let long = "z".repeat(600);
        let docs = vec![doc(&long)];
        let b = parse_documents(&docs, false, 0);
        let (_, t) = b.groups[0].iter_terms().next().unwrap();
        assert!(t.len() <= MAX_TERM_BYTES);
    }

    #[test]
    fn empty_input() {
        let b = parse_documents(&[], false, 0);
        assert_eq!(b.num_docs, 0);
        assert!(b.groups.is_empty());
        assert_eq!(b.stats, ParseStats::default());
    }
}
