//! The parser pipeline stage (paper §III.C, Fig 3).
//!
//! Steps 2-5 of one parser thread: tokenization (with trie-index
//! classification), Porter stemming, stop-word removal, and the *regrouping*
//! step that rearranges terms so all terms of one trie collection are
//! contiguous with their trie-captured prefix removed. Step 1 (disk read,
//! decompression, local doc-ID assignment) lives in `ii-pipeline`, which
//! models its cost separately.
//!
//! Output layout matches what the GPU indexer consumes (Fig 6): each
//! group's terms are a contiguous byte buffer of length-prefixed strings
//! (one length byte, then the bytes), organized per document:
//! `(Doc_ID1, term1, term2, ...), (Doc_ID2, ...)` with *local* doc IDs.
//!
//! The hot path runs through a per-thread [`ParseScratch`]: regrouping uses
//! a flat direct-indexed table over the [`TRIE_ENTRIES`] slots (plus a
//! touched-slot list for sparse drain) instead of a per-batch `HashMap`,
//! and all buffers — group builders, stem scratch, the HTML text buffer,
//! the output `Vec`s of recycled batches — are reused across container
//! files so steady-state parsing performs no growth reallocation. Output is
//! byte-identical to the retained [`parse_documents_reference`] path; the
//! differential tests in `tests/parse_differential.rs` enforce this.

use crate::html::{strip_tags, strip_tags_into};
use crate::porter::{stem_into, StemBuf};
use crate::stopwords::is_stop_word;
use crate::tokenize::tokens;
use ii_corpus::doc::{DocId, RawDocument};
use ii_dict::trie::{classify, TrieIndex, TRIE_ENTRIES};
use std::collections::HashMap;

/// Longest stored term suffix; the paper assumes one length byte suffices.
pub const MAX_TERM_BYTES: usize = 255;

/// The terms one document contributed to one trie group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DocSpan {
    /// Local document ID (within the parser batch).
    pub doc: DocId,
    /// Start byte of this doc's terms in the group's `term_bytes`.
    pub byte_start: u32,
    /// Length in bytes of this doc's term region.
    pub byte_len: u32,
    /// Number of terms in the region.
    pub n_terms: u32,
}

/// All parsed terms of one trie collection, prefix-stripped and packed in
/// the Fig 6 length-prefixed layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrieGroup {
    /// Which trie collection this is.
    pub trie_index: u32,
    /// Document regions, in local-doc-ID order.
    pub docs: Vec<DocSpan>,
    /// Length-prefixed term strings.
    pub term_bytes: Vec<u8>,
    /// In-document token positions, one per term in emission order (the
    /// "possibly other information" of §II; consumed by the positional
    /// index extension, ignored by the paper's non-positional indexers).
    pub positions: Vec<u32>,
}

impl TrieGroup {
    /// Iterate `(local doc id, term bytes)` pairs in stream order.
    pub fn iter_terms(&self) -> impl Iterator<Item = (DocId, &[u8])> + '_ {
        self.docs.iter().flat_map(move |span| {
            TermBytesIter {
                buf: &self.term_bytes
                    [span.byte_start as usize..(span.byte_start + span.byte_len) as usize],
            }
            .map(move |t| (span.doc, t))
        })
    }

    /// Total number of terms in the group.
    pub fn total_terms(&self) -> u64 {
        self.docs.iter().map(|d| d.n_terms as u64).sum()
    }

    /// Iterate `(local doc id, term bytes, in-doc token position)`.
    pub fn iter_terms_with_positions(
        &self,
    ) -> impl Iterator<Item = (DocId, &[u8], u32)> + '_ {
        self.iter_terms()
            .zip(self.positions.iter())
            .map(|((d, t), &p)| (d, t, p))
    }
}

/// Iterator over a length-prefixed term byte buffer.
pub struct TermBytesIter<'a> {
    buf: &'a [u8],
}

impl<'a> TermBytesIter<'a> {
    /// Iterate the terms of a raw Fig 6 buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        TermBytesIter { buf }
    }
}

impl<'a> Iterator for TermBytesIter<'a> {
    type Item = &'a [u8];
    fn next(&mut self) -> Option<&'a [u8]> {
        let (&len, rest) = self.buf.split_first()?;
        let len = len as usize;
        let (term, rest) = rest.split_at(len.min(rest.len()));
        self.buf = rest;
        Some(term)
    }
}

/// Counters the pipeline and the Table V workload report consume.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Tokens produced by tokenization (before stop-word removal).
    pub tokens: u64,
    /// Terms surviving stop-word removal (what indexers receive).
    pub terms_kept: u64,
    /// Bytes of term suffixes handed to indexers.
    pub chars: u64,
}

/// One parser's output for one batch (container file) of documents.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedBatch {
    /// Index of the source container file.
    pub file_idx: usize,
    /// Number of documents parsed (local doc IDs are `0..num_docs`).
    pub num_docs: u32,
    /// `<doc ID, document location>` table built in Step 1.
    pub doc_table: Vec<(DocId, String)>,
    /// Non-empty trie groups, sorted by trie index.
    pub groups: Vec<TrieGroup>,
    /// Parse counters.
    pub stats: ParseStats,
}

impl ParsedBatch {
    /// Look up the group for one trie collection by its trie index
    /// (binary search over the sorted `groups`).
    pub fn group(&self, trie_index: u32) -> Option<&TrieGroup> {
        self.groups
            .binary_search_by_key(&trie_index, |g| g.trie_index)
            .ok()
            .map(|i| &self.groups[i])
    }

    /// Resident bytes of the batch payload — term bytes, doc spans,
    /// positions, and the doc-location table — the credit a parser must
    /// acquire from the memory governor before the batch enters the
    /// in-flight queues. Deterministic per file: identical across runs,
    /// parser counts, and budgets.
    pub fn mem_bytes(&self) -> u64 {
        let mut n = 0u64;
        for g in &self.groups {
            n += g.term_bytes.len() as u64;
            n += (g.docs.len() * std::mem::size_of::<DocSpan>()) as u64;
            n += (g.positions.len() * std::mem::size_of::<u32>()) as u64;
        }
        for (_, loc) in &self.doc_table {
            n += (loc.len() + std::mem::size_of::<(DocId, String)>()) as u64;
        }
        n
    }
}

#[derive(Default)]
struct GroupBuilder {
    docs: Vec<DocSpan>,
    term_bytes: Vec<u8>,
    positions: Vec<u32>,
}

impl GroupBuilder {
    fn push(&mut self, doc: DocId, term: &[u8], position: u32) {
        let start_new = match self.docs.last() {
            Some(span) => span.doc != doc,
            None => true,
        };
        if start_new {
            self.docs.push(DocSpan {
                doc,
                byte_start: self.term_bytes.len() as u32,
                byte_len: 0,
                n_terms: 0,
            });
        }
        let term = &term[..term.len().min(MAX_TERM_BYTES)];
        self.term_bytes.push(term.len() as u8);
        self.term_bytes.extend_from_slice(term);
        let span = self.docs.last_mut().unwrap();
        span.byte_len += 1 + term.len() as u32;
        span.n_terms += 1;
        self.positions.push(position);
    }
}

/// Sentinel in the slot table: trie index has no builder this batch.
const NO_BUILDER: u32 = u32::MAX;

/// Cap on recycled `TrieGroup` husks kept for reuse; bounds the capacity a
/// long-lived parser thread can pin.
const MAX_SPARE_GROUPS: usize = 32_768;

/// Cap on recycled whole-batch containers (`groups` lists / doc tables).
const MAX_SPARE_BATCHES: usize = 4;

/// Reusable parser working memory, owned by one parser thread and carried
/// across container files.
///
/// Regrouping state is a flat `slot` table mapping each of the
/// [`TRIE_ENTRIES`] trie indices to a live [`GroupBuilder`], with the
/// `touched` list recording which slots are in use so the drain after each
/// batch is sparse (proportional to distinct groups, not table size).
/// Builders are recycled behind an `active` watermark, and [`Self::recycle`]
/// harvests the `Vec`s of already-consumed [`ParsedBatch`]es so output
/// capacity circulates back instead of being reallocated per file.
pub struct ParseScratch {
    /// trie index -> index into `builders`, or [`NO_BUILDER`].
    slot: Box<[u32]>,
    /// Trie indices with a live builder this batch.
    touched: Vec<u32>,
    /// Builder pool; `builders[..active]` are live this batch, the rest are
    /// drained husks whose capacity is ready for reuse.
    builders: Vec<GroupBuilder>,
    active: usize,
    /// Stemmer copy-on-write scratch.
    stem_buf: StemBuf,
    /// HTML tag-stripping output buffer.
    text_buf: String,
    /// Recycled per-group buffers from consumed batches.
    spare_groups: Vec<TrieGroup>,
    /// Recycled `ParsedBatch::groups` containers.
    spare_group_lists: Vec<Vec<TrieGroup>>,
    /// Recycled `ParsedBatch::doc_table` containers.
    spare_doc_tables: Vec<Vec<(DocId, String)>>,
}

impl Default for ParseScratch {
    fn default() -> Self {
        ParseScratch {
            slot: vec![NO_BUILDER; TRIE_ENTRIES].into_boxed_slice(),
            touched: Vec::new(),
            builders: Vec::new(),
            active: 0,
            stem_buf: StemBuf::new(),
            text_buf: String::new(),
            spare_groups: Vec::new(),
            spare_group_lists: Vec::new(),
            spare_doc_tables: Vec::new(),
        }
    }
}

impl ParseScratch {
    /// Fresh scratch with an empty slot table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return a consumed batch's buffers to the scratch so the next parse
    /// reuses their capacity. Contents are discarded; only allocations are
    /// kept (bounded by [`MAX_SPARE_GROUPS`] / [`MAX_SPARE_BATCHES`]).
    pub fn recycle(&mut self, batch: ParsedBatch) {
        let ParsedBatch { mut doc_table, mut groups, .. } = batch;
        if self.spare_doc_tables.len() < MAX_SPARE_BATCHES {
            doc_table.clear();
            self.spare_doc_tables.push(doc_table);
        }
        for mut g in groups.drain(..) {
            if self.spare_groups.len() >= MAX_SPARE_GROUPS {
                break;
            }
            g.docs.clear();
            g.term_bytes.clear();
            g.positions.clear();
            self.spare_groups.push(g);
        }
        if self.spare_group_lists.len() < MAX_SPARE_BATCHES {
            groups.clear();
            self.spare_group_lists.push(groups);
        }
    }

    /// Recover from a previous parse that unwound mid-batch (the pipeline
    /// contains parser panics with `catch_unwind`, after which the thread's
    /// scratch would otherwise hold stale builders).
    fn reset_stale(&mut self) {
        self.slot.fill(NO_BUILDER);
        self.touched.clear();
        for b in &mut self.builders {
            b.docs.clear();
            b.term_bytes.clear();
            b.positions.clear();
        }
        self.active = 0;
    }

    /// Move the regrouped terms out of the builders into a sorted
    /// `groups` list, resetting the slot table sparsely.
    fn drain_groups(&mut self) -> Vec<TrieGroup> {
        self.touched.sort_unstable();
        let mut groups = self.spare_group_lists.pop().unwrap_or_default();
        groups.reserve(self.touched.len());
        for &ti in &self.touched {
            let bi = self.slot[ti as usize];
            self.slot[ti as usize] = NO_BUILDER;
            let b = &mut self.builders[bi as usize];
            // Swap the filled buffers out against a recycled husk so the
            // builder keeps (recycled) capacity for the next batch.
            let mut g = self.spare_groups.pop().unwrap_or_default();
            g.trie_index = ti;
            std::mem::swap(&mut g.docs, &mut b.docs);
            std::mem::swap(&mut g.term_bytes, &mut b.term_bytes);
            std::mem::swap(&mut g.positions, &mut b.positions);
            groups.push(g);
        }
        self.touched.clear();
        self.active = 0;
        groups
    }
}

/// Run parser Steps 2-5 over one batch of documents, reusing `scratch`.
///
/// `html` selects tag stripping (web-crawl collections). Local doc IDs are
/// assigned in input order starting at 0, matching Step 1's doc table.
/// Steady state allocates only when the batch outgrows every previously
/// recycled buffer.
pub fn parse_documents_into(
    scratch: &mut ParseScratch,
    docs: &[RawDocument],
    html: bool,
    file_idx: usize,
) -> ParsedBatch {
    if !scratch.touched.is_empty() || scratch.active != 0 {
        scratch.reset_stale();
    }
    let mut stats = ParseStats::default();
    let mut doc_table = scratch.spare_doc_tables.pop().unwrap_or_default();
    doc_table.reserve(docs.len());
    {
        let ParseScratch { slot, touched, builders, active, stem_buf, text_buf, .. } =
            scratch;
        for (local, d) in docs.iter().enumerate() {
            let doc_id = DocId(local as u32);
            doc_table.push((doc_id, d.url.clone()));
            let text: &str = if html {
                strip_tags_into(&d.body, text_buf);
                text_buf
            } else {
                &d.body
            };
            let mut it = tokens(text);
            let mut token_pos = 0u32;
            while let Some(tok) = it.next_token() {
                stats.tokens += 1;
                let position = token_pos;
                token_pos += 1;
                // Step 3: stemming (copy-on-write into the scratch buffer).
                let stemmed = stem_into(tok, stem_buf);
                // Step 4: stop-word removal (post-stem, as in the paper).
                if is_stop_word(stemmed) {
                    continue;
                }
                // Step 5 classification: trie index + prefix strip. The
                // paper computes the index during tokenization as a
                // byproduct; we classify the stemmed form for exactness
                // (stemming a 4-letter word down to 3 letters would
                // otherwise change its category).
                let (idx, suffix) = classify(stemmed);
                stats.terms_kept += 1;
                stats.chars += suffix.len() as u64;
                let mut bi = slot[idx.0 as usize];
                if bi == NO_BUILDER {
                    bi = *active as u32;
                    if *active == builders.len() {
                        builders.push(GroupBuilder::default());
                    }
                    slot[idx.0 as usize] = bi;
                    touched.push(idx.0);
                    *active += 1;
                }
                builders[bi as usize].push(doc_id, suffix.as_bytes(), position);
            }
        }
    }
    let groups = scratch.drain_groups();
    ParsedBatch { file_idx, num_docs: docs.len() as u32, doc_table, groups, stats }
}

/// Run parser Steps 2-5 over one batch of documents.
///
/// Convenience wrapper over [`parse_documents_into`] with a throwaway
/// [`ParseScratch`]; pipeline threads keep a persistent scratch instead.
pub fn parse_documents(docs: &[RawDocument], html: bool, file_idx: usize) -> ParsedBatch {
    let mut scratch = ParseScratch::new();
    parse_documents_into(&mut scratch, docs, html, file_idx)
}

/// The pre-optimization parser, retained as the differential-testing and
/// benchmark baseline: per-batch `HashMap` regrouping over the naive
/// tokenizer ([`crate::tokenize::tokens_reference`]), allocating stemmer
/// ([`crate::porter::reference::stem`]), full-table stop lookup
/// ([`crate::stopwords::is_stop_word_reference`]) and char-counting
/// classifier ([`ii_dict::trie::classify_reference`]) — every piece the
/// hot-path rewrite touched, frozen at its pre-rewrite form. Must produce
/// byte-identical [`ParsedBatch`]es to [`parse_documents_into`].
pub fn parse_documents_reference(
    docs: &[RawDocument],
    html: bool,
    file_idx: usize,
) -> ParsedBatch {
    use crate::porter::reference::stem;
    use crate::stopwords::is_stop_word_reference;
    use crate::tokenize::tokens_reference;
    use ii_dict::trie::classify_reference;
    let mut builders: HashMap<u32, GroupBuilder> = HashMap::new();
    let mut stats = ParseStats::default();
    let mut doc_table = Vec::with_capacity(docs.len());
    for (local, d) in docs.iter().enumerate() {
        let doc_id = DocId(local as u32);
        doc_table.push((doc_id, d.url.clone()));
        let text: std::borrow::Cow<'_, str> =
            if html { strip_tags(&d.body).into() } else { (&d.body).into() };
        let mut it = tokens_reference(&text);
        let mut token_pos = 0u32;
        while let Some(tok) = it.next_token() {
            stats.tokens += 1;
            let position = token_pos;
            token_pos += 1;
            let stemmed = stem(tok);
            if is_stop_word_reference(&stemmed) {
                continue;
            }
            let (idx, suffix) = classify_reference(&stemmed);
            stats.terms_kept += 1;
            stats.chars += suffix.len() as u64;
            builders
                .entry(idx.0)
                .or_default()
                .push(doc_id, suffix.as_bytes(), position);
        }
    }
    let mut groups: Vec<TrieGroup> = builders
        .into_iter()
        .map(|(trie_index, b)| TrieGroup {
            trie_index,
            docs: b.docs,
            term_bytes: b.term_bytes,
            positions: b.positions,
        })
        .collect();
    groups.sort_unstable_by_key(|g| g.trie_index);
    ParsedBatch { file_idx, num_docs: docs.len() as u32, doc_table, groups, stats }
}

/// Parse without regrouping: emit a single flat `(doc, term)` stream in
/// document order. This is the ablation baseline for the paper's claim that
/// regrouping yields ~15x faster serial indexing via cache locality; the
/// suffixes here keep their full term text (no trie prefix strip) because
/// without grouping there is no shared prefix to remove.
pub fn parse_documents_flat(
    docs: &[RawDocument],
    html: bool,
) -> (Vec<(DocId, TrieIndex, String)>, ParseStats) {
    let mut out = Vec::new();
    let mut stats = ParseStats::default();
    let mut stem_buf = StemBuf::new();
    for (local, d) in docs.iter().enumerate() {
        let doc_id = DocId(local as u32);
        let text: std::borrow::Cow<'_, str> =
            if html { strip_tags(&d.body).into() } else { (&d.body).into() };
        let mut it = tokens(&text);
        while let Some(tok) = it.next_token() {
            stats.tokens += 1;
            let stemmed = stem_into(tok, &mut stem_buf);
            if is_stop_word(stemmed) {
                continue;
            }
            let (idx, suffix) = classify(stemmed);
            stats.terms_kept += 1;
            stats.chars += suffix.len() as u64;
            out.push((doc_id, idx, suffix.to_string()));
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ii_dict::trie::trie_index;

    fn doc(body: &str) -> RawDocument {
        RawDocument { url: format!("u{}", body.len()), body: body.into() }
    }

    #[test]
    fn groups_are_sorted_and_contiguous() {
        let docs = vec![doc("apple banana apple cherry"), doc("banana date")];
        let b = parse_documents(&docs, false, 0);
        let idxs: Vec<u32> = b.groups.iter().map(|g| g.trie_index).collect();
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(idxs, sorted);
        assert_eq!(b.num_docs, 2);
        assert_eq!(b.doc_table.len(), 2);
    }

    #[test]
    fn stop_words_removed_and_stemming_applied() {
        let docs = vec![doc("the running dogs are hopping")];
        let b = parse_documents(&docs, false, 0);
        let all: Vec<(DocId, Vec<u8>)> = b
            .groups
            .iter()
            .flat_map(|g| g.iter_terms().map(|(d, t)| (d, t.to_vec())))
            .collect();
        // "the"/"are" removed; run(ning)->run, dogs->dog, hopping->hop.
        let mut terms: Vec<String> =
            all.iter().map(|(_, t)| String::from_utf8(t.clone()).unwrap()).collect();
        terms.sort();
        // Terms are prefix-stripped: run->(cat 'r', strip 1)->"un",
        // dog->"og", hop->"op".
        assert_eq!(terms, ["og", "op", "un"]);
    }

    #[test]
    fn prefix_stripping_matches_trie() {
        let docs = vec![doc("application")];
        let b = parse_documents(&docs, false, 0);
        assert_eq!(b.groups.len(), 1);
        let g = &b.groups[0];
        assert_eq!(g.trie_index, trie_index("applic").0); // stemmed form
        let (_, t) = g.iter_terms().next().unwrap();
        assert_eq!(t, b"lic"); // "applic" minus "app"
    }

    #[test]
    fn doc_spans_track_local_ids() {
        let docs = vec![doc("zebra zebra"), doc("zebra"), doc("quilt")];
        let b = parse_documents(&docs, false, 0);
        let zg = b.group(trie_index("zebra").0).unwrap();
        assert_eq!(zg.docs.len(), 2);
        assert_eq!(zg.docs[0].doc, DocId(0));
        assert_eq!(zg.docs[0].n_terms, 2);
        assert_eq!(zg.docs[1].doc, DocId(1));
        assert_eq!(zg.docs[1].n_terms, 1);
    }

    #[test]
    fn html_mode_strips_tags() {
        let docs = vec![RawDocument {
            url: "u".into(),
            body: "<p>zebra</p><script>junkword()</script>".into(),
        }];
        let with_html = parse_documents(&docs, true, 0);
        let terms: Vec<String> = with_html
            .groups
            .iter()
            .flat_map(|g| g.iter_terms().map(|(_, t)| String::from_utf8(t.to_vec()).unwrap()))
            .collect();
        assert_eq!(terms, ["ra"]); // "zebra" -> collection "zeb", stored suffix "ra"
    }

    #[test]
    fn stats_counted() {
        let docs = vec![doc("the cat sat on the mat")];
        let b = parse_documents(&docs, false, 0);
        assert_eq!(b.stats.tokens, 6);
        // "the" x2, "on" removed -> cat, sat, mat kept.
        assert_eq!(b.stats.terms_kept, 3);
        assert!(b.stats.chars > 0);
    }

    #[test]
    fn flat_parse_agrees_with_grouped() {
        let docs = vec![doc("alpha beta gamma alpha"), doc("delta beta")];
        let grouped = parse_documents(&docs, false, 0);
        let (flat, stats) = parse_documents_flat(&docs, false);
        assert_eq!(stats, grouped.stats);
        // Same multiset of (doc, trie, term).
        let mut a: Vec<(u32, u32, Vec<u8>)> = grouped
            .groups
            .iter()
            .flat_map(|g| g.iter_terms().map(move |(d, t)| (d.0, g.trie_index, t.to_vec())))
            .collect();
        let mut b: Vec<(u32, u32, Vec<u8>)> =
            flat.into_iter().map(|(d, i, t)| (d.0, i.0, t.into_bytes())).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn term_bytes_iter_roundtrip() {
        let mut buf = Vec::new();
        for t in [&b"ab"[..], b"", b"xyz"] {
            buf.push(t.len() as u8);
            buf.extend_from_slice(t);
        }
        let got: Vec<&[u8]> = TermBytesIter::new(&buf).collect();
        assert_eq!(got, vec![&b"ab"[..], b"", b"xyz"]);
    }

    #[test]
    fn very_long_tokens_truncated() {
        let long = "z".repeat(600);
        let docs = vec![doc(&long)];
        let b = parse_documents(&docs, false, 0);
        let (_, t) = b.groups[0].iter_terms().next().unwrap();
        assert!(t.len() <= MAX_TERM_BYTES);
    }

    #[test]
    fn empty_input() {
        let b = parse_documents(&[], false, 0);
        assert_eq!(b.num_docs, 0);
        assert!(b.groups.is_empty());
        assert_eq!(b.stats, ParseStats::default());
    }

    #[test]
    fn scratch_reuse_is_identical_and_recycles_capacity() {
        let batch_a = vec![doc("apple banana -42 Zebra"), doc("gamma delta gamma")];
        let batch_b = vec![doc("<b>other</b> words entirely"), doc("apple once more")];
        let mut scratch = ParseScratch::new();
        for (i, (docs, html)) in
            [(&batch_a, false), (&batch_b, true), (&batch_a, false)].iter().enumerate()
        {
            let fresh = parse_documents(docs, *html, i);
            let reused = parse_documents_into(&mut scratch, docs, *html, i);
            assert_eq!(fresh, reused, "batch {i} differs under scratch reuse");
            // Feed buffers back as the pipeline consumer does.
            scratch.recycle(reused);
        }
        assert!(!scratch.spare_groups.is_empty(), "recycle must harvest group buffers");
    }

    #[test]
    fn reference_parser_agrees() {
        let docs = vec![
            doc("The QUICK brown -80 fox caf\u{e9} jumped"),
            doc("running RUNNERS ran; stra\u{df}e"),
        ];
        assert_eq!(parse_documents(&docs, false, 7), parse_documents_reference(&docs, false, 7));
        assert_eq!(parse_documents(&docs, true, 7), parse_documents_reference(&docs, true, 7));
    }

    #[test]
    fn scratch_recovers_from_poisoned_state() {
        // Simulate a parse that unwound mid-batch leaving stale builders.
        let mut scratch = ParseScratch::new();
        let docs = vec![doc("alpha beta")];
        let _ = parse_documents_into(&mut scratch, &docs, false, 0);
        scratch.touched.push(3);
        scratch.slot[3] = 0;
        scratch.active = 1;
        scratch.builders[0].positions.push(9);
        let clean = parse_documents_into(&mut scratch, &docs, false, 1);
        let mut expect = parse_documents(&docs, false, 1);
        expect.file_idx = 1;
        assert_eq!(clean, expect);
    }
}
