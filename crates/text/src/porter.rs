//! Porter stemmer (M.F. Porter, "An algorithm for suffix stripping", 1980).
//!
//! This is a faithful port of Porter's original reference implementation
//! (no later "departures"): step 1a/1b/1c pluralization and -ed/-ing
//! handling, step 2 and 3 suffix mappings gated on measure m > 0, step 4
//! removals gated on m > 1, and step 5 final -e / -ll cleanup. The paper's
//! parser runs this as Step 3 on every token (§III.C).
//!
//! Only pure lowercase ASCII alphabetic words are stemmed; anything else
//! (numbers, hyphenated or accented tokens) passes through unchanged, which
//! matches how such tokens land in the dictionary's "special" collections.
//!
//! Two entry points share one core:
//!
//! * [`stem_into`] — the hot-path API. The stemmer copies the word into
//!   the caller's reusable [`StemBuf`] once (a short memcpy — far cheaper
//!   than branching on buffer-vs-input for every byte the rules inspect)
//!   and works contiguously. Words that only lose a suffix (or are
//!   untouched) are still returned as a borrowed prefix of the *input*, so
//!   downstream comparisons and stop-word probes read the original bytes.
//! * [`stem`] — the original `Cow` API, retained for callers that need an
//!   owned result; it delegates to the same core over a stack buffer.
//!
//! The pre-optimization `Vec`-per-word implementation is retained verbatim
//! in [`reference`] as the differential-testing and benchmark baseline.

// The step functions mirror Porter's reference C implementation
// case-for-case; collapsing matches or merging identical arms would
// obscure the correspondence that makes the port auditable.
#![allow(clippy::collapsible_match, clippy::if_same_then_else)]

use std::borrow::Cow;

/// Fixed scratch size covering every realistic word; longer words grow the
/// buffer once and keep the larger capacity.
pub const STEM_BUF_LEN: usize = 256;

/// Reusable scratch for [`stem_into`]. One per thread (or per
/// `ParseScratch`); steady-state stemming performs no allocation.
pub struct StemBuf {
    bytes: Vec<u8>,
}

impl Default for StemBuf {
    fn default() -> Self {
        StemBuf { bytes: vec![0; STEM_BUF_LEN] }
    }
}

impl StemBuf {
    /// A fresh buffer with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Stem a single token into caller-owned scratch. Tokens must already be
/// lowercased. Returns a borrow of `word` (often a shortened prefix) when
/// no rewrite rule edited any byte, and a borrow of `buf` otherwise —
/// never allocating on the hot path.
pub fn stem_into<'a>(word: &'a str, buf: &'a mut StemBuf) -> &'a str {
    let b = word.as_bytes();
    if b.len() <= 2 || !b.iter().all(u8::is_ascii_lowercase) {
        return word;
    }
    if buf.bytes.len() < b.len() {
        buf.bytes.resize(b.len(), 0);
    }
    let (k, dirty) = stem_run(b, &mut buf.bytes);
    if dirty {
        std::str::from_utf8(&buf.bytes[..=k]).expect("stemmer output is ascii")
    } else {
        &word[..=k]
    }
}

/// Stem a single token. Tokens must already be lowercased.
///
/// Compatibility wrapper over the in-place core: borrowed when unchanged,
/// owned otherwise.
pub fn stem(word: &str) -> Cow<'_, str> {
    let b = word.as_bytes();
    if b.len() <= 2 || !b.iter().all(u8::is_ascii_lowercase) {
        return Cow::Borrowed(word);
    }
    let mut stack = [0u8; STEM_BUF_LEN];
    let mut heap;
    let buf: &mut [u8] = if b.len() <= STEM_BUF_LEN {
        &mut stack
    } else {
        heap = vec![0u8; b.len()];
        &mut heap
    };
    let (k, dirty) = stem_run(b, buf);
    if !dirty {
        if k + 1 == b.len() {
            Cow::Borrowed(word)
        } else {
            Cow::Owned(word[..=k].to_string())
        }
    } else {
        Cow::Owned(
            String::from_utf8(buf[..=k].to_vec()).expect("stemmer output is ascii"),
        )
    }
}

/// Run all five steps over `src` (lowercase ASCII, len >= 3) using `buf`
/// (`buf.len() >= src.len()`) as working storage. `src` is copied into
/// `buf` once up front and the rules run contiguously — one short memcpy
/// beats a per-byte-access branch across the thousands of byte inspections
/// the rules perform. Returns the final end index `k` and whether any rule
/// *edited* a byte; while clean, `src[..=k]` equals `buf[..=k]`, so the
/// caller can hand out a borrow of the original input.
///
/// Porter's rules never grow a word past its original length (every
/// `setto` replaces a longer or equal suffix, and step 1b's restorations
/// re-add at most one of the >= 2 bytes just removed), so `src.len()`
/// bytes of scratch always suffice.
fn stem_run(src: &[u8], buf: &mut [u8]) -> (usize, bool) {
    let n = src.len();
    buf[..n].copy_from_slice(src);
    let mut s = Stemmer { b: &mut buf[..n], mutated: false, k: n - 1, j: 0 };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    (s.k, s.mutated)
}

/// Working state mirroring the reference C implementation: the live word
/// is `b[0..=k]`; `j` (signed, may be -1) is the stem end set by `ends`;
/// `mutated` records whether any rewrite rule edited a byte (pure
/// truncations leave `b[..=k]` equal to the input prefix).
struct Stemmer<'b> {
    b: &'b mut [u8],
    mutated: bool,
    k: usize,
    j: isize,
}

impl Stemmer<'_> {
    /// Byte `i` of the live word.
    #[inline]
    fn at(&self, i: usize) -> u8 {
        self.b[i]
    }

    /// Is `b[i]` a consonant? 'y' is a consonant at position 0 or after a
    /// vowel, and a vowel after a consonant.
    fn cons(&self, i: usize) -> bool {
        match self.at(i) {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => i == 0 || !self.cons(i - 1),
            _ => true,
        }
    }

    /// The measure m of the stem `b[0..=j]`: the number of VC sequences in
    /// its C?(VC)^m V? decomposition.
    fn m(&self) -> usize {
        let mut n = 0usize;
        let mut i: isize = 0;
        loop {
            if i > self.j {
                return n;
            }
            if !self.cons(i as usize) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i > self.j {
                    return n;
                }
                if self.cons(i as usize) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i > self.j {
                    return n;
                }
                if !self.cons(i as usize) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// Does the stem `b[0..=j]` contain a vowel?
    fn vowel_in_stem(&self) -> bool {
        (0..=self.j).any(|i| !self.cons(i as usize))
    }

    /// Is there a double consonant ending at `i`?
    fn doublec(&self, i: usize) -> bool {
        i >= 1 && self.at(i) == self.at(i - 1) && self.cons(i)
    }

    /// consonant-vowel-consonant ending at `i`, final consonant not w/x/y.
    /// Signals a short stem like "fil" whose trailing 'e' is restored.
    fn cvc(&self, i: isize) -> bool {
        if i < 2 {
            return false;
        }
        let i = i as usize;
        if !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.at(i), b'w' | b'x' | b'y')
    }

    /// Does `b[0..=k]` end with `s`? Sets `j` to the stem end on success.
    fn ends(&mut self, s: &[u8]) -> bool {
        let l = s.len();
        if l > self.k + 1 || self.b[self.k + 1 - l..=self.k] != *s {
            return false;
        }
        self.j = self.k as isize - l as isize;
        true
    }

    /// Replace `b[j+1..=k]` with `s` and fix up `k`.
    fn setto(&mut self, s: &[u8]) {
        self.mutated = true;
        let start = (self.j + 1) as usize;
        self.b[start..start + s.len()].copy_from_slice(s);
        self.k = (self.j + s.len() as isize) as usize;
    }

    /// Conditional replace: apply `setto` when m > 0.
    fn r(&mut self, s: &[u8]) {
        if self.m() > 0 {
            self.setto(s);
        }
    }

    /// Step 1a (plurals) and 1b (-eed / -ed / -ing with cleanup).
    fn step1ab(&mut self) {
        if self.at(self.k) == b's' {
            if self.ends(b"sses") {
                self.k -= 2;
            } else if self.ends(b"ies") {
                self.setto(b"i");
            } else if self.at(self.k - 1) != b's' {
                self.k -= 1;
            }
        }
        if self.ends(b"eed") {
            if self.m() > 0 {
                self.k -= 1;
            }
        } else if (self.ends(b"ed") || self.ends(b"ing")) && self.vowel_in_stem() {
            self.k = self.j as usize; // j >= 0 here: vowel_in_stem needs j >= 0
            if self.ends(b"at") {
                self.setto(b"ate");
            } else if self.ends(b"bl") {
                self.setto(b"ble");
            } else if self.ends(b"iz") {
                self.setto(b"ize");
            } else if self.doublec(self.k) {
                // hopp -> hop, but fall/hiss/fizz keep the double letter.
                self.k -= 1;
                if matches!(self.at(self.k), b'l' | b's' | b'z') {
                    self.k += 1;
                }
            } else if self.m() == 1 && self.cvc(self.k as isize) {
                self.j = self.k as isize;
                self.setto(b"e");
            }
        }
    }

    /// Step 1c: terminal y -> i when the stem contains a vowel.
    fn step1c(&mut self) {
        if self.at(self.k) == b'y' {
            self.j = self.k as isize - 1;
            if self.vowel_in_stem() {
                self.mutated = true;
                self.b[self.k] = b'i';
            }
        }
    }

    /// Step 2: double-suffix reductions, applied when m > 0.
    fn step2(&mut self) {
        if self.k < 1 {
            return;
        }
        match self.at(self.k - 1) {
            b'a' => {
                if self.ends(b"ational") {
                    self.r(b"ate");
                } else if self.ends(b"tional") {
                    self.r(b"tion");
                }
            }
            b'c' => {
                if self.ends(b"enci") {
                    self.r(b"ence");
                } else if self.ends(b"anci") {
                    self.r(b"ance");
                }
            }
            b'e' => {
                if self.ends(b"izer") {
                    self.r(b"ize");
                }
            }
            b'l' => {
                if self.ends(b"abli") {
                    self.r(b"able");
                } else if self.ends(b"alli") {
                    self.r(b"al");
                } else if self.ends(b"entli") {
                    self.r(b"ent");
                } else if self.ends(b"eli") {
                    self.r(b"e");
                } else if self.ends(b"ousli") {
                    self.r(b"ous");
                }
            }
            b'o' => {
                if self.ends(b"ization") {
                    self.r(b"ize");
                } else if self.ends(b"ation") {
                    self.r(b"ate");
                } else if self.ends(b"ator") {
                    self.r(b"ate");
                }
            }
            b's' => {
                if self.ends(b"alism") {
                    self.r(b"al");
                } else if self.ends(b"iveness") {
                    self.r(b"ive");
                } else if self.ends(b"fulness") {
                    self.r(b"ful");
                } else if self.ends(b"ousness") {
                    self.r(b"ous");
                }
            }
            b't' => {
                if self.ends(b"aliti") {
                    self.r(b"al");
                } else if self.ends(b"iviti") {
                    self.r(b"ive");
                } else if self.ends(b"biliti") {
                    self.r(b"ble");
                }
            }
            _ => {}
        }
    }

    /// Step 3: -icate/-ative/-alize/-iciti/-ical/-ful/-ness, when m > 0.
    fn step3(&mut self) {
        match self.at(self.k) {
            b'e' => {
                if self.ends(b"icate") {
                    self.r(b"ic");
                } else if self.ends(b"ative") {
                    self.r(b"");
                } else if self.ends(b"alize") {
                    self.r(b"al");
                }
            }
            b'i' => {
                if self.ends(b"iciti") {
                    self.r(b"ic");
                }
            }
            b'l' => {
                if self.ends(b"ical") {
                    self.r(b"ic");
                } else if self.ends(b"ful") {
                    self.r(b"");
                }
            }
            b's' => {
                if self.ends(b"ness") {
                    self.r(b"");
                }
            }
            _ => {}
        }
    }

    /// Step 4: drop residual suffixes when m > 1.
    fn step4(&mut self) {
        if self.k < 1 {
            return;
        }
        let matched = match self.at(self.k - 1) {
            b'a' => self.ends(b"al"),
            b'c' => self.ends(b"ance") || self.ends(b"ence"),
            b'e' => self.ends(b"er"),
            b'i' => self.ends(b"ic"),
            b'l' => self.ends(b"able") || self.ends(b"ible"),
            b'n' => {
                self.ends(b"ant")
                    || self.ends(b"ement")
                    || self.ends(b"ment")
                    || self.ends(b"ent")
            }
            b'o' => {
                (self.ends(b"ion")
                    && self.j >= 0
                    && matches!(self.at(self.j as usize), b's' | b't'))
                    || self.ends(b"ou")
            }
            b's' => self.ends(b"ism"),
            b't' => self.ends(b"ate") || self.ends(b"iti"),
            b'u' => self.ends(b"ous"),
            b'v' => self.ends(b"ive"),
            b'z' => self.ends(b"ize"),
            _ => false,
        };
        if matched && self.m() > 1 {
            self.k = self.j as usize;
        }
    }

    /// Step 5: remove final -e (m > 1, or m == 1 without cvc) and reduce a
    /// final double -l when m > 1. As in the reference implementation, `j`
    /// is set once at entry.
    fn step5(&mut self) {
        self.j = self.k as isize;
        if self.at(self.k) == b'e' {
            let a = self.m();
            if a > 1 || (a == 1 && !self.cvc(self.k as isize - 1)) {
                self.k -= 1;
            }
        }
        if self.at(self.k) == b'l' && self.doublec(self.k) && self.m() > 1 {
            self.k -= 1;
        }
    }
}

/// The pre-optimization stemmer, retained verbatim as the differential
/// baseline: it heap-copies every candidate word into a `Vec` before
/// applying the exact same rules. Tests assert [`stem_into`] agrees with
/// it byte-for-byte; the `parse_hotpath` benchmark measures against it.
pub mod reference {
    use std::borrow::Cow;

    /// Stem a single token (naive allocating implementation).
    pub fn stem(word: &str) -> Cow<'_, str> {
        let b = word.as_bytes();
        if b.len() <= 2 || !b.iter().all(u8::is_ascii_lowercase) {
            return Cow::Borrowed(word);
        }
        let mut s = Stemmer { b: b.to_vec(), k: b.len() - 1, j: 0 };
        s.step1ab();
        s.step1c();
        s.step2();
        s.step3();
        s.step4();
        s.step5();
        if s.k + 1 == b.len() && s.b[..=s.k] == *b {
            Cow::Borrowed(word)
        } else {
            Cow::Owned(
                String::from_utf8(s.b[..=s.k].to_vec()).expect("stemmer output is ascii"),
            )
        }
    }

    struct Stemmer {
        b: Vec<u8>,
        k: usize,
        j: isize,
    }

    impl Stemmer {
        fn cons(&self, i: usize) -> bool {
            match self.b[i] {
                b'a' | b'e' | b'i' | b'o' | b'u' => false,
                b'y' => i == 0 || !self.cons(i - 1),
                _ => true,
            }
        }

        fn m(&self) -> usize {
            let mut n = 0usize;
            let mut i: isize = 0;
            loop {
                if i > self.j {
                    return n;
                }
                if !self.cons(i as usize) {
                    break;
                }
                i += 1;
            }
            i += 1;
            loop {
                loop {
                    if i > self.j {
                        return n;
                    }
                    if self.cons(i as usize) {
                        break;
                    }
                    i += 1;
                }
                i += 1;
                n += 1;
                loop {
                    if i > self.j {
                        return n;
                    }
                    if !self.cons(i as usize) {
                        break;
                    }
                    i += 1;
                }
                i += 1;
            }
        }

        fn vowel_in_stem(&self) -> bool {
            (0..=self.j).any(|i| !self.cons(i as usize))
        }

        fn doublec(&self, i: usize) -> bool {
            i >= 1 && self.b[i] == self.b[i - 1] && self.cons(i)
        }

        fn cvc(&self, i: isize) -> bool {
            if i < 2 {
                return false;
            }
            let i = i as usize;
            if !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
                return false;
            }
            !matches!(self.b[i], b'w' | b'x' | b'y')
        }

        fn ends(&mut self, s: &[u8]) -> bool {
            let l = s.len();
            if l > self.k + 1 || &self.b[self.k + 1 - l..=self.k] != s {
                return false;
            }
            self.j = self.k as isize - l as isize;
            true
        }

        fn setto(&mut self, s: &[u8]) {
            self.b.truncate((self.j + 1) as usize);
            self.b.extend_from_slice(s);
            self.k = (self.j + s.len() as isize) as usize;
        }

        fn r(&mut self, s: &[u8]) {
            if self.m() > 0 {
                self.setto(s);
            }
        }

        fn step1ab(&mut self) {
            if self.b[self.k] == b's' {
                if self.ends(b"sses") {
                    self.k -= 2;
                } else if self.ends(b"ies") {
                    self.setto(b"i");
                } else if self.b[self.k - 1] != b's' {
                    self.k -= 1;
                }
            }
            if self.ends(b"eed") {
                if self.m() > 0 {
                    self.k -= 1;
                }
            } else if (self.ends(b"ed") || self.ends(b"ing")) && self.vowel_in_stem() {
                self.k = self.j as usize;
                if self.ends(b"at") {
                    self.setto(b"ate");
                } else if self.ends(b"bl") {
                    self.setto(b"ble");
                } else if self.ends(b"iz") {
                    self.setto(b"ize");
                } else if self.doublec(self.k) {
                    self.k -= 1;
                    if matches!(self.b[self.k], b'l' | b's' | b'z') {
                        self.k += 1;
                    }
                } else if self.m() == 1 && self.cvc(self.k as isize) {
                    self.j = self.k as isize;
                    self.setto(b"e");
                }
            }
            self.b.truncate(self.k + 1);
        }

        fn step1c(&mut self) {
            if self.b[self.k] == b'y' {
                self.j = self.k as isize - 1;
                if self.vowel_in_stem() {
                    self.b[self.k] = b'i';
                }
            }
        }

        fn step2(&mut self) {
            if self.k < 1 {
                return;
            }
            match self.b[self.k - 1] {
                b'a' => {
                    if self.ends(b"ational") {
                        self.r(b"ate");
                    } else if self.ends(b"tional") {
                        self.r(b"tion");
                    }
                }
                b'c' => {
                    if self.ends(b"enci") {
                        self.r(b"ence");
                    } else if self.ends(b"anci") {
                        self.r(b"ance");
                    }
                }
                b'e' => {
                    if self.ends(b"izer") {
                        self.r(b"ize");
                    }
                }
                b'l' => {
                    if self.ends(b"abli") {
                        self.r(b"able");
                    } else if self.ends(b"alli") {
                        self.r(b"al");
                    } else if self.ends(b"entli") {
                        self.r(b"ent");
                    } else if self.ends(b"eli") {
                        self.r(b"e");
                    } else if self.ends(b"ousli") {
                        self.r(b"ous");
                    }
                }
                b'o' => {
                    if self.ends(b"ization") {
                        self.r(b"ize");
                    } else if self.ends(b"ation") {
                        self.r(b"ate");
                    } else if self.ends(b"ator") {
                        self.r(b"ate");
                    }
                }
                b's' => {
                    if self.ends(b"alism") {
                        self.r(b"al");
                    } else if self.ends(b"iveness") {
                        self.r(b"ive");
                    } else if self.ends(b"fulness") {
                        self.r(b"ful");
                    } else if self.ends(b"ousness") {
                        self.r(b"ous");
                    }
                }
                b't' => {
                    if self.ends(b"aliti") {
                        self.r(b"al");
                    } else if self.ends(b"iviti") {
                        self.r(b"ive");
                    } else if self.ends(b"biliti") {
                        self.r(b"ble");
                    }
                }
                _ => {}
            }
        }

        fn step3(&mut self) {
            match self.b[self.k] {
                b'e' => {
                    if self.ends(b"icate") {
                        self.r(b"ic");
                    } else if self.ends(b"ative") {
                        self.r(b"");
                    } else if self.ends(b"alize") {
                        self.r(b"al");
                    }
                }
                b'i' => {
                    if self.ends(b"iciti") {
                        self.r(b"ic");
                    }
                }
                b'l' => {
                    if self.ends(b"ical") {
                        self.r(b"ic");
                    } else if self.ends(b"ful") {
                        self.r(b"");
                    }
                }
                b's' => {
                    if self.ends(b"ness") {
                        self.r(b"");
                    }
                }
                _ => {}
            }
        }

        fn step4(&mut self) {
            if self.k < 1 {
                return;
            }
            let matched = match self.b[self.k - 1] {
                b'a' => self.ends(b"al"),
                b'c' => self.ends(b"ance") || self.ends(b"ence"),
                b'e' => self.ends(b"er"),
                b'i' => self.ends(b"ic"),
                b'l' => self.ends(b"able") || self.ends(b"ible"),
                b'n' => {
                    self.ends(b"ant")
                        || self.ends(b"ement")
                        || self.ends(b"ment")
                        || self.ends(b"ent")
                }
                b'o' => {
                    (self.ends(b"ion")
                        && self.j >= 0
                        && matches!(self.b[self.j as usize], b's' | b't'))
                        || self.ends(b"ou")
                }
                b's' => self.ends(b"ism"),
                b't' => self.ends(b"ate") || self.ends(b"iti"),
                b'u' => self.ends(b"ous"),
                b'v' => self.ends(b"ive"),
                b'z' => self.ends(b"ize"),
                _ => false,
            };
            if matched && self.m() > 1 {
                self.k = self.j as usize;
                self.b.truncate(self.k + 1);
            }
        }

        fn step5(&mut self) {
            self.j = self.k as isize;
            if self.b[self.k] == b'e' {
                let a = self.m();
                if a > 1 || (a == 1 && !self.cvc(self.k as isize - 1)) {
                    self.k -= 1;
                }
            }
            if self.b[self.k] == b'l' && self.doublec(self.k) && self.m() > 1 {
                self.k -= 1;
            }
            self.b.truncate(self.k + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(w: &str) -> String {
        stem(w).into_owned()
    }

    #[test]
    fn step1a_plurals() {
        assert_eq!(s("caresses"), "caress");
        assert_eq!(s("ponies"), "poni");
        assert_eq!(s("ties"), "ti");
        assert_eq!(s("caress"), "caress");
        assert_eq!(s("cats"), "cat");
    }

    #[test]
    fn step1b_ed_ing() {
        assert_eq!(s("feed"), "feed");
        assert_eq!(s("agreed"), "agre");
        assert_eq!(s("plastered"), "plaster");
        assert_eq!(s("bled"), "bled");
        assert_eq!(s("motoring"), "motor");
        assert_eq!(s("sing"), "sing");
        assert_eq!(s("conflated"), "conflat");
        assert_eq!(s("troubled"), "troubl");
        assert_eq!(s("sized"), "size");
        assert_eq!(s("hopping"), "hop");
        assert_eq!(s("tanned"), "tan");
        assert_eq!(s("falling"), "fall");
        assert_eq!(s("hissing"), "hiss");
        assert_eq!(s("fizzed"), "fizz");
        assert_eq!(s("failing"), "fail");
        assert_eq!(s("filing"), "file");
    }

    #[test]
    fn step1c_y_to_i() {
        assert_eq!(s("happy"), "happi");
        assert_eq!(s("sky"), "sky");
    }

    #[test]
    fn step2_mappings() {
        assert_eq!(s("relational"), "relat");
        assert_eq!(s("conditional"), "condit");
        assert_eq!(s("rational"), "ration");
        assert_eq!(s("valenci"), "valenc");
        assert_eq!(s("hesitanci"), "hesit");
        assert_eq!(s("digitizer"), "digit");
        assert_eq!(s("conformabli"), "conform");
        assert_eq!(s("radicalli"), "radic");
        assert_eq!(s("differentli"), "differ");
        assert_eq!(s("vileli"), "vile");
        assert_eq!(s("analogousli"), "analog");
        assert_eq!(s("vietnamization"), "vietnam");
        assert_eq!(s("predication"), "predic");
        assert_eq!(s("operator"), "oper");
        assert_eq!(s("feudalism"), "feudal");
        assert_eq!(s("decisiveness"), "decis");
        assert_eq!(s("hopefulness"), "hope");
        assert_eq!(s("callousness"), "callous");
        assert_eq!(s("formaliti"), "formal");
        assert_eq!(s("sensitiviti"), "sensit");
        assert_eq!(s("sensibiliti"), "sensibl");
    }

    #[test]
    fn step3_mappings() {
        assert_eq!(s("triplicate"), "triplic");
        assert_eq!(s("formative"), "form");
        assert_eq!(s("formalize"), "formal");
        assert_eq!(s("electriciti"), "electr");
        assert_eq!(s("electrical"), "electr");
        assert_eq!(s("hopeful"), "hope");
        assert_eq!(s("goodness"), "good");
    }

    #[test]
    fn step4_removals() {
        assert_eq!(s("revival"), "reviv");
        assert_eq!(s("allowance"), "allow");
        assert_eq!(s("inference"), "infer");
        assert_eq!(s("airliner"), "airlin");
        assert_eq!(s("gyroscopic"), "gyroscop");
        assert_eq!(s("adjustable"), "adjust");
        assert_eq!(s("defensible"), "defens");
        assert_eq!(s("irritant"), "irrit");
        assert_eq!(s("replacement"), "replac");
        assert_eq!(s("adjustment"), "adjust");
        assert_eq!(s("dependent"), "depend");
        assert_eq!(s("adoption"), "adopt");
        assert_eq!(s("communism"), "commun");
        assert_eq!(s("activate"), "activ");
        assert_eq!(s("angulariti"), "angular");
        assert_eq!(s("homologous"), "homolog");
        assert_eq!(s("effective"), "effect");
        assert_eq!(s("bowdlerize"), "bowdler");
    }

    #[test]
    fn step5_final_e_and_ll() {
        assert_eq!(s("probate"), "probat");
        assert_eq!(s("rate"), "rate");
        assert_eq!(s("cease"), "ceas");
        assert_eq!(s("controll"), "control");
        assert_eq!(s("roll"), "roll");
    }

    #[test]
    fn the_paper_family() {
        // The paper's own motivating example: parallelize, parallelization
        // and parallelism share the stem of parallel.
        let target = s("parallel");
        assert_eq!(s("parallelize"), target);
        assert_eq!(s("parallelism"), target);
        assert_eq!(s("parallelization"), target);
    }

    #[test]
    fn short_words_untouched() {
        for w in ["a", "is", "be", "on", "i", ""] {
            assert_eq!(s(w), w);
        }
    }

    #[test]
    fn non_alpha_passthrough() {
        for w in ["954", "3d", "-80", "zo\u{e9}", "hello-world"] {
            assert_eq!(s(w), w);
        }
    }

    #[test]
    fn no_panic_on_tricky_short_words() {
        // Words whose stems are empty or single letters exercise the j = -1
        // paths of the reference algorithm.
        for w in ["ies", "ing", "eed", "sss", "yyy", "ied", "oed", "ess"] {
            let _ = s(w);
        }
        assert_eq!(s("ies"), "i");
    }

    #[test]
    fn prefix_preserved_for_long_words() {
        // The dictionary's trie relies on stemming not altering the first
        // three characters of words that remain >= 3 chars long.
        for w in ["application", "happiness", "generalization", "relational"] {
            let st = s(w);
            let n = st.len().min(3).min(w.len());
            assert_eq!(&st[..n], &w[..n]);
        }
    }

    #[test]
    fn stem_into_agrees_with_reference() {
        let mut buf = StemBuf::new();
        for w in [
            "caresses", "ponies", "ties", "cats", "feed", "agreed", "hopping", "happy",
            "relational", "vietnamization", "parallelize", "sky", "the", "zo\u{e9}",
            "-80", "a", "", "controll", "sensibiliti", "filing",
        ] {
            assert_eq!(stem_into(w, &mut buf), reference::stem(w).as_ref(), "word {w:?}");
            assert_eq!(stem(w), reference::stem(w), "cow api, word {w:?}");
        }
    }

    #[test]
    fn stem_into_truncation_borrows_from_input() {
        // Suffix-only stemming must return a prefix of the input without
        // touching the buffer (the zero-copy fast path).
        let mut buf = StemBuf::new();
        let w = "plastered";
        let out = stem_into(w, &mut buf);
        assert_eq!(out, "plaster");
        assert_eq!(out.as_ptr(), w.as_ptr(), "truncation must borrow the input");
        // Unchanged words borrow wholesale.
        let w = "zebra";
        let out = stem_into(w, &mut buf);
        assert_eq!(out.as_ptr(), w.as_ptr());
    }

    #[test]
    fn stem_into_handles_words_longer_than_default_buffer() {
        let mut buf = StemBuf::new();
        let long = "z".repeat(STEM_BUF_LEN * 2);
        assert_eq!(stem_into(&long, &mut buf), reference::stem(&long).as_ref());
        let long_ing = format!("{}ing", "ab".repeat(STEM_BUF_LEN));
        assert_eq!(stem_into(&long_ing, &mut buf), reference::stem(&long_ing).as_ref());
    }
}
