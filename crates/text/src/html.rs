//! HTML tag stripping.
//!
//! Web-crawl collections (ClueWeb09-like, Congress-like) store HTML pages;
//! the paper's Wikipedia collection had tags removed upstream. The parser
//! strips tags before tokenization for HTML collections: a small state
//! machine that drops `<...>` markup, skips `<script>`/`<style>` content
//! entirely, and decodes the handful of entities the generator emits.
//!
//! The hot path uses [`strip_tags_into`] with a caller-owned output buffer
//! so per-document stripping performs no allocation in steady state; all
//! comparisons are ASCII case-insensitive over bytes, never building
//! lowercased copies.

/// Strip HTML markup from `input`, returning the visible text. Tag
/// boundaries are replaced by single spaces so adjacent words don't fuse.
pub fn strip_tags(input: &str) -> String {
    let mut out = String::new();
    strip_tags_into(input, &mut out);
    out
}

/// First position in `haystack` where the ASCII `needle` matches
/// case-insensitively. A pure-ASCII match in valid UTF-8 always lands on a
/// char boundary, so the returned index is safe to slice at.
fn find_ascii_ci(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.len() > haystack.len() {
        return None;
    }
    haystack
        .windows(needle.len())
        .position(|w| w.eq_ignore_ascii_case(needle))
}

/// [`strip_tags`] into a reusable buffer: `out` is cleared, then filled
/// with the visible text. Capacity is retained across calls.
pub fn strip_tags_into(input: &str, out: &mut String) {
    out.clear();
    out.reserve(input.len());
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            // Find the end of the tag.
            let tag_start = i + 1;
            let mut j = tag_start;
            while j < bytes.len() && bytes[j] != b'>' {
                j += 1;
            }
            let tag = input[tag_start..j.min(input.len())].trim();
            // Leading ASCII-alphanumeric run = the element name.
            let name_len = tag
                .bytes()
                .take_while(u8::is_ascii_alphanumeric)
                .count();
            let name = &tag.as_bytes()[..name_len];
            i = (j + 1).min(bytes.len());
            out.push(' ');
            // Skip raw-content elements wholesale.
            if name.eq_ignore_ascii_case(b"script") || name.eq_ignore_ascii_case(b"style") {
                let close = if name.eq_ignore_ascii_case(b"script") {
                    b"</script".as_slice()
                } else {
                    b"</style".as_slice()
                };
                if let Some(pos) = find_ascii_ci(&bytes[i..], close) {
                    let after = i + pos;
                    // Move past the closing '>'.
                    let mut k = after;
                    while k < bytes.len() && bytes[k] != b'>' {
                        k += 1;
                    }
                    i = (k + 1).min(bytes.len());
                } else {
                    i = bytes.len();
                }
            }
        } else if bytes[i] == b'&' {
            // Decode a small entity set; unknown entities pass through.
            let rest = &input[i..];
            let mut decoded = false;
            for (ent, ch) in [
                ("&amp;", '&'),
                ("&lt;", '<'),
                ("&gt;", '>'),
                ("&quot;", '"'),
                ("&#39;", '\''),
                ("&nbsp;", ' '),
            ] {
                if rest.starts_with(ent) {
                    out.push(ch);
                    i += ent.len();
                    decoded = true;
                    break;
                }
            }
            if !decoded {
                out.push('&');
                i += 1;
            }
        } else {
            // Copy one UTF-8 scalar.
            let c = input[i..].chars().next().unwrap();
            out.push(c);
            i += c.len_utf8();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_unchanged() {
        assert_eq!(strip_tags("hello world"), "hello world");
    }

    #[test]
    fn tags_removed_words_separated() {
        assert_eq!(strip_tags("<p>one</p><p>two</p>").split_whitespace().collect::<Vec<_>>(),
                   ["one", "two"]);
    }

    #[test]
    fn attributes_do_not_leak() {
        let s = strip_tags("<a href=\"http://evil.example/x?q=1\">link</a>");
        assert!(!s.contains("evil"), "attribute text leaked: {s}");
        assert!(s.contains("link"));
    }

    #[test]
    fn script_and_style_content_dropped() {
        let s = strip_tags("a<script>var x = 1;</script>b<style>.c{color:red}</style>c");
        let words: Vec<_> = s.split_whitespace().collect();
        assert_eq!(words, ["a", "b", "c"]);
        // Case-insensitive closing tag.
        let s = strip_tags("x<SCRIPT>q()</ScRiPt>y");
        assert_eq!(s.split_whitespace().collect::<Vec<_>>(), ["x", "y"]);
    }

    #[test]
    fn entities_decoded() {
        assert_eq!(strip_tags("a&amp;b &lt;c&gt; &quot;d&quot;"), "a&b <c> \"d\"");
        assert_eq!(strip_tags("&unknown; stays"), "&unknown; stays");
    }

    #[test]
    fn unterminated_tag_is_dropped() {
        assert_eq!(strip_tags("text <unclosed everything after").trim(), "text");
    }

    #[test]
    fn unterminated_script_is_dropped() {
        assert_eq!(strip_tags("before<script>never closed").trim(), "before");
    }

    #[test]
    fn full_page() {
        let page = "<html><head><title>T</title></head><body><p>hello</p>\
                    <a href=\"u\">world</a></body></html>";
        let words: Vec<_> = strip_tags(page).split_whitespace().map(String::from).collect();
        assert_eq!(words, ["T", "hello", "world"]);
    }

    #[test]
    fn into_buffer_clears_and_reuses() {
        let mut buf = String::from("stale");
        strip_tags_into("<b>fresh</b>", &mut buf);
        assert_eq!(buf.split_whitespace().collect::<Vec<_>>(), ["fresh"]);
        let cap = buf.capacity();
        strip_tags_into("tiny", &mut buf);
        assert_eq!(buf, "tiny");
        assert!(buf.capacity() >= cap, "capacity must be retained");
    }
}
