//! HTML tag stripping.
//!
//! Web-crawl collections (ClueWeb09-like, Congress-like) store HTML pages;
//! the paper's Wikipedia collection had tags removed upstream. The parser
//! strips tags before tokenization for HTML collections: a small state
//! machine that drops `<...>` markup, skips `<script>`/`<style>` content
//! entirely, and decodes the handful of entities the generator emits.

/// Strip HTML markup from `input`, returning the visible text. Tag
/// boundaries are replaced by single spaces so adjacent words don't fuse.
pub fn strip_tags(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            // Find the end of the tag.
            let tag_start = i + 1;
            let mut j = tag_start;
            while j < bytes.len() && bytes[j] != b'>' {
                j += 1;
            }
            let tag = input[tag_start..j.min(input.len())].trim();
            let name: String = tag
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .flat_map(|c| c.to_lowercase())
                .collect();
            i = (j + 1).min(bytes.len());
            out.push(' ');
            // Skip raw-content elements wholesale.
            if name == "script" || name == "style" {
                let close = format!("</{name}");
                if let Some(pos) = input[i..].to_ascii_lowercase().find(&close) {
                    let after = i + pos;
                    // Move past the closing '>'.
                    let mut k = after;
                    while k < bytes.len() && bytes[k] != b'>' {
                        k += 1;
                    }
                    i = (k + 1).min(bytes.len());
                } else {
                    i = bytes.len();
                }
            }
        } else if bytes[i] == b'&' {
            // Decode a small entity set; unknown entities pass through.
            let rest = &input[i..];
            let mut decoded = false;
            for (ent, ch) in [
                ("&amp;", '&'),
                ("&lt;", '<'),
                ("&gt;", '>'),
                ("&quot;", '"'),
                ("&#39;", '\''),
                ("&nbsp;", ' '),
            ] {
                if rest.starts_with(ent) {
                    out.push(ch);
                    i += ent.len();
                    decoded = true;
                    break;
                }
            }
            if !decoded {
                out.push('&');
                i += 1;
            }
        } else {
            // Copy one UTF-8 scalar.
            let c = input[i..].chars().next().unwrap();
            out.push(c);
            i += c.len_utf8();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_unchanged() {
        assert_eq!(strip_tags("hello world"), "hello world");
    }

    #[test]
    fn tags_removed_words_separated() {
        assert_eq!(strip_tags("<p>one</p><p>two</p>").split_whitespace().collect::<Vec<_>>(),
                   ["one", "two"]);
    }

    #[test]
    fn attributes_do_not_leak() {
        let s = strip_tags("<a href=\"http://evil.example/x?q=1\">link</a>");
        assert!(!s.contains("evil"), "attribute text leaked: {s}");
        assert!(s.contains("link"));
    }

    #[test]
    fn script_and_style_content_dropped() {
        let s = strip_tags("a<script>var x = 1;</script>b<style>.c{color:red}</style>c");
        let words: Vec<_> = s.split_whitespace().collect();
        assert_eq!(words, ["a", "b", "c"]);
        // Case-insensitive closing tag.
        let s = strip_tags("x<SCRIPT>q()</ScRiPt>y");
        assert_eq!(s.split_whitespace().collect::<Vec<_>>(), ["x", "y"]);
    }

    #[test]
    fn entities_decoded() {
        assert_eq!(strip_tags("a&amp;b &lt;c&gt; &quot;d&quot;"), "a&b <c> \"d\"");
        assert_eq!(strip_tags("&unknown; stays"), "&unknown; stays");
    }

    #[test]
    fn unterminated_tag_is_dropped() {
        assert_eq!(strip_tags("text <unclosed everything after").trim(), "text");
    }

    #[test]
    fn unterminated_script_is_dropped() {
        assert_eq!(strip_tags("before<script>never closed").trim(), "before");
    }

    #[test]
    fn full_page() {
        let page = "<html><head><title>T</title></head><body><p>hello</p>\
                    <a href=\"u\">world</a></body></html>";
        let words: Vec<_> = strip_tags(page).split_whitespace().map(String::from).collect();
        assert_eq!(words, ["T", "hello", "world"]);
    }
}
