//! Tokenization (parser Step 2).
//!
//! Splits text into lowercase tokens by scanning character by character —
//! the same single pass the paper uses to compute each term's trie index as
//! a byproduct. A token is a maximal run of Unicode alphanumeric characters;
//! a leading '-' is kept when directly followed by a digit so terms like
//! "-80" (Table I's special-category example) survive.

/// Iterator over the tokens of a text.
pub struct Tokens<'a> {
    rest: &'a str,
    /// Scratch buffer reused across tokens to avoid per-token allocation
    /// when no lowercasing is needed.
    buf: String,
}

/// Tokenize `text`. Tokens are lowercased. Returned borrows are not
/// possible in general (lowercasing), so the iterator yields `String`s
/// drawn from an internal buffer via `next_token`.
pub fn tokens(text: &str) -> Tokens<'_> {
    Tokens { rest: text, buf: String::with_capacity(32) }
}

impl<'a> Tokens<'a> {
    /// Advance to the next token, returning it as a borrowed `&str` valid
    /// until the next call. Using a lending-iterator shape keeps the hot
    /// parsing loop allocation-free.
    pub fn next_token(&mut self) -> Option<&str> {
        let bytes = self.rest.as_bytes();
        let mut i = 0usize;
        // Skip separators; allow '-' to start a token only before a digit.
        loop {
            if i >= bytes.len() {
                self.rest = "";
                return None;
            }
            let c = self.rest[i..].chars().next().unwrap();
            if c.is_alphanumeric() {
                break;
            }
            if c == '-' {
                let mut it = self.rest[i..].chars();
                it.next();
                if matches!(it.next(), Some(d) if d.is_ascii_digit()) {
                    break;
                }
            }
            i += c.len_utf8();
        }
        let start = i;
        // Consume the leading '-' if present.
        if bytes[i] == b'-' {
            i += 1;
        }
        while i < bytes.len() {
            let c = self.rest[i..].chars().next().unwrap();
            if !c.is_alphanumeric() {
                break;
            }
            i += c.len_utf8();
        }
        let raw = &self.rest[start..i];
        self.rest = &self.rest[i..];
        self.buf.clear();
        if raw.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-') {
            self.buf.push_str(raw);
        } else {
            for ch in raw.chars() {
                for l in ch.to_lowercase() {
                    self.buf.push(l);
                }
            }
        }
        Some(&self.buf)
    }

    /// Collect the remaining tokens into owned strings (test convenience).
    pub fn collect_all(mut self) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(t) = self.next_token() {
            out.push(t.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokens(s).collect_all()
    }

    #[test]
    fn simple_words() {
        assert_eq!(toks("the quick brown fox"), ["the", "quick", "brown", "fox"]);
    }

    #[test]
    fn punctuation_and_newlines_split() {
        assert_eq!(toks("one, two.\nthree!four"), ["one", "two", "three", "four"]);
    }

    #[test]
    fn lowercasing() {
        assert_eq!(toks("Hello WORLD MiXeD"), ["hello", "world", "mixed"]);
    }

    #[test]
    fn numbers_kept() {
        assert_eq!(toks("in 1999 and 01 things"), ["in", "1999", "and", "01", "things"]);
    }

    #[test]
    fn negative_numbers_keep_minus() {
        assert_eq!(toks("at -80 degrees"), ["at", "-80", "degrees"]);
        // '-' not followed by a digit is a separator.
        assert_eq!(toks("well-known fact"), ["well", "known", "fact"]);
        // trailing dash
        assert_eq!(toks("dash- end -"), ["dash", "end"]);
    }

    #[test]
    fn alphanumeric_mix_is_one_token() {
        assert_eq!(toks("3d model x86"), ["3d", "model", "x86"]);
    }

    #[test]
    fn unicode_letters() {
        assert_eq!(toks("caf\u{e9} Z\u{0416}ivot"), ["caf\u{e9}", "z\u{436}ivot"]);
    }

    #[test]
    fn empty_and_separator_only() {
        assert_eq!(toks(""), Vec::<String>::new());
        assert_eq!(toks("  ,.;:!  \n\t"), Vec::<String>::new());
    }

    #[test]
    fn lending_iteration_reuses_buffer() {
        let mut it = tokens("aaa bbb");
        assert_eq!(it.next_token(), Some("aaa"));
        assert_eq!(it.next_token(), Some("bbb"));
        assert_eq!(it.next_token(), None);
        assert_eq!(it.next_token(), None);
    }
}
