//! Tokenization (parser Step 2).
//!
//! Splits text into lowercase tokens in a single pass — the same pass the
//! paper uses to compute each term's trie index as a byproduct. A token is
//! a maximal run of Unicode alphanumeric characters; a leading '-' is kept
//! when directly followed by a digit so terms like "-80" (Table I's
//! special-category example) survive.
//!
//! The scanner is driven by a 256-entry byte-class table: pure-ASCII text
//! (the overwhelming majority of the paper's corpora) never decodes a
//! `char`, and tokens that are already lowercase are returned as borrowed
//! slices of the input with no copy at all. Bytes >= 0x80 fall back to
//! `char`-wise scanning for exact Unicode-alphanumeric semantics, so output
//! is byte-identical to the retained [`ReferenceTokens`] scanner.

/// Byte is a separator (also the class of '-' when not before a digit).
const CLASS_SEP: u8 = 0;
/// ASCII byte that is a token byte needing no transform: a-z, 0-9.
const CLASS_LOWER: u8 = 1;
/// A-Z: token byte, needs `| 0x20` lowercasing.
const CLASS_UPPER: u8 = 2;
/// '-': starts a token only when immediately followed by an ASCII digit.
const CLASS_HYPHEN: u8 = 3;
/// Lead/continuation byte of a multi-byte UTF-8 sequence: decode a `char`.
const CLASS_MULTI: u8 = 4;

const BYTE_CLASS: [u8; 256] = {
    let mut t = [CLASS_SEP; 256];
    let mut b = 0usize;
    while b < 256 {
        t[b] = if (b >= b'a' as usize && b <= b'z' as usize)
            || (b >= b'0' as usize && b <= b'9' as usize)
        {
            CLASS_LOWER
        } else if b >= b'A' as usize && b <= b'Z' as usize {
            CLASS_UPPER
        } else if b == b'-' as usize {
            CLASS_HYPHEN
        } else if b >= 0x80 {
            CLASS_MULTI
        } else {
            CLASS_SEP
        };
        b += 1;
    }
    t
};

/// Iterator over the tokens of a text.
pub struct Tokens<'a> {
    rest: &'a str,
    /// Scratch reused across tokens; only written when a token needs
    /// lowercasing (uppercase ASCII or non-ASCII characters).
    buf: String,
}

/// Tokenize `text`. Tokens are lowercased. The iterator yields borrowed
/// `&str`s via `next_token` — slices of the input when already lowercase,
/// otherwise drawn from an internal buffer.
pub fn tokens(text: &str) -> Tokens<'_> {
    Tokens { rest: text, buf: String::with_capacity(32) }
}

impl<'a> Tokens<'a> {
    /// Advance to the next token, returning it as a borrowed `&str` valid
    /// until the next call. The lending-iterator shape plus borrowed
    /// returns keep the hot parsing loop allocation- and copy-free for
    /// clean lowercase ASCII tokens.
    pub fn next_token(&mut self) -> Option<&str> {
        let bytes = self.rest.as_bytes();
        let mut i = 0usize;
        // Skip separators; allow '-' to start a token only before a digit.
        let start = loop {
            if i >= bytes.len() {
                self.rest = "";
                return None;
            }
            match BYTE_CLASS[bytes[i] as usize] {
                CLASS_LOWER | CLASS_UPPER => break i,
                CLASS_HYPHEN => {
                    if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                        let start = i;
                        i += 1; // consume the '-'
                        break start;
                    }
                    i += 1;
                }
                CLASS_MULTI => {
                    let c = self.rest[i..].chars().next().unwrap();
                    if c.is_alphanumeric() {
                        break i;
                    }
                    i += c.len_utf8();
                }
                _ => i += 1,
            }
        };
        let mut has_upper = false;
        let mut has_multi = false;
        while i < bytes.len() {
            match BYTE_CLASS[bytes[i] as usize] {
                CLASS_LOWER => i += 1,
                CLASS_UPPER => {
                    has_upper = true;
                    i += 1;
                }
                CLASS_MULTI => {
                    let c = self.rest[i..].chars().next().unwrap();
                    if !c.is_alphanumeric() {
                        break;
                    }
                    has_multi = true;
                    i += c.len_utf8();
                }
                _ => break,
            }
        }
        let raw = &self.rest[start..i];
        self.rest = &self.rest[i..];
        if !has_upper && !has_multi {
            // Already lowercase ASCII (possibly with the leading '-'):
            // borrow straight from the input.
            return Some(raw);
        }
        self.buf.clear();
        if !has_multi {
            self.buf.push_str(raw);
            self.buf.make_ascii_lowercase();
        } else {
            for ch in raw.chars() {
                for l in ch.to_lowercase() {
                    self.buf.push(l);
                }
            }
        }
        Some(&self.buf)
    }

    /// Collect the remaining tokens into owned strings (test convenience).
    pub fn collect_all(mut self) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(t) = self.next_token() {
            out.push(t.to_string());
        }
        out
    }
}

/// The pre-optimization tokenizer, retained as the differential baseline:
/// `char`-wise scanning with every token copied into the scratch buffer.
/// Tests assert [`Tokens`] yields the identical token sequence; the
/// `parse_hotpath` benchmark measures against it.
pub struct ReferenceTokens<'a> {
    rest: &'a str,
    buf: String,
}

/// Tokenize `text` with the naive scanner (see [`ReferenceTokens`]).
pub fn tokens_reference(text: &str) -> ReferenceTokens<'_> {
    ReferenceTokens { rest: text, buf: String::with_capacity(32) }
}

impl ReferenceTokens<'_> {
    /// Advance to the next token (naive implementation).
    pub fn next_token(&mut self) -> Option<&str> {
        let bytes = self.rest.as_bytes();
        let mut i = 0usize;
        loop {
            if i >= bytes.len() {
                self.rest = "";
                return None;
            }
            let c = self.rest[i..].chars().next().unwrap();
            if c.is_alphanumeric() {
                break;
            }
            if c == '-' {
                let mut it = self.rest[i..].chars();
                it.next();
                if matches!(it.next(), Some(d) if d.is_ascii_digit()) {
                    break;
                }
            }
            i += c.len_utf8();
        }
        let start = i;
        if bytes[i] == b'-' {
            i += 1;
        }
        while i < bytes.len() {
            let c = self.rest[i..].chars().next().unwrap();
            if !c.is_alphanumeric() {
                break;
            }
            i += c.len_utf8();
        }
        let raw = &self.rest[start..i];
        self.rest = &self.rest[i..];
        self.buf.clear();
        if raw.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-') {
            self.buf.push_str(raw);
        } else {
            for ch in raw.chars() {
                for l in ch.to_lowercase() {
                    self.buf.push(l);
                }
            }
        }
        Some(&self.buf)
    }

    /// Collect the remaining tokens into owned strings (test convenience).
    pub fn collect_all(mut self) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(t) = self.next_token() {
            out.push(t.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokens(s).collect_all()
    }

    #[test]
    fn simple_words() {
        assert_eq!(toks("the quick brown fox"), ["the", "quick", "brown", "fox"]);
    }

    #[test]
    fn punctuation_and_newlines_split() {
        assert_eq!(toks("one, two.\nthree!four"), ["one", "two", "three", "four"]);
    }

    #[test]
    fn lowercasing() {
        assert_eq!(toks("Hello WORLD MiXeD"), ["hello", "world", "mixed"]);
    }

    #[test]
    fn numbers_kept() {
        assert_eq!(toks("in 1999 and 01 things"), ["in", "1999", "and", "01", "things"]);
    }

    #[test]
    fn negative_numbers_keep_minus() {
        assert_eq!(toks("at -80 degrees"), ["at", "-80", "degrees"]);
        // '-' not followed by a digit is a separator.
        assert_eq!(toks("well-known fact"), ["well", "known", "fact"]);
        // trailing dash
        assert_eq!(toks("dash- end -"), ["dash", "end"]);
    }

    #[test]
    fn alphanumeric_mix_is_one_token() {
        assert_eq!(toks("3d model x86"), ["3d", "model", "x86"]);
    }

    #[test]
    fn unicode_letters() {
        assert_eq!(toks("caf\u{e9} Z\u{0416}ivot"), ["caf\u{e9}", "z\u{436}ivot"]);
    }

    #[test]
    fn empty_and_separator_only() {
        assert_eq!(toks(""), Vec::<String>::new());
        assert_eq!(toks("  ,.;:!  \n\t"), Vec::<String>::new());
    }

    #[test]
    fn lending_iteration_reuses_buffer() {
        let mut it = tokens("aaa bbb");
        assert_eq!(it.next_token(), Some("aaa"));
        assert_eq!(it.next_token(), Some("bbb"));
        assert_eq!(it.next_token(), None);
        assert_eq!(it.next_token(), None);
    }

    #[test]
    fn clean_ascii_tokens_borrow_from_input() {
        let text = "zero copy";
        let mut it = tokens(text);
        let t = it.next_token().unwrap();
        assert_eq!(t.as_ptr(), text.as_ptr(), "lowercase token must borrow the input");
        assert_eq!(t, "zero");
    }

    #[test]
    fn matches_reference_tokenizer() {
        let cases = [
            "the quick brown fox",
            "Hello WORLD MiXeD",
            "at -80 degrees, well-known -x -9y",
            "caf\u{e9} Z\u{0416}ivot \u{4e16}\u{754c} stra\u{df}e \u{130}stanbul",
            "--5 ---6 a-1 1-a \u{2014}dash\u{2014}",
            "3d model x86 \u{665}\u{660} \u{ff21}\u{ff22}",
            "",
            "  ,.;:!  \n\t",
            "ümlaut ÜMLAUT \u{1d400}\u{1d401}",
        ];
        for text in cases {
            assert_eq!(
                tokens(text).collect_all(),
                tokens_reference(text).collect_all(),
                "input {text:?}"
            );
        }
    }
}
