//! # ii-text — parsing substrate
//!
//! The parser stage of the paper's pipeline: HTML stripping, character-scan
//! tokenization, the Porter stemmer, post-stem stop-word removal, and the
//! trie-collection regrouping step (Fig 3, Steps 2-5) that produces the
//! length-prefixed term streams both the CPU and GPU indexers consume.

#![warn(missing_docs)]

pub mod html;
pub mod parse;
pub mod porter;
pub mod stopwords;
pub mod tokenize;

pub use parse::{
    parse_documents, parse_documents_flat, parse_documents_into, parse_documents_reference,
    DocSpan, ParseScratch, ParseStats, ParsedBatch, TermBytesIter, TrieGroup, MAX_TERM_BYTES,
};
pub use porter::{stem, stem_into, StemBuf};
pub use stopwords::is_stop_word;
