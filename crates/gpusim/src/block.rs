//! Thread-block execution context: warp-wide primitives with cycle, bank
//! and coalescing accounting.
//!
//! The paper's GPU indexer assigns one warp (a 32-thread block) per trie
//! collection and structures the kernel as warp-wide steps: stage strings
//! into shared memory with coalesced loads, compare a probe term against
//! all 31 node keys in parallel, find the position with a parallel
//! reduction [11], shift slots in parallel on insert. `BlockCtx` exposes
//! exactly those composable primitives; every primitive both *computes* its
//! result (lanes execute in lockstep order) and *meters* its cost.

use crate::device::{DevPtr, DeviceMemory, GpuConfig};
use crate::metrics::Metrics;

/// Number of lanes in a warp (fixed by the architecture).
pub const WARP: usize = 32;

/// Execution context of one thread block (one warp) while it processes one
/// work item.
pub struct BlockCtx {
    cfg: GpuConfig,
    shared: Vec<u8>,
    /// Cycles consumed so far.
    pub cycles: u64,
    /// Counters for this block's execution.
    pub metrics: Metrics,
}

impl BlockCtx {
    /// Fresh context with zeroed shared memory.
    pub fn new(cfg: &GpuConfig) -> Self {
        BlockCtx {
            cfg: *cfg,
            shared: vec![0; cfg.shared_bytes],
            cycles: 0,
            metrics: Metrics::default(),
        }
    }

    /// Shared-memory size available to the block.
    pub fn shared_len(&self) -> usize {
        self.shared.len()
    }

    /// Issue `n` warp instructions (ALU work with no memory traffic).
    pub fn instr(&mut self, n: u64) {
        self.metrics.instructions += n;
        self.cycles += n * self.cfg.cycles_per_instr;
    }

    /// Record a divergent branch: both sides execute serially, so the cost
    /// is the instruction count of both paths.
    pub fn diverge(&mut self, extra_instrs: u64) {
        self.metrics.divergent_branches += 1;
        self.instr(extra_instrs);
    }

    // ---- global memory -------------------------------------------------

    /// Number of `segment_bytes` segments a `[ptr, ptr+len)` access spans.
    fn segments(&self, ptr: u32, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let seg = self.cfg.segment_bytes as u32;
        let first = ptr / seg;
        let last = (ptr + len as u32 - 1) / seg;
        (last - first + 1) as u64
    }

    fn charge_global(&mut self, ptr: u32, len: usize) {
        let segs = self.segments(ptr, len);
        self.metrics.global_transactions += segs;
        self.metrics.global_bytes += len as u64;
        // One latency exposure per request, plus issue cycles per segment;
        // each 128 B (32 lanes × 4 B) is one warp load instruction.
        self.cycles += self.cfg.mem_latency + segs * self.cfg.cycles_per_instr;
        self.metrics.instructions += len.div_ceil(WARP * 4) as u64;
    }

    /// Coalesced global→shared copy (the Fig 6 staging of 512 B string
    /// chunks, and node loads).
    pub fn gts(&mut self, mem: &DeviceMemory, src: DevPtr, shared_dst: usize, len: usize) {
        self.charge_global(src.0, len);
        self.metrics.shared_accesses += len.div_ceil(WARP * 4) as u64;
        let s = src.0 as usize;
        self.shared[shared_dst..shared_dst + len].copy_from_slice(&mem.raw()[s..s + len]);
    }

    /// Coalesced shared→global copy (node write-back).
    pub fn stg(&mut self, mem: &mut DeviceMemory, shared_src: usize, dst: DevPtr, len: usize) {
        self.charge_global(dst.0, len);
        self.metrics.shared_accesses += len.div_ceil(WARP * 4) as u64;
        let d = dst.0 as usize;
        mem.raw_mut()[d..d + len].copy_from_slice(&self.shared[shared_src..shared_src + len]);
    }

    /// Single-lane global read of a 32-bit word — an *uncoalesced*
    /// transaction (one segment for 4 bytes).
    pub fn global_read_u32(&mut self, mem: &DeviceMemory, ptr: DevPtr) -> u32 {
        self.charge_global(ptr.0, 4);
        let o = ptr.0 as usize;
        u32::from_le_bytes(mem.raw()[o..o + 4].try_into().unwrap())
    }

    /// Single-lane global write of a 32-bit word.
    pub fn global_write_u32(&mut self, mem: &mut DeviceMemory, ptr: DevPtr, v: u32) {
        self.charge_global(ptr.0, 4);
        let o = ptr.0 as usize;
        mem.raw_mut()[o..o + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Single-lane global read of a byte range (e.g. a string remainder
    /// that missed the cache) — charged as the segments it spans.
    pub fn global_read_bytes(&mut self, mem: &DeviceMemory, ptr: DevPtr, len: usize) -> Vec<u8> {
        self.charge_global(ptr.0, len.max(1));
        let o = ptr.0 as usize;
        mem.raw()[o..o + len].to_vec()
    }

    /// Single-lane global write of a byte range.
    pub fn global_write_bytes(&mut self, mem: &mut DeviceMemory, ptr: DevPtr, data: &[u8]) {
        self.charge_global(ptr.0, data.len().max(1));
        let o = ptr.0 as usize;
        mem.raw_mut()[o..o + data.len()].copy_from_slice(data);
    }

    // ---- shared memory -------------------------------------------------

    /// Account a warp's shared-memory access pattern: per half-warp, the
    /// cost is the maximum number of lanes hitting the same bank (a
    /// broadcast of one identical address is free, as on real hardware).
    fn charge_shared(&mut self, offsets: &[u32]) {
        self.metrics.shared_accesses += 1;
        self.instr(1);
        let banks = self.cfg.banks as u32;
        for half in offsets.chunks(self.cfg.banks) {
            // A bank serializes one access per *distinct* word address;
            // lanes reading the same word are served by a broadcast.
            let mut distinct: Vec<Vec<u32>> = vec![Vec::new(); banks as usize];
            for &off in half {
                let word = off / 4;
                let bank = (word % banks) as usize;
                if !distinct[bank].contains(&word) {
                    distinct[bank].push(word);
                }
            }
            let worst = distinct.iter().map(|d| d.len()).max().unwrap_or(1).max(1);
            if worst > 1 {
                self.metrics.bank_conflict_cycles += (worst - 1) as u64;
                self.cycles += (worst - 1) as u64;
            }
        }
    }

    /// Warp-wide shared gather: lane `i` reads the u32 at `offs[i]`.
    pub fn shared_read_vec_u32(&mut self, offs: [u32; WARP]) -> [u32; WARP] {
        self.charge_shared(&offs);
        let mut out = [0u32; WARP];
        for (i, &o) in offs.iter().enumerate() {
            let o = o as usize;
            out[i] = u32::from_le_bytes(self.shared[o..o + 4].try_into().unwrap());
        }
        out
    }

    /// Warp-wide shared scatter: lane `i` writes `vals[i]` to `offs[i]`.
    /// Offsets must be distinct (hardware behaviour for colliding writes is
    /// undefined; we assert instead).
    pub fn shared_write_vec_u32(&mut self, offs: [u32; WARP], vals: [u32; WARP]) {
        debug_assert!(
            {
                let mut s = offs.to_vec();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "colliding shared writes"
        );
        self.charge_shared(&offs);
        for (i, &o) in offs.iter().enumerate() {
            let o = o as usize;
            self.shared[o..o + 4].copy_from_slice(&vals[i].to_le_bytes());
        }
    }

    /// Scalar shared read (lane 0 doing control flow).
    pub fn shared_read_u32(&mut self, off: usize) -> u32 {
        self.metrics.shared_accesses += 1;
        self.instr(1);
        u32::from_le_bytes(self.shared[off..off + 4].try_into().unwrap())
    }

    /// Scalar shared write.
    pub fn shared_write_u32(&mut self, off: usize, v: u32) {
        self.metrics.shared_accesses += 1;
        self.instr(1);
        self.shared[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Unmetered view of shared memory for pure-logic inspection (the cost
    /// of data-parallel touches must go through the vector ops).
    pub fn shared(&self) -> &[u8] {
        &self.shared
    }

    /// Unmetered mutable view (kernel-internal staging).
    pub fn shared_mut(&mut self) -> &mut [u8] {
        &mut self.shared
    }

    // ---- warp collectives ----------------------------------------------

    /// Execute one lockstep step across all lanes: `f(lane)` for lanes
    /// `0..32`. Costs one warp instruction.
    pub fn lanes<T: Copy + Default, F: FnMut(usize) -> T>(&mut self, mut f: F) -> [T; WARP] {
        self.instr(1);
        let mut out = [T::default(); WARP];
        for (lane, slot) in out.iter_mut().enumerate() {
            *slot = f(lane);
        }
        out
    }

    /// Parallel tree reduction over a warp's values (Harris [11]): log2(32)
    /// = 5 steps, each one instruction plus a shared-memory exchange.
    pub fn warp_reduce<T: Copy, F: Fn(T, T) -> T>(&mut self, vals: [T; WARP], f: F) -> T {
        let mut v = vals;
        let mut stride = WARP / 2;
        while stride > 0 {
            self.instr(1);
            self.metrics.shared_accesses += 2;
            for i in 0..stride {
                v[i] = f(v[i], v[i + stride]);
            }
            stride /= 2;
        }
        v[0]
    }

    /// Warp-wide inclusive scan (Hillis-Steele): log2(32) = 5 steps, each
    /// an instruction plus a shared-memory exchange. The workhorse of
    /// compaction and allocation kernels.
    pub fn warp_scan_inclusive<T: Copy, F: Fn(T, T) -> T>(
        &mut self,
        vals: [T; WARP],
        f: F,
    ) -> [T; WARP] {
        let mut v = vals;
        let mut stride = 1;
        while stride < WARP {
            self.instr(1);
            self.metrics.shared_accesses += 2;
            let prev = v;
            for i in stride..WARP {
                v[i] = f(prev[i - stride], prev[i]);
            }
            stride *= 2;
        }
        v
    }

    /// Warp ballot: the 32-bit mask of lanes whose predicate is true
    /// (a single instruction on real hardware).
    pub fn warp_ballot<F: Fn(usize) -> bool>(&mut self, pred: F) -> u32 {
        self.instr(1);
        let mut mask = 0u32;
        for lane in 0..WARP {
            if pred(lane) {
                mask |= 1 << lane;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> BlockCtx {
        BlockCtx::new(&GpuConfig::default())
    }

    #[test]
    fn gts_coalesced_512b_is_8_transactions() {
        let mut mem = DeviceMemory::new(4096);
        let p = mem.alloc(512, 64);
        mem.host_write(p, &(0..=255u8).chain(0..=255).collect::<Vec<_>>());
        let mut c = ctx();
        c.gts(&mem, p, 0, 512);
        assert_eq!(c.metrics.global_transactions, 8); // 512 / 64
        assert_eq!(c.metrics.global_bytes, 512);
        assert_eq!(&c.shared()[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn misaligned_access_costs_extra_segment() {
        let mut mem = DeviceMemory::new(4096);
        let _pad = mem.alloc(4, 4);
        let p = DevPtr(4); // straddles the first 64B boundary
        let mut c = ctx();
        c.gts(&mem, p, 0, 64);
        assert_eq!(c.metrics.global_transactions, 2);
    }

    #[test]
    fn scalar_read_is_one_transaction_for_4_bytes() {
        let mut mem = DeviceMemory::new(64);
        let p = mem.alloc(4, 4);
        mem.host_write(p, &7u32.to_le_bytes());
        let mut c = ctx();
        assert_eq!(c.global_read_u32(&mem, p), 7);
        assert_eq!(c.metrics.global_transactions, 1);
        assert_eq!(c.metrics.global_bytes, 4);
        assert!(c.metrics.transactions_per_segment() > 10.0, "uncoalesced");
    }

    #[test]
    fn stg_writes_back() {
        let mut mem = DeviceMemory::new(256);
        let p = mem.alloc(8, 8);
        let mut c = ctx();
        c.shared_mut()[..8].copy_from_slice(&[9, 8, 7, 6, 5, 4, 3, 2]);
        c.stg(&mut mem, 0, p, 8);
        assert_eq!(mem.debug_read(p, 8), &[9, 8, 7, 6, 5, 4, 3, 2]);
    }

    #[test]
    fn conflict_free_stride_one_word() {
        // Lane i reads word i: banks 0..16,0..16 per half-warp — no conflict.
        let mut c = ctx();
        let offs: [u32; WARP] = std::array::from_fn(|i| (i * 4) as u32);
        c.shared_read_vec_u32(offs);
        assert_eq!(c.metrics.bank_conflict_cycles, 0);
    }

    #[test]
    fn stride_16_words_causes_conflicts() {
        // Lane i reads word 16*i: every lane in a half-warp hits bank 0.
        let mut c = ctx();
        let offs: [u32; WARP] = std::array::from_fn(|i| (i * 16 * 4) as u32);
        c.shared_read_vec_u32(offs);
        assert_eq!(c.metrics.bank_conflict_cycles, 2 * 15); // 16-way per half
    }

    #[test]
    fn broadcast_is_free() {
        let mut c = ctx();
        let offs = [0u32; WARP];
        c.shared_read_vec_u32(offs);
        assert_eq!(c.metrics.bank_conflict_cycles, 0);
    }

    #[test]
    fn warp_scan_inclusive_prefix_sums() {
        let mut c = ctx();
        let ones = [1u32; WARP];
        let before = c.metrics.instructions;
        let scanned = c.warp_scan_inclusive(ones, |a, b| a + b);
        for (i, v) in scanned.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
        assert_eq!(c.metrics.instructions - before, 5);
    }

    #[test]
    fn warp_scan_general_op() {
        let mut c = ctx();
        let vals: [u32; WARP] = std::array::from_fn(|i| i as u32);
        let maxes = c.warp_scan_inclusive(vals, |a, b| a.max(b));
        assert_eq!(maxes, vals, "running max of 0..32 is identity");
    }

    #[test]
    fn warp_ballot_mask() {
        let mut c = ctx();
        let mask = c.warp_ballot(|lane| lane % 2 == 0);
        assert_eq!(mask, 0x5555_5555);
        assert_eq!(c.warp_ballot(|_| false), 0);
        assert_eq!(c.warp_ballot(|_| true), u32::MAX);
    }

    #[test]
    fn warp_reduce_computes_and_costs_5_steps() {
        let mut c = ctx();
        let vals: [u32; WARP] = std::array::from_fn(|i| (i as u32) ^ 13);
        let before = c.metrics.instructions;
        let m = c.warp_reduce(vals, |a, b| a.min(b));
        assert_eq!(m, vals.iter().copied().min().unwrap());
        assert_eq!(c.metrics.instructions - before, 5);
    }

    #[test]
    fn lanes_lockstep() {
        let mut c = ctx();
        let v = c.lanes(|l| l as u32 * 2);
        assert_eq!(v[0], 0);
        assert_eq!(v[31], 62);
        assert_eq!(c.metrics.instructions, 1);
    }

    #[test]
    fn cycles_accumulate() {
        let mut c = ctx();
        assert_eq!(c.cycles, 0);
        c.instr(10);
        let after_instr = c.cycles;
        assert_eq!(after_instr, 40); // 4 cycles/instr
        let mem = DeviceMemory::new(64);
        c.global_read_u32(&mem, DevPtr(0));
        assert!(c.cycles >= after_instr + 500, "latency charged");
    }
}
