//! Simulated GPU device: configuration and device memory.

use crate::metrics::Metrics;

/// Architectural parameters. Defaults model the NVIDIA Tesla C1060 the
/// paper used: 30 SMs × 8 SPs at 1.296 GHz, 4 GB device memory at
/// 102 GB/s peak, 16 KB shared memory with 16 banks, 400-600 cycle global
/// latency, coalescing granularity of 16 32-bit words (64 bytes).
#[derive(Clone, Copy, Debug)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub num_sms: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Threads per warp.
    pub warp_size: usize,
    /// Shared memory per SM in bytes.
    pub shared_bytes: usize,
    /// Shared-memory banks.
    pub banks: usize,
    /// Global-memory latency in cycles.
    pub mem_latency: u64,
    /// Coalescing segment size in bytes (16 words).
    pub segment_bytes: usize,
    /// Device-memory size in bytes.
    pub device_mem_bytes: usize,
    /// Host↔device transfer bandwidth (bytes/second; PCIe x16 gen2-ish).
    pub pcie_bytes_per_sec: f64,
    /// Cycles per warp instruction (8 SPs execute a 32-thread warp in 4).
    pub cycles_per_instr: u64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 30,
            clock_hz: 1.296e9,
            warp_size: 32,
            shared_bytes: 16 * 1024,
            banks: 16,
            mem_latency: 500,
            segment_bytes: 64,
            device_mem_bytes: 256 * 1024 * 1024, // scaled-down 4 GB
            pcie_bytes_per_sec: 5.0e9,
            cycles_per_instr: 4,
        }
    }
}

impl GpuConfig {
    /// Seconds to move `bytes` across PCIe (pre/post-processing model).
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.pcie_bytes_per_sec
    }
}

/// A pointer into device memory (byte offset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DevPtr(pub u32);

impl DevPtr {
    /// Null device pointer.
    pub const NULL: DevPtr = DevPtr(u32::MAX);

    /// Offset arithmetic (pointer-style naming is intentional).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u32) -> DevPtr {
        DevPtr(self.0 + bytes)
    }
}

/// Flat device memory with a bump allocator. Host-side reads/writes model
/// the pre-/post-processing transfers and are tallied separately from
/// kernel traffic.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    bytes: Vec<u8>,
    top: usize,
    high_water: usize,
    /// Transfer counters (kernel traffic is counted on each block's
    /// metrics instead).
    pub transfers: Metrics,
}

impl DeviceMemory {
    /// Allocate a device with `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        DeviceMemory {
            bytes: vec![0; capacity],
            top: 0,
            high_water: 0,
            transfers: Metrics::default(),
        }
    }

    /// Bump-allocate `size` bytes aligned to `align` (power of two).
    /// Panics when device memory is exhausted, as a real cudaMalloc would
    /// fail.
    pub fn alloc(&mut self, size: usize, align: usize) -> DevPtr {
        debug_assert!(align.is_power_of_two());
        let start = (self.top + align - 1) & !(align - 1);
        assert!(
            start + size <= self.bytes.len(),
            "device memory exhausted: need {} at {}, have {}",
            size,
            start,
            self.bytes.len()
        );
        self.top = start + size;
        self.high_water = self.high_water.max(self.top);
        DevPtr(start as u32)
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.top
    }

    /// Most bytes ever simultaneously allocated on this device (the
    /// governor's per-device high-water accounting).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// Host→device copy (counted as PCIe traffic).
    pub fn host_write(&mut self, ptr: DevPtr, data: &[u8]) {
        let o = ptr.0 as usize;
        self.bytes[o..o + data.len()].copy_from_slice(data);
        self.transfers.h2d_bytes += data.len() as u64;
    }

    /// Device→host copy (counted as PCIe traffic).
    pub fn host_read(&mut self, ptr: DevPtr, len: usize) -> Vec<u8> {
        let o = ptr.0 as usize;
        self.transfers.d2h_bytes += len as u64;
        self.bytes[o..o + len].to_vec()
    }

    /// Raw view for kernel-side accessors (cost accounting happens in
    /// `BlockCtx`, which is the only caller).
    pub(crate) fn raw(&self) -> &[u8] {
        &self.bytes
    }

    pub(crate) fn raw_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Uncounted host-side peek (debug/verification only).
    pub fn debug_read(&self, ptr: DevPtr, len: usize) -> &[u8] {
        &self.bytes[ptr.0 as usize..ptr.0 as usize + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut m = DeviceMemory::new(1024);
        let a = m.alloc(3, 1);
        let b = m.alloc(8, 8);
        assert_eq!(a.0, 0);
        assert_eq!(b.0 % 8, 0);
        assert!(m.used() >= 11);
        assert_eq!(m.high_water(), m.used(), "bump allocator never frees");
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn oom_panics() {
        let mut m = DeviceMemory::new(16);
        m.alloc(32, 4);
    }

    #[test]
    fn host_transfers_counted() {
        let mut m = DeviceMemory::new(64);
        let p = m.alloc(8, 4);
        m.host_write(p, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let back = m.host_read(p, 8);
        assert_eq!(back, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.transfers.h2d_bytes, 8);
        assert_eq!(m.transfers.d2h_bytes, 8);
    }

    #[test]
    fn default_config_is_c1060_like() {
        let c = GpuConfig::default();
        assert_eq!(c.num_sms, 30);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.banks, 16);
        assert_eq!(c.shared_bytes, 16 * 1024);
        // PCIe: 1 MB in ~0.2 ms.
        let t = c.transfer_seconds(1 << 20);
        assert!(t > 1e-4 && t < 1e-3);
    }
}
