//! Grid launch with dynamic round-robin work scheduling (paper §III.D.2).
//!
//! The paper runs a fixed population of thread blocks (480 per GPU was
//! found optimal, §IV.B) that pull trie collections from a queue: "whenever
//! a thread block completes the processing of a particular trie collection,
//! it starts processing the next available trie collection."
//!
//! The simulator executes each work item's kernel once (functionally, on
//! the host) to obtain its cycle cost and effects, then reconstructs device
//! time by replaying the schedule: items are assigned in queue order to the
//! earliest-finishing block, and blocks are placed round-robin on SMs whose
//! busy time accumulates. Device seconds = max SM busy time / clock.

use crate::block::BlockCtx;
use crate::device::{DeviceMemory, GpuConfig};
use crate::metrics::Metrics;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fixed overhead charged per work item a block picks up (queue pop,
/// kernel prologue/epilogue).
pub const ITEM_OVERHEAD_CYCLES: u64 = 2_000;

/// Outcome of a grid launch.
#[derive(Clone, Debug)]
pub struct LaunchReport {
    /// Simulated device wall time for the grid.
    pub device_seconds: f64,
    /// Sum of all blocks' cycles.
    pub total_cycles: u64,
    /// Cycle cost of each work item, in input order.
    pub per_item_cycles: Vec<u64>,
    /// Merged kernel counters.
    pub metrics: Metrics,
    /// Busy cycles of each SM after scheduling.
    pub sm_busy_cycles: Vec<u64>,
}

impl LaunchReport {
    /// Load-balance quality: mean SM busy time over max (1.0 = perfect).
    pub fn utilization(&self) -> f64 {
        let max = self.sm_busy_cycles.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let mean = self.sm_busy_cycles.iter().sum::<u64>() as f64
            / self.sm_busy_cycles.len() as f64;
        mean / max as f64
    }
}

/// Launch `num_blocks` persistent blocks over `items`, executing `kernel`
/// once per item. The kernel receives a fresh [`BlockCtx`] (new shared
/// memory) per item, mirroring a block starting a new collection.
pub fn launch_dynamic<W, F>(
    cfg: &GpuConfig,
    mem: &mut DeviceMemory,
    num_blocks: usize,
    items: &[W],
    mut kernel: F,
) -> LaunchReport
where
    F: FnMut(&mut BlockCtx, &mut DeviceMemory, &W),
{
    assert!(num_blocks >= 1, "need at least one thread block");
    let mut per_item_cycles = Vec::with_capacity(items.len());
    let mut metrics = Metrics::default();
    for item in items {
        let mut ctx = BlockCtx::new(cfg);
        kernel(&mut ctx, mem, item);
        per_item_cycles.push(ctx.cycles + ITEM_OVERHEAD_CYCLES);
        metrics.merge(&ctx.metrics);
    }

    // Dynamic schedule: queue order, earliest-finishing block next.
    let mut block_load: Vec<u64> = vec![0; num_blocks];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..num_blocks).map(|b| Reverse((0u64, b))).collect();
    for &c in &per_item_cycles {
        let Reverse((load, b)) = heap.pop().expect("non-empty heap");
        let new_load = load + c;
        block_load[b] = new_load;
        heap.push(Reverse((new_load, b)));
    }

    // Blocks are dispatched to SMs as SMs free up (the hardware block
    // scheduler); an SM's work is the sum of its resident blocks' cycles
    // (they time-share its 8 SPs). Heaviest blocks first, as they are
    // dispatched while the grid is still full.
    let mut sm_busy_cycles = vec![0u64; cfg.num_sms];
    let mut sm_heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..cfg.num_sms).map(|s| Reverse((0u64, s))).collect();
    let mut by_weight: Vec<u64> = block_load.clone();
    by_weight.sort_unstable_by(|a, b| b.cmp(a));
    for load in by_weight {
        let Reverse((busy, s)) = sm_heap.pop().expect("non-empty heap");
        let new_busy = busy + load;
        sm_busy_cycles[s] = new_busy;
        sm_heap.push(Reverse((new_busy, s)));
    }
    let max_busy = sm_busy_cycles.iter().copied().max().unwrap_or(0);
    LaunchReport {
        device_seconds: max_busy as f64 / cfg.clock_hz,
        total_cycles: per_item_cycles.iter().sum(),
        per_item_cycles,
        metrics,
        sm_busy_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with_costs(costs: &[u64], num_blocks: usize) -> LaunchReport {
        let cfg = GpuConfig::default();
        let mut mem = DeviceMemory::new(64);
        launch_dynamic(&cfg, &mut mem, num_blocks, costs, |ctx, _mem, &c| {
            // Burn exactly c cycles of "ALU work".
            ctx.instr(c / 4);
        })
    }

    #[test]
    fn empty_grid() {
        let r = run_with_costs(&[], 480);
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.device_seconds, 0.0);
        assert_eq!(r.utilization(), 1.0);
    }

    #[test]
    fn kernel_effects_apply_to_device_memory() {
        let cfg = GpuConfig::default();
        let mut mem = DeviceMemory::new(256);
        let p = mem.alloc(4, 4);
        let r = launch_dynamic(&cfg, &mut mem, 4, &[1u32, 2, 3], |ctx, mem, &v| {
            let cur = ctx.global_read_u32(mem, p);
            ctx.global_write_u32(mem, p, cur + v);
        });
        assert_eq!(
            u32::from_le_bytes(mem.debug_read(p, 4).try_into().unwrap()),
            6,
            "all three kernel executions applied"
        );
        assert_eq!(r.per_item_cycles.len(), 3);
        assert!(r.metrics.global_transactions >= 6);
    }

    #[test]
    fn more_blocks_improve_balance_on_skewed_items() {
        // One huge item plus many small ones: with 1 block everything
        // serializes; with many blocks the long pole dominates but the rest
        // spreads out.
        let mut costs = vec![1_000_000u64];
        costs.extend(std::iter::repeat_n(10_000, 400));
        let t1 = run_with_costs(&costs, 1).device_seconds;
        let t30 = run_with_costs(&costs, 30).device_seconds;
        let t480 = run_with_costs(&costs, 480).device_seconds;
        assert!(t30 < t1, "30 blocks beat 1: {t30} vs {t1}");
        assert!(t480 <= t30 * 1.01, "480 blocks no worse than 30");
    }

    #[test]
    fn block_count_plateaus_beyond_item_count() {
        let costs = vec![50_000u64; 64];
        let a = run_with_costs(&costs, 480).device_seconds;
        let b = run_with_costs(&costs, 4800).device_seconds;
        assert!((a - b).abs() / a < 0.05, "beyond-saturation block counts equal");
    }

    #[test]
    fn utilization_reflects_imbalance() {
        let skewed = run_with_costs(&[10_000_000, 1_000, 1_000], 3);
        assert!(skewed.utilization() < 0.5);
        let flat = run_with_costs(&vec![100_000; 300], 30);
        assert!(flat.utilization() > 0.9);
    }

    #[test]
    fn device_seconds_scale_with_work() {
        let small = run_with_costs(&vec![10_000; 30], 30);
        let big = run_with_costs(&vec![100_000; 30], 30);
        assert!(big.device_seconds > small.device_seconds * 5.0);
    }
}
