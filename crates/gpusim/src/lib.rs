//! # ii-gpusim — software SIMT simulator (the GPU substitute)
//!
//! The paper runs its GPU indexer on two NVIDIA Tesla C1060s. This
//! environment has no GPU, so `ii-gpusim` provides the substrate the CUDA
//! kernel is written against: device memory with a bump allocator and
//! PCIe-transfer accounting, 32-lane warps executing warp-wide primitives
//! in lockstep, 16-bank shared memory with bank-conflict serialization,
//! a global-memory coalescing model (64-byte segments), parallel reduction,
//! and a grid scheduler reproducing the paper's dynamic round-robin
//! assignment of trie collections to thread blocks.
//!
//! Cost is counted in *device cycles* from the C1060's published
//! parameters, so the simulated GPU's speed is independent of the host.

#![warn(missing_docs)]

pub mod block;
pub mod device;
pub mod grid;
pub mod metrics;

pub use block::{BlockCtx, WARP};
pub use device::{DevPtr, DeviceMemory, GpuConfig};
pub use grid::{launch_dynamic, LaunchReport, ITEM_OVERHEAD_CYCLES};
pub use metrics::Metrics;
