//! Execution counters collected by the simulated GPU.
//!
//! These are the quantities CUDA optimization actually targets (paper §I):
//! global-memory transactions (coalescing), shared-memory bank conflicts,
//! and issued warp instructions. The cost model converts them to device
//! cycles, so "GPU time" in this reproduction is architecture-derived, not
//! host-wall-clock-derived.

/// Counter set for one block, one kernel, or a whole device run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Global-memory transactions (one per 64-byte segment per half-warp).
    pub global_transactions: u64,
    /// Bytes moved to/from global memory by kernels.
    pub global_bytes: u64,
    /// Shared-memory accesses (per warp operation).
    pub shared_accesses: u64,
    /// Extra shared-memory cycles caused by bank conflicts.
    pub bank_conflict_cycles: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Branches where the warp diverged (lanes took both paths).
    pub divergent_branches: u64,
    /// Key comparisons performed warp-wide (31 per Fig 7 node probe —
    /// lane *i* compares the probe against key slot *i*).
    pub warp_comparisons: u64,
    /// Host-to-device bytes transferred (pre-processing).
    pub h2d_bytes: u64,
    /// Device-to-host bytes transferred (post-processing).
    pub d2h_bytes: u64,
}

impl Metrics {
    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.global_transactions += other.global_transactions;
        self.global_bytes += other.global_bytes;
        self.shared_accesses += other.shared_accesses;
        self.bank_conflict_cycles += other.bank_conflict_cycles;
        self.instructions += other.instructions;
        self.divergent_branches += other.divergent_branches;
        self.warp_comparisons += other.warp_comparisons;
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_bytes += other.d2h_bytes;
    }

    /// Counters accumulated since `since` (per-batch deltas for trace
    /// spans). Saturating: a reset between the two snapshots yields zeros
    /// rather than wrap-around garbage.
    pub fn delta(&self, since: &Metrics) -> Metrics {
        Metrics {
            global_transactions: self.global_transactions.saturating_sub(since.global_transactions),
            global_bytes: self.global_bytes.saturating_sub(since.global_bytes),
            shared_accesses: self.shared_accesses.saturating_sub(since.shared_accesses),
            bank_conflict_cycles: self
                .bank_conflict_cycles
                .saturating_sub(since.bank_conflict_cycles),
            instructions: self.instructions.saturating_sub(since.instructions),
            divergent_branches: self.divergent_branches.saturating_sub(since.divergent_branches),
            warp_comparisons: self.warp_comparisons.saturating_sub(since.warp_comparisons),
            h2d_bytes: self.h2d_bytes.saturating_sub(since.h2d_bytes),
            d2h_bytes: self.d2h_bytes.saturating_sub(since.d2h_bytes),
        }
    }

    /// Fraction of global traffic that was fully coalesced is not directly
    /// recoverable from totals; expose transactions per 64B of traffic as a
    /// coalescing-quality proxy (1.0 == perfect).
    pub fn transactions_per_segment(&self) -> f64 {
        if self.global_bytes == 0 {
            return 0.0;
        }
        self.global_transactions as f64 / (self.global_bytes as f64 / 64.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = Metrics { global_transactions: 1, instructions: 10, ..Default::default() };
        let b = Metrics {
            global_transactions: 2,
            h2d_bytes: 5,
            warp_comparisons: 31,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.global_transactions, 3);
        assert_eq!(a.instructions, 10);
        assert_eq!(a.h2d_bytes, 5);
        assert_eq!(a.warp_comparisons, 31);
    }

    #[test]
    fn delta_subtracts_and_saturates() {
        let before = Metrics { instructions: 10, warp_comparisons: 62, ..Default::default() };
        let after = Metrics { instructions: 25, warp_comparisons: 93, ..Default::default() };
        let d = after.delta(&before);
        assert_eq!(d.instructions, 15);
        assert_eq!(d.warp_comparisons, 31);
        // A counter reset between snapshots yields zero, not wrap-around.
        assert_eq!(before.delta(&after).instructions, 0);
    }

    #[test]
    fn coalescing_proxy() {
        let m = Metrics { global_transactions: 2, global_bytes: 128, ..Default::default() };
        assert!((m.transactions_per_segment() - 1.0).abs() < 1e-9);
        let bad = Metrics { global_transactions: 32, global_bytes: 128, ..Default::default() };
        assert!(bad.transactions_per_segment() > 10.0);
        assert_eq!(Metrics::default().transactions_per_segment(), 0.0);
    }
}
