//! OpenMetrics/Prometheus text exposition of a metrics [`Snapshot`].
//!
//! [`render`] maps the registry's four metric shapes onto four exposition
//! families, using the original dotted metric name as a *label* rather
//! than mangling it into the sample name (so `queue.parser-0.depth`
//! survives round trips exactly):
//!
//! * counters  → `ii_counter_total{name="..."}`
//! * gauges    → `ii_gauge{name="..."}`
//! * histograms → `ii_histogram_ns_bucket{name="...",le="..."}` with the
//!   *cumulative* `le` semantics Prometheus expects, mapped from the
//!   log-bucketed [`Histogram`]'s per-bucket counts, plus
//!   `ii_histogram_ns_count`
//! * stages    → `ii_stage_wall_seconds{stage=...}`,
//!   `ii_stage_queue_wait_seconds`, `ii_stage_bytes_total`,
//!   `ii_stage_items_total`, and an `ii_stage_latency_ns` histogram
//!
//! [`parse`] reads the format back (the `ii top` poller and the lint both
//! run on it), and [`lint`] enforces the structural rules the proptests
//! pin down: terminal `# EOF`, `# TYPE` before first sample of a family,
//! valid names, label escaping, monotone cumulative buckets ending in a
//! `+Inf` bucket that equals `_count`.
//!
//! No `_sum` series are emitted: the histograms store bucket counts only,
//! and a fabricated sum would be worse than an absent one.

use crate::{Histogram, Snapshot};

/// Escape a label value per the OpenMetrics text format: backslash,
/// double-quote, and newline get backslash escapes; everything else is
/// passed through (the format is UTF-8).
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Upper bound of histogram bucket `i` as an exposition `le` string
/// (`"+Inf"` for the overflow bucket).
fn le_str(i: usize) -> String {
    match Histogram::BOUNDS.get(i) {
        Some(b) => b.to_string(),
        None => "+Inf".to_string(),
    }
}

/// Emit one histogram's cumulative bucket series plus its `_count`.
fn push_histogram(out: &mut String, family: &str, label_key: &str, label_val: &str, counts: &[u64]) {
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cum += c;
        let le = le_str(i);
        push_sample(
            out,
            &format!("{family}_bucket"),
            &[(label_key, label_val), ("le", &le)],
            &cum.to_string(),
        );
    }
    // A histogram snapshot always covers the full bucket array, but guard
    // against a hand-built short one: the series must end at +Inf.
    if counts.len() <= Histogram::BOUNDS.len() {
        push_sample(
            out,
            &format!("{family}_bucket"),
            &[(label_key, label_val), ("le", "+Inf")],
            &cum.to_string(),
        );
    }
    push_sample(out, &format!("{family}_count"), &[(label_key, label_val)], &cum.to_string());
}

/// Render a snapshot as OpenMetrics text, terminated by `# EOF`.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("# TYPE ii_counter counter\n");
    out.push_str("# HELP ii_counter Monotonic event counters, by dotted registry name.\n");
    for (name, v) in &snap.counters {
        push_sample(&mut out, "ii_counter_total", &[("name", name)], &v.to_string());
    }
    out.push_str("# TYPE ii_gauge gauge\n");
    out.push_str("# HELP ii_gauge Last-write-wins levels, by dotted registry name.\n");
    for (name, v) in &snap.gauges {
        push_sample(&mut out, "ii_gauge", &[("name", name)], &v.to_string());
    }
    out.push_str("# TYPE ii_histogram_ns histogram\n");
    out.push_str("# HELP ii_histogram_ns Nanosecond latency histograms (power-of-4 buckets).\n");
    for (name, counts) in &snap.histograms {
        push_histogram(&mut out, "ii_histogram_ns", "name", name, counts);
    }
    out.push_str("# TYPE ii_stage_wall_seconds gauge\n");
    out.push_str("# HELP ii_stage_wall_seconds Busy wall seconds per pipeline stage.\n");
    for (name, s) in &snap.stages {
        push_sample(
            &mut out,
            "ii_stage_wall_seconds",
            &[("stage", name)],
            &format!("{:.9}", s.wall_seconds),
        );
    }
    out.push_str("# TYPE ii_stage_queue_wait_seconds gauge\n");
    out.push_str("# HELP ii_stage_queue_wait_seconds Seconds blocked on inter-stage queues.\n");
    for (name, s) in &snap.stages {
        push_sample(
            &mut out,
            "ii_stage_queue_wait_seconds",
            &[("stage", name)],
            &format!("{:.9}", s.queue_wait_seconds),
        );
    }
    out.push_str("# TYPE ii_stage_bytes counter\n");
    out.push_str("# HELP ii_stage_bytes Payload bytes processed per stage.\n");
    for (name, s) in &snap.stages {
        push_sample(&mut out, "ii_stage_bytes_total", &[("stage", name)], &s.bytes.to_string());
    }
    out.push_str("# TYPE ii_stage_items counter\n");
    out.push_str("# HELP ii_stage_items Work items processed per stage.\n");
    for (name, s) in &snap.stages {
        push_sample(&mut out, "ii_stage_items_total", &[("stage", name)], &s.items.to_string());
    }
    out.push_str("# TYPE ii_stage_latency_ns histogram\n");
    out.push_str("# HELP ii_stage_latency_ns Per-item latency histogram per stage.\n");
    for (name, s) in &snap.stages {
        push_histogram(&mut out, "ii_stage_latency_ns", "stage", name, &s.latency);
    }
    out.push_str("# EOF\n");
    out
}

/// One parsed exposition sample.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricPoint {
    /// Sample name (including any `_total`/`_bucket`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf` parses to `f64::INFINITY`).
    pub value: f64,
}

impl MetricPoint {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse one sample line (`name{labels} value`).
fn parse_sample(line: &str) -> Result<MetricPoint, String> {
    let name_end = line.find(['{', ' ']).ok_or_else(|| format!("no value in '{line}'"))?;
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(format!("invalid metric name '{name}'"));
    }
    let mut labels = Vec::new();
    let mut rest = &line[name_end..];
    if let Some(r) = rest.strip_prefix('{') {
        // `pos` always sits on the next unconsumed byte of `r`.
        let mut pos = 0usize;
        loop {
            if r[pos..].starts_with('}') {
                if !labels.is_empty() {
                    return Err("trailing ',' before '}'".into());
                }
                pos += 1;
                break;
            }
            let eq = r[pos..].find('=').ok_or("label without '='")?;
            let key = &r[pos..pos + eq];
            if key.is_empty()
                || key.starts_with(|c: char| c.is_ascii_digit())
                || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                return Err(format!("invalid label name '{key}'"));
            }
            pos += eq + 1;
            if !r[pos..].starts_with('"') {
                return Err(format!("label '{key}' value must be quoted"));
            }
            pos += 1;
            // Quoted, escaped value.
            let mut val = String::new();
            let mut chars = r[pos..].char_indices();
            let mut closed = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '"' => {
                        closed = Some(i + 1);
                        break;
                    }
                    '\\' => {
                        let Some((_, e)) = chars.next() else {
                            return Err("dangling escape in label value".into());
                        };
                        match e {
                            'n' => val.push('\n'),
                            '\\' => val.push('\\'),
                            '"' => val.push('"'),
                            e => return Err(format!("unknown escape '\\{e}' in label value")),
                        }
                    }
                    c => val.push(c),
                }
            }
            pos += closed.ok_or_else(|| format!("unterminated value for label '{key}'"))?;
            labels.push((key.to_string(), val));
            if r[pos..].starts_with(',') {
                pos += 1;
            } else if r[pos..].starts_with('}') {
                pos += 1;
                break;
            } else {
                return Err("expected ',' or '}' after label".into());
            }
        }
        rest = &r[pos..];
    }
    let value = rest.trim();
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse::<f64>().map_err(|_| format!("bad sample value '{v}'"))?,
    };
    Ok(MetricPoint { name: name.to_string(), labels, value })
}

/// Parse an exposition into its samples, skipping `#` comment lines.
pub fn parse(text: &str) -> Result<Vec<MetricPoint>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", ln + 1))?);
    }
    Ok(out)
}

/// What a clean [`lint`] pass saw.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LintSummary {
    /// Parsed sample lines.
    pub samples: usize,
    /// Distinct `# TYPE`-declared families.
    pub families: usize,
    /// Distinct cumulative bucket series checked.
    pub bucket_series: usize,
}

/// Family name of a sample: the name with any reserved suffix stripped,
/// if that base was `# TYPE`-declared; else the name itself.
fn family_of<'a>(name: &'a str, typed: &std::collections::BTreeMap<String, String>) -> &'a str {
    for suffix in ["_total", "_bucket", "_count", "_sum"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if typed.contains_key(base) {
                return base;
            }
        }
    }
    name
}

/// Structural validation of an exposition: parses every line, enforces
/// `# EOF` termination, `# TYPE` before first use, counters named
/// `*_total`, and — for every `_bucket` series — monotone nondecreasing
/// cumulative counts ending in a `+Inf` bucket that equals the matching
/// `_count` sample.
pub fn lint(text: &str) -> Result<LintSummary, String> {
    if text.lines().last().map(str::trim_end) != Some("# EOF") {
        return Err("exposition must end with '# EOF'".into());
    }
    let mut typed: std::collections::BTreeMap<String, String> = Default::default();
    let mut points = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let err = |e: String| format!("line {}: {e}", ln + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix("# TYPE ") {
            let mut it = meta.split_whitespace();
            let (Some(fam), Some(kind)) = (it.next(), it.next()) else {
                return Err(err("malformed # TYPE line".into()));
            };
            if !valid_name(fam) {
                return Err(err(format!("invalid family name '{fam}'")));
            }
            if typed.insert(fam.to_string(), kind.to_string()).is_some() {
                return Err(err(format!("family '{fam}' declared twice")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let p = parse_sample(line).map_err(err)?;
        let fam = family_of(&p.name, &typed);
        let Some(kind) = typed.get(fam) else {
            return Err(err(format!("sample '{}' has no preceding # TYPE", p.name)));
        };
        if kind == "counter" && !p.name.ends_with("_total") {
            return Err(err(format!("counter sample '{}' must end in _total", p.name)));
        }
        points.push(p);
    }
    // Cumulative-bucket discipline, grouped by (base name, labels sans le).
    let mut series: std::collections::BTreeMap<String, Vec<(f64, f64)>> = Default::default();
    for p in &points {
        let Some(base) = p.name.strip_suffix("_bucket") else { continue };
        let le = p
            .label("le")
            .ok_or_else(|| format!("bucket sample '{}' missing le label", p.name))?;
        let le = match le {
            "+Inf" => f64::INFINITY,
            v => v.parse::<f64>().map_err(|_| format!("bad le '{v}' on '{}'", p.name))?,
        };
        let mut key = format!("{base}|");
        for (k, v) in &p.labels {
            if k != "le" {
                key.push_str(&format!("{k}={}|", escape_label(v)));
            }
        }
        series.entry(key).or_default().push((le, p.value));
    }
    for (key, buckets) in &mut series {
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        let name = key.split('|').next().unwrap_or(key);
        if buckets.last().map(|(le, _)| *le) != Some(f64::INFINITY) {
            return Err(format!("bucket series '{key}' has no +Inf bucket"));
        }
        for w in buckets.windows(2) {
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "bucket series '{key}' not cumulative: le={} count {} < le={} count {}",
                    w[1].0, w[1].1, w[0].0, w[0].1
                ));
            }
        }
        let inf = buckets.last().unwrap().1;
        let labels_key = key.strip_prefix(&format!("{name}|")).unwrap_or("");
        let count = points.iter().find(|p| {
            p.name == format!("{name}_count") && {
                let mut k = String::new();
                for (lk, lv) in &p.labels {
                    k.push_str(&format!("{lk}={}|", escape_label(lv)));
                }
                k == labels_key
            }
        });
        if let Some(c) = count {
            if c.value != inf {
                return Err(format!(
                    "series '{key}': +Inf bucket {inf} != _count {}",
                    c.value
                ));
            }
        }
    }
    Ok(LintSummary { samples: points.len(), families: typed.len(), bucket_series: series.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("pipeline.docs").add(48);
        r.counter("queue.parser-0.sends").add(7);
        r.gauge("queue.parser-0.depth").set(-2);
        r.histogram("lat").record_ns(100);
        r.histogram("lat").record_ns(u64::MAX);
        let st = r.stage("read");
        {
            let mut sp = st.span();
            sp.add_bytes(1024);
        }
        r.snapshot()
    }

    #[test]
    fn render_parses_and_lints_clean() {
        let text = render(&sample_snapshot());
        let summary = lint(&text).expect("lint");
        assert!(summary.samples > 0);
        assert_eq!(summary.families, 8, "{text}");
        let points = parse(&text).unwrap();
        let docs = points
            .iter()
            .find(|p| p.name == "ii_counter_total" && p.label("name") == Some("pipeline.docs"))
            .unwrap();
        assert_eq!(docs.value, 48.0);
        let depth = points
            .iter()
            .find(|p| p.name == "ii_gauge" && p.label("name") == Some("queue.parser-0.depth"))
            .unwrap();
        assert_eq!(depth.value, -2.0);
        // Overflow observation lands only in the +Inf cumulative bucket.
        let inf = points
            .iter()
            .find(|p| {
                p.name == "ii_histogram_ns_bucket"
                    && p.label("name") == Some("lat")
                    && p.label("le") == Some("+Inf")
            })
            .unwrap();
        assert_eq!(inf.value, 2.0);
        let first = points
            .iter()
            .find(|p| {
                p.name == "ii_histogram_ns_bucket"
                    && p.label("name") == Some("lat")
                    && p.label("le") == Some("256")
            })
            .unwrap();
        assert_eq!(first.value, 1.0);
    }

    #[test]
    fn label_escaping_round_trips() {
        let r = Registry::new();
        r.counter("weird\"name\\with\nnewline").add(3);
        let text = render(&r.snapshot());
        lint(&text).unwrap();
        let points = parse(&text).unwrap();
        let p = points.iter().find(|p| p.name == "ii_counter_total").unwrap();
        assert_eq!(p.label("name"), Some("weird\"name\\with\nnewline"));
        assert_eq!(p.value, 3.0);
    }

    #[test]
    fn lint_rejects_structural_violations() {
        assert!(lint("ii_x_total 1\n").is_err(), "missing EOF");
        assert!(
            lint("ii_x_total 1\n# EOF\n").unwrap_err().contains("no preceding # TYPE"),
        );
        assert!(
            lint("# TYPE ii_x counter\nii_x 1\n# EOF\n").unwrap_err().contains("_total"),
        );
        let non_monotone = "# TYPE ii_h histogram\n\
             ii_h_bucket{le=\"1\"} 5\nii_h_bucket{le=\"2\"} 3\nii_h_bucket{le=\"+Inf\"} 5\n# EOF\n";
        assert!(lint(non_monotone).unwrap_err().contains("not cumulative"));
        let no_inf = "# TYPE ii_h histogram\nii_h_bucket{le=\"1\"} 5\n# EOF\n";
        assert!(lint(no_inf).unwrap_err().contains("+Inf"));
        let count_mismatch = "# TYPE ii_h histogram\n\
             ii_h_bucket{le=\"+Inf\"} 5\nii_h_count 4\n# EOF\n";
        assert!(lint(count_mismatch).unwrap_err().contains("_count"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_sample("1bad_name 1").is_err());
        assert!(parse_sample("ok{le=1} 1").is_err(), "unquoted label value");
        assert!(parse_sample("ok{le=\"1\"} x").is_err(), "bad value");
        assert!(parse_sample("ok{le=\"1\\q\"} 1").is_err(), "unknown escape");
        assert_eq!(parse_sample("ok +Inf").unwrap().value, f64::INFINITY);
    }
}
