//! Always-on flight recorder: a fixed-size black-box ring of coarse
//! telemetry samples.
//!
//! The registry and trace rings answer "where did time go?" *after* a
//! build; the flight recorder answers "what were the last N seconds like?"
//! *when something dies*. The driver registers the counters, gauges, and
//! heartbeats it wants on the black box ([`FlightRecorder::watch_counter`]
//! etc.), then calls [`FlightRecorder::maybe_sample`] from its consumer
//! loop. The call is a single relaxed load + compare when a sample is not
//! due — cheap enough to sit on the per-message path and stay under the
//! <2% observability overhead gate (priced in the `obs_overhead` bench).
//! When the cadence interval has elapsed it appends one [`FlightSample`]
//! (absolute counter/gauge values + heartbeat idle ages) to a bounded
//! ring, evicting the oldest.
//!
//! On a failure-domain event the supervisor forces a final sample and
//! [`FlightRecorder::dump`]s the ring into the post-mortem bundle. Deltas
//! and rates are computed at render time from the absolute values.

use crate::{Counter, Gauge, Heartbeat, Stage};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Flight-recorder tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RecorderConfig {
    /// Record at all? Disabled recorders cost one branch per
    /// [`FlightRecorder::maybe_sample`] call.
    pub enabled: bool,
    /// Ring capacity in samples; the oldest sample is evicted when full.
    pub capacity: usize,
    /// Minimum time between samples (the sampling cadence).
    pub min_interval: Duration,
}

impl Default for RecorderConfig {
    /// Enabled, 256 samples, 20 ms cadence — ~5 s of history at full
    /// sampling rate, a whole build's worth when the loop idles.
    fn default() -> Self {
        RecorderConfig { enabled: true, capacity: 256, min_interval: Duration::from_millis(20) }
    }
}

impl RecorderConfig {
    /// A recorder that records nothing.
    pub fn disabled() -> Self {
        RecorderConfig { enabled: false, ..Default::default() }
    }
}

/// One black-box sample: elapsed time plus the absolute value of every
/// watched metric, in watch-registration order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightSample {
    /// Nanoseconds since the recorder was created.
    pub t_ns: u64,
    /// Watched counter values (parallel to [`FlightDump::counter_names`]).
    pub counters: Vec<u64>,
    /// Watched gauge levels (parallel to [`FlightDump::gauge_names`]).
    pub gauges: Vec<i64>,
    /// Watched heartbeat idle ages in ns (parallel to
    /// [`FlightDump::worker_names`]).
    pub idle_ns: Vec<u64>,
}

/// The recorder's ring, frozen for a post-mortem bundle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightDump {
    /// Names of watched counters, in sample order.
    pub counter_names: Vec<String>,
    /// Names of watched gauges, in sample order.
    pub gauge_names: Vec<String>,
    /// Names of watched heartbeats, in sample order.
    pub worker_names: Vec<String>,
    /// Samples, oldest first.
    pub samples: Vec<FlightSample>,
    /// Samples evicted from the ring because it was full.
    pub dropped: u64,
}

impl FlightDump {
    /// Render as a self-contained JSON object (embedded in post-mortem
    /// bundles).
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\"counters\": [");
        for (i, n) in self.counter_names.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            crate::push_json_str(&mut o, n);
        }
        o.push_str("], \"gauges\": [");
        for (i, n) in self.gauge_names.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            crate::push_json_str(&mut o, n);
        }
        o.push_str("], \"workers\": [");
        for (i, n) in self.worker_names.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            crate::push_json_str(&mut o, n);
        }
        o.push_str(&format!("], \"dropped\": {}, \"samples\": [", self.dropped));
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!("\n  {{\"t_ns\": {}, \"c\": [", s.t_ns));
            for (j, v) in s.counters.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                o.push_str(&v.to_string());
            }
            o.push_str("], \"g\": [");
            for (j, v) in s.gauges.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                o.push_str(&v.to_string());
            }
            o.push_str("], \"idle_ns\": [");
            for (j, v) in s.idle_ns.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                o.push_str(&v.to_string());
            }
            o.push_str("]}");
        }
        o.push_str("\n]}");
        o
    }
}

type CounterProbe = Box<dyn Fn() -> u64 + Send>;
type GaugeProbe = Box<dyn Fn() -> i64 + Send>;

#[derive(Default)]
struct State {
    counters: Vec<(String, CounterProbe)>,
    gauges: Vec<(String, GaugeProbe)>,
    beats: Vec<(String, Arc<Heartbeat>)>,
    ring: VecDeque<FlightSample>,
    capacity: usize,
    dropped: u64,
}

impl fmt::Debug for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("State")
            .field("counters", &self.counters.iter().map(|(n, _)| n).collect::<Vec<_>>())
            .field("gauges", &self.gauges.iter().map(|(n, _)| n).collect::<Vec<_>>())
            .field("beats", &self.beats.iter().map(|(n, _)| n).collect::<Vec<_>>())
            .field("ring_len", &self.ring.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped)
            .finish()
    }
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    min_interval_ns: u64,
    /// Elapsed ns at the last sample; `u64::MAX` = never sampled, so the
    /// first `maybe_sample` always fires.
    last_ns: AtomicU64,
    state: Mutex<State>,
}

/// The black-box recorder. Clones share the same ring; the disabled
/// recorder ([`FlightRecorder::disabled`], also `Default`) holds no
/// allocation and costs one branch per call.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Inner>>,
}

impl FlightRecorder {
    /// A recorder that records nothing.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    /// An enabled recorder with the given ring capacity and cadence.
    pub fn new(capacity: usize, min_interval: Duration) -> FlightRecorder {
        FlightRecorder {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                min_interval_ns: min_interval.as_nanos() as u64,
                last_ns: AtomicU64::new(u64::MAX),
                state: Mutex::new(State {
                    capacity: capacity.max(1),
                    ..Default::default()
                }),
            })),
        }
    }

    /// Build from a [`RecorderConfig`].
    pub fn from_config(cfg: &RecorderConfig) -> FlightRecorder {
        if cfg.enabled {
            FlightRecorder::new(cfg.capacity, cfg.min_interval)
        } else {
            FlightRecorder::disabled()
        }
    }

    /// Is this recorder actually recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Watch a counter; its absolute value lands in every later sample.
    pub fn watch_counter(&self, name: &str, c: Arc<Counter>) {
        self.watch_counter_fn(name, move || c.get());
    }

    /// Watch an arbitrary monotone figure via a probe closure (resident
    /// bytes, pool depths — anything without a `Counter` behind it).
    pub fn watch_counter_fn(&self, name: &str, probe: impl Fn() -> u64 + Send + 'static) {
        if let Some(inner) = &self.inner {
            inner.state.lock().unwrap().counters.push((name.to_string(), Box::new(probe)));
        }
    }

    /// Watch a gauge.
    pub fn watch_gauge(&self, name: &str, g: Arc<Gauge>) {
        self.watch_gauge_fn(name, move || g.get());
    }

    /// Watch an arbitrary signed level via a probe closure.
    pub fn watch_gauge_fn(&self, name: &str, probe: impl Fn() -> i64 + Send + 'static) {
        if let Some(inner) = &self.inner {
            inner.state.lock().unwrap().gauges.push((name.to_string(), Box::new(probe)));
        }
    }

    /// Watch a whole stage: its bytes, items, and busy wall-ns counters
    /// land in every sample as `{prefix}.bytes` / `.items` / `.wall_ns`,
    /// which is what per-stage MB/s is computed from.
    pub fn watch_stage(&self, prefix: &str, stage: Arc<Stage>) {
        let s = Arc::clone(&stage);
        self.watch_counter_fn(&format!("{prefix}.bytes"), move || s.bytes.get());
        let s = Arc::clone(&stage);
        self.watch_counter_fn(&format!("{prefix}.items"), move || s.items.get());
        self.watch_counter_fn(&format!("{prefix}.wall_ns"), move || stage.wall_ns.get());
    }

    /// Watch a worker heartbeat; samples record its idle age.
    pub fn watch_heartbeat(&self, name: &str, hb: Arc<Heartbeat>) {
        if let Some(inner) = &self.inner {
            inner.state.lock().unwrap().beats.push((name.to_string(), hb));
        }
    }

    /// Take a sample if the cadence interval has elapsed. Returns whether
    /// a sample was recorded. When no sample is due this is one `Instant`
    /// read, one relaxed load, and a compare.
    #[inline]
    pub fn maybe_sample(&self) -> bool {
        let Some(inner) = &self.inner else { return false };
        let now = inner.origin.elapsed().as_nanos() as u64;
        let last = inner.last_ns.load(Relaxed);
        if last != u64::MAX && now.saturating_sub(last) < inner.min_interval_ns {
            return false;
        }
        inner.sample(now);
        true
    }

    /// Take a sample now, regardless of cadence (the last gasp before a
    /// post-mortem dump).
    pub fn force_sample(&self) -> bool {
        let Some(inner) = &self.inner else { return false };
        let now = inner.origin.elapsed().as_nanos() as u64;
        inner.sample(now);
        true
    }

    /// Freeze the ring. `None` for a disabled recorder.
    pub fn dump(&self) -> Option<FlightDump> {
        let inner = self.inner.as_ref()?;
        let st = inner.state.lock().unwrap();
        Some(FlightDump {
            counter_names: st.counters.iter().map(|(n, _)| n.clone()).collect(),
            gauge_names: st.gauges.iter().map(|(n, _)| n.clone()).collect(),
            worker_names: st.beats.iter().map(|(n, _)| n.clone()).collect(),
            samples: st.ring.iter().cloned().collect(),
            dropped: st.dropped,
        })
    }
}

impl Inner {
    fn sample(&self, now: u64) {
        // Benign race: two threads may both decide a sample is due; the
        // ring just gets two adjacent samples. The driver's consumer loop
        // is the only caller in practice.
        self.last_ns.store(now, Relaxed);
        let mut st = self.state.lock().unwrap();
        let sample = FlightSample {
            t_ns: now,
            counters: st.counters.iter().map(|(_, probe)| probe()).collect(),
            gauges: st.gauges.iter().map(|(_, probe)| probe()).collect(),
            idle_ns: st.beats.iter().map(|(_, h)| h.idle().as_nanos() as u64).collect(),
        };
        if st.ring.len() >= st.capacity {
            st.ring.pop_front();
            st.dropped += 1;
        }
        st.ring.push_back(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = FlightRecorder::disabled();
        assert!(!r.is_enabled());
        assert!(!r.maybe_sample());
        assert!(!r.force_sample());
        assert!(r.dump().is_none());
        assert!(!FlightRecorder::default().is_enabled());
        assert!(!FlightRecorder::from_config(&RecorderConfig::disabled()).is_enabled());
    }

    #[test]
    fn samples_capture_watched_metrics_in_order() {
        let r = FlightRecorder::new(8, Duration::ZERO);
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        let hb = Arc::new(Heartbeat::new());
        r.watch_counter("docs", Arc::clone(&c));
        r.watch_gauge("depth", Arc::clone(&g));
        r.watch_heartbeat("parser 0", Arc::clone(&hb));
        c.add(5);
        g.set(-3);
        assert!(r.maybe_sample());
        c.add(5);
        g.set(4);
        assert!(r.force_sample());
        let d = r.dump().unwrap();
        assert_eq!(d.counter_names, vec!["docs"]);
        assert_eq!(d.gauge_names, vec!["depth"]);
        assert_eq!(d.worker_names, vec!["parser 0"]);
        assert_eq!(d.samples.len(), 2);
        assert_eq!(d.samples[0].counters, vec![5]);
        assert_eq!(d.samples[0].gauges, vec![-3]);
        assert_eq!(d.samples[1].counters, vec![10]);
        assert_eq!(d.samples[1].gauges, vec![4]);
        assert!(d.samples[1].t_ns >= d.samples[0].t_ns);
        assert_eq!(d.samples[0].idle_ns.len(), 1);
        assert_eq!(d.dropped, 0);
    }

    #[test]
    fn cadence_gates_sampling() {
        let r = FlightRecorder::new(8, Duration::from_secs(3600));
        assert!(r.maybe_sample(), "first sample always fires");
        assert!(!r.maybe_sample(), "second within the interval is gated");
        assert!(r.force_sample(), "force ignores the cadence");
        assert_eq!(r.dump().unwrap().samples.len(), 2);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let r = FlightRecorder::new(2, Duration::ZERO);
        let c = Arc::new(Counter::new());
        r.watch_counter("n", Arc::clone(&c));
        for i in 0..5 {
            c.reset();
            c.add(i);
            r.force_sample();
        }
        let d = r.dump().unwrap();
        assert_eq!(d.samples.len(), 2);
        assert_eq!(d.dropped, 3);
        assert_eq!(d.samples[0].counters, vec![3]);
        assert_eq!(d.samples[1].counters, vec![4]);
    }

    #[test]
    fn dump_json_parses() {
        let r = FlightRecorder::new(4, Duration::ZERO);
        r.watch_counter("a\"b", Arc::new(Counter::new()));
        r.force_sample();
        let json = r.dump().unwrap().to_json();
        let v = crate::json::parse_json(&json).expect("dump JSON must parse");
        let obj = match v {
            crate::json::JsonValue::Obj(o) => o,
            other => panic!("expected object, got {other:?}"),
        };
        assert!(obj.contains_key("counters"));
        assert!(obj.contains_key("samples"));
    }
}
