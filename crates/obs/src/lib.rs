//! Pipeline observability: metrics registry, scoped stage timers, and
//! JSON snapshots.
//!
//! The paper's evaluation (Table V, Fig 9) hinges on knowing *where time
//! goes* — reading, decompression/parsing, indexing, post-processing — and
//! on low-level device counters (global-memory transactions, warp
//! comparisons). This crate provides the measurement substrate for all of
//! that with **no external dependencies** and **~ns-per-event cost**:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-ordering atomics. A counter bump is
//!   a single `fetch_add(Relaxed)`; cheap enough to stay enabled in
//!   release builds (the <2% end-to-end overhead budget is verified in
//!   `EXPERIMENTS.md`).
//! * [`Histogram`] — fixed-boundary latency histogram (power-of-4 ns
//!   buckets from 256 ns to ~4.4 s), one relaxed `fetch_add` per record.
//! * [`Stage`] + [`StageSpan`] — per-pipeline-stage wall time, bytes,
//!   items, and queue-wait accounting. `StageSpan` is a scoped timer:
//!   created at stage entry, it adds its elapsed time on drop.
//! * [`Registry`] — an *instantiable* bag of named metrics. The pipeline
//!   driver creates one registry per build so concurrent builds (e.g.
//!   parallel tests) never interleave, and renders it into the report's
//!   `StageBreakdown`. A process-global registry ([`global`]) exists for
//!   ad-hoc instrumentation and bench binaries.
//! * [`Snapshot`] — a point-in-time copy of a registry, with a
//!   hand-rolled JSON writer ([`Snapshot::to_json`] /
//!   [`Snapshot::write_json`]) shared by `--stats-json` and the bench
//!   binaries.

pub mod http;
pub mod json;
pub mod openmetrics;
pub mod recorder;
pub mod report;
pub mod trace;

pub use http::MetricsServer;
pub use recorder::{FlightDump, FlightRecorder, FlightSample, RecorderConfig};
pub use report::{TraceReport, WorkerReport};
pub use trace::{
    GaugeSeries, GpuSpanArgs, Trace, TraceConfig, TraceEvent, TraceKind, TraceSink, TraceSpan,
    Tracer, WorkerTrace,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Version of the snapshot JSON layout (`--stats-json`, bench snapshots).
/// Bump when keys change shape so downstream tooling can branch.
/// v4 added `p999_ns` / `latency_p999_ns` tail quantiles.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 4;

/// Monotonic event counter (relaxed atomic; safe to bump from any thread).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Add `n`. Wraps on `u64` overflow (relaxed `fetch_add` semantics) —
    /// at one event per nanosecond that is ~584 years of uptime.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Reset to zero (between benchmark iterations).
    pub fn reset(&self) {
        self.0.store(0, Relaxed);
    }
}

/// A worker liveness beacon: the worker bumps it on every unit of
/// progress, a watchdog on another thread reads how long it has been
/// silent.
///
/// The beacon is fed from the existing trace-span instrumentation — every
/// [`trace::TraceSink::span`] on a sink carrying a heartbeat bumps it, so
/// workers need no extra instrumentation and a worker that stops opening
/// spans (stalled read, wedged kernel, dead thread) goes visibly silent.
/// Self-contained: it carries its own `Instant` origin, so beats and
/// idleness reads never depend on any tracer state.
#[derive(Debug)]
pub struct Heartbeat {
    origin: Instant,
    last_beat_ns: AtomicU64,
    beats: AtomicU64,
}

impl Default for Heartbeat {
    fn default() -> Self {
        Heartbeat::new()
    }
}

impl Heartbeat {
    /// A fresh beacon; creation counts as the first sign of life.
    pub fn new() -> Heartbeat {
        Heartbeat {
            origin: Instant::now(),
            last_beat_ns: AtomicU64::new(0),
            beats: AtomicU64::new(0),
        }
    }

    /// Record one unit of progress (relaxed store + add; ~ns cost).
    #[inline]
    pub fn beat(&self) {
        let ns = self.origin.elapsed().as_nanos() as u64;
        self.last_beat_ns.store(ns, Relaxed);
        self.beats.fetch_add(1, Relaxed);
    }

    /// How long the worker has been silent (time since the last beat, or
    /// since creation if it never beat).
    pub fn idle(&self) -> Duration {
        let now = self.origin.elapsed().as_nanos() as u64;
        Duration::from_nanos(now.saturating_sub(self.last_beat_ns.load(Relaxed)))
    }

    /// Total beats recorded.
    pub fn beats(&self) -> u64 {
        self.beats.load(Relaxed)
    }
}

/// Last-write-wins signed level (queue depths, buffer fill).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Adjust the level by `delta`.
    #[inline]
    pub fn adjust(&self, delta: i64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// Number of histogram buckets (see [`Histogram::BOUNDS`] + overflow).
pub const HISTOGRAM_BUCKETS: usize = 13;

/// Fixed-boundary latency histogram over nanosecond durations.
///
/// Boundaries are powers of 4 starting at 256 ns, so the whole range from
/// sub-µs token work to multi-second file reads fits in 13 buckets; the
/// last bucket is the overflow. Recording is one relaxed `fetch_add`.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// Upper bounds (ns, inclusive) of every bucket but the overflow.
    pub const BOUNDS: [u64; HISTOGRAM_BUCKETS - 1] = [
        1 << 8,    // 256 ns
        1 << 10,   // ~1 µs
        1 << 12,   // ~4 µs
        1 << 14,   // ~16 µs
        1 << 16,   // ~65 µs
        1 << 18,   // ~262 µs
        1 << 20,   // ~1 ms
        1 << 22,   // ~4.2 ms
        1 << 24,   // ~16.8 ms
        1 << 26,   // ~67 ms
        1 << 28,   // ~268 ms
        1 << 32,   // ~4.3 s
    ];

    /// Empty histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not Copy; build the array element by element.
        Histogram {
            buckets: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }

    /// Bucket index for a nanosecond duration.
    #[inline]
    pub fn bucket_of(ns: u64) -> usize {
        Self::BOUNDS.partition_point(|&b| b < ns)
    }

    /// Record one observation of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Relaxed);
    }

    /// Copy the bucket counts.
    pub fn counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Relaxed);
        }
        out
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Upper-bound estimate (ns) of the `q`-quantile, `q ∈ [0, 1]`.
    ///
    /// Returns the upper boundary of the bucket containing the quantile
    /// (the histogram stores counts, not samples, so this is conservative
    /// by at most one bucket width); `u64::MAX` when the quantile lands in
    /// the overflow bucket; `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_from_counts(&self.counts(), q)
    }
}

/// [`Histogram::quantile`] over a detached bucket-count array (snapshots).
pub fn quantile_from_counts(counts: &[u64], q: f64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    // Rank of the quantile observation, 1-based, clamped to [1, total].
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(Histogram::BOUNDS.get(i).copied().unwrap_or(u64::MAX));
        }
    }
    None
}

/// Per-stage accounting: wall time, queue wait, bytes, and items.
///
/// One `Stage` per dataflow stage (read, decompress, parse, index, merge,
/// …). Threads bump it concurrently; a [`StageSpan`] adds wall time on
/// drop, `queue_wait_ns` accumulates time blocked on channel hand-offs.
#[derive(Debug, Default)]
pub struct Stage {
    /// Busy wall time across all workers of the stage (ns).
    pub wall_ns: Counter,
    /// Time spent blocked waiting for upstream/downstream queues (ns).
    pub queue_wait_ns: Counter,
    /// Payload bytes processed by the stage.
    pub bytes: Counter,
    /// Work items (files, batches, queries — stage-defined).
    pub items: Counter,
    /// Distribution of per-item latency.
    pub latency: Histogram,
}

impl Stage {
    /// Empty stage record.
    pub const fn new() -> Self {
        Stage {
            wall_ns: Counter::new(),
            queue_wait_ns: Counter::new(),
            bytes: Counter::new(),
            items: Counter::new(),
            latency: Histogram::new(),
        }
    }

    /// Open a scoped timer on this stage; `drop` records wall time and
    /// one item (plus its latency-histogram sample).
    #[inline]
    pub fn span(&self) -> StageSpan<'_> {
        StageSpan { stage: self, start: Instant::now(), bytes: 0 }
    }

    /// Busy seconds accumulated so far.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_ns.get() as f64 / 1e9
    }

    /// Queue-wait seconds accumulated so far.
    pub fn queue_wait_seconds(&self) -> f64 {
        self.queue_wait_ns.get() as f64 / 1e9
    }
}

/// Scoped stage timer: measures from creation to drop.
///
/// ```
/// use ii_obs::Stage;
/// let stage = Stage::new();
/// {
///     let mut span = stage.span();
///     span.add_bytes(1024);
///     // ... do the stage's work ...
/// } // drop records wall time, 1 item, 1024 bytes, latency sample
/// assert_eq!(stage.items.get(), 1);
/// assert_eq!(stage.bytes.get(), 1024);
/// ```
pub struct StageSpan<'a> {
    stage: &'a Stage,
    start: Instant,
    bytes: u64,
}

impl StageSpan<'_> {
    /// Attribute `n` payload bytes to this span's item.
    #[inline]
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Elapsed time so far (the span keeps running).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for StageSpan<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        self.stage.wall_ns.add(ns);
        self.stage.items.inc();
        self.stage.bytes.add(self.bytes);
        self.stage.latency.record_ns(ns);
    }
}

/// An instantiable bag of named metrics.
///
/// Lookup (`counter`/`gauge`/`stage`/`histogram`) interns the metric on
/// first use and returns a cheap `Arc`; hot paths resolve once and bump
/// the returned handle. Use one registry per unit of measurement (e.g.
/// one per pipeline build) so concurrent runs never mix, or [`global`]
/// for process-wide instrumentation.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    stages: Mutex<BTreeMap<String, Arc<Stage>>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern (or fetch) the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock().unwrap();
        match m.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                m.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Intern (or fetch) the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock().unwrap();
        match m.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::new());
                m.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Intern (or fetch) the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock().unwrap();
        match m.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                m.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Intern (or fetch) the named stage record.
    pub fn stage(&self, name: &str) -> Arc<Stage> {
        let mut m = self.stages.lock().unwrap();
        match m.get(name) {
            Some(s) => Arc::clone(s),
            None => {
                let s = Arc::new(Stage::new());
                m.insert(name.to_string(), Arc::clone(&s));
                s
            }
        }
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.counts().to_vec()))
                .collect(),
            stages: self
                .stages
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        StageSnapshot {
                            wall_seconds: v.wall_seconds(),
                            queue_wait_seconds: v.queue_wait_seconds(),
                            bytes: v.bytes.get(),
                            items: v.items.get(),
                            latency: v.latency.counts().to_vec(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// The process-global registry (for bench binaries and ad-hoc probes).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Frozen copy of one stage's metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct StageSnapshot {
    /// Busy wall seconds.
    pub wall_seconds: f64,
    /// Seconds blocked on queues.
    pub queue_wait_seconds: f64,
    /// Payload bytes.
    pub bytes: u64,
    /// Work items.
    pub items: u64,
    /// Latency histogram counts ([`Histogram::BOUNDS`] buckets).
    pub latency: Vec<u64>,
}

/// Frozen copy of a whole [`Registry`], with a JSON writer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → level.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram name → bucket counts.
    pub histograms: BTreeMap<String, Vec<u64>>,
    /// Stage name → frozen stage metrics.
    pub stages: BTreeMap<String, StageSnapshot>,
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Snapshot {
    /// Render as a stable, self-contained JSON object (the format shared
    /// by `--stats-json` and the bench snapshot files). The layout is
    /// versioned via [`SNAPSHOT_SCHEMA_VERSION`].
    pub fn to_json(&self) -> String {
        let q = |counts: &[u64], q: f64| {
            quantile_from_counts(counts, q).map_or_else(|| "null".to_string(), |v| v.to_string())
        };
        let mut o = format!(
            "{{\n  \"schema_version\": {SNAPSHOT_SCHEMA_VERSION},\n  \"counters\": {{"
        );
        for (i, (k, v)) in self.counters.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_str(&mut o, k);
            o.push_str(&format!(": {v}"));
        }
        o.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_str(&mut o, k);
            o.push_str(&format!(": {v}"));
        }
        o.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, v)) in self.histograms.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_str(&mut o, k);
            o.push_str(": {\"counts\": [");
            for (j, c) in v.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                o.push_str(&c.to_string());
            }
            o.push_str(&format!(
                "], \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                q(v, 0.50),
                q(v, 0.95),
                q(v, 0.99),
                q(v, 0.999)
            ));
        }
        o.push_str("\n  },\n  \"stages\": {");
        for (i, (k, s)) in self.stages.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_str(&mut o, k);
            o.push_str(&format!(
                ": {{\"wall_seconds\": {:.9}, \"queue_wait_seconds\": {:.9}, \"bytes\": {}, \"items\": {}, \"latency_p50_ns\": {}, \"latency_p95_ns\": {}, \"latency_p99_ns\": {}, \"latency_p999_ns\": {}}}",
                s.wall_seconds,
                s.queue_wait_seconds,
                s.bytes,
                s.items,
                q(&s.latency, 0.50),
                q(&s.latency, 0.95),
                q(&s.latency, 0.99),
                q(&s.latency, 0.999)
            ));
        }
        o.push_str("\n  }\n}\n");
        o
    }

    /// Write the JSON rendering to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(7);
        g.adjust(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn counter_wraps_on_overflow() {
        let c = Counter::new();
        c.add(u64::MAX);
        c.add(3);
        assert_eq!(c.get(), 2, "relaxed fetch_add wraps, never panics");
    }

    #[test]
    fn histogram_bucketing_is_exact_at_boundaries() {
        // Below/at a bound goes in that bucket; one past goes in the next.
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(256), 0);
        assert_eq!(Histogram::bucket_of(257), 1);
        assert_eq!(Histogram::bucket_of(1 << 10), 1);
        assert_eq!(Histogram::bucket_of((1 << 10) + 1), 2);
        assert_eq!(Histogram::bucket_of(1 << 32), HISTOGRAM_BUCKETS - 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let h = Histogram::new();
        h.record_ns(100);
        h.record_ns(256);
        h.record_ns(300);
        h.record_ns(u64::MAX);
        let c = h.counts();
        assert_eq!(c[0], 2);
        assert_eq!(c[1], 1);
        assert_eq!(c[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for _ in 0..90 {
            h.record_ns(100); // bucket 0 (≤256 ns)
        }
        for _ in 0..9 {
            h.record_ns(2_000); // bucket 2 (≤4096 ns)
        }
        h.record_ns(u64::MAX); // overflow bucket
        assert_eq!(h.quantile(0.0), Some(256));
        assert_eq!(h.quantile(0.50), Some(256));
        assert_eq!(h.quantile(0.90), Some(256));
        assert_eq!(h.quantile(0.95), Some(4096));
        assert_eq!(h.quantile(0.99), Some(4096));
        assert_eq!(h.quantile(1.0), Some(u64::MAX), "overflow bucket saturates");
        assert_eq!(quantile_from_counts(&[0, 3], 0.5), Some(1 << 10));
    }

    #[test]
    fn span_records_time_items_bytes() {
        let s = Stage::new();
        {
            let mut span = s.span();
            span.add_bytes(500);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(s.items.get(), 1);
        assert_eq!(s.bytes.get(), 500);
        assert!(s.wall_seconds() >= 0.002, "span must capture sleep time");
        assert_eq!(s.latency.total(), 1);
    }

    #[test]
    fn registry_interns_by_name() {
        let r = Registry::new();
        r.counter("a").add(5);
        r.counter("a").add(5);
        r.counter("b").inc();
        assert_eq!(r.counter("a").get(), 10);
        assert_eq!(r.counter("b").get(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.counters["a"], 10);
        assert_eq!(snap.counters["b"], 1);
    }

    #[test]
    fn registry_is_thread_safe() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let c = r.counter("shared");
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("shared").get(), 80_000);
    }

    #[test]
    fn snapshot_json_is_valid_and_stable() {
        let r = Registry::new();
        r.counter("pipeline.docs").add(48);
        r.gauge("queue.depth").set(-2);
        r.histogram("lat").record_ns(100);
        let st = r.stage("read");
        {
            let mut sp = st.span();
            sp.add_bytes(1024);
        }
        let json = r.snapshot().to_json();
        for needle in [
            "\"schema_version\": 4",
            "\"pipeline.docs\": 48",
            "\"queue.depth\": -2",
            "\"read\"",
            "\"bytes\": 1024",
            "\"items\": 1",
            "\"p50_ns\": 256",
            "\"p999_ns\": 256",
            "\"latency_p50_ns\"",
            "\"latency_p999_ns\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets — cheap structural validity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn heartbeat_tracks_silence() {
        let hb = Heartbeat::new();
        assert_eq!(hb.beats(), 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(hb.idle() >= Duration::from_millis(2), "never-beaten = idle since birth");
        hb.beat();
        assert_eq!(hb.beats(), 1);
        assert!(hb.idle() < Duration::from_millis(2), "beat resets the idle clock");
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("test.global.singleton").inc();
        assert!(global().snapshot().counters["test.global.singleton"] >= 1);
    }
}
